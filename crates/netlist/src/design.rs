//! The [`Design`] container: blocks + nets + terminals + die outline.

use crate::{Block, BlockId, Net, NetId, PinRef, Terminal, TerminalId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use tsc3d_geometry::Outline;

/// Errors raised while assembling or validating a [`Design`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DesignError {
    /// Two blocks share the same name.
    DuplicateBlockName(String),
    /// Two terminals share the same name.
    DuplicateTerminalName(String),
    /// A net references a block id that does not exist.
    UnknownBlock(usize),
    /// A net references a terminal id that does not exist.
    UnknownTerminal(usize),
    /// The design contains no blocks.
    Empty,
}

impl fmt::Display for DesignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DesignError::DuplicateBlockName(n) => write!(f, "duplicate block name `{n}`"),
            DesignError::DuplicateTerminalName(n) => write!(f, "duplicate terminal name `{n}`"),
            DesignError::UnknownBlock(i) => write!(f, "net references unknown block index {i}"),
            DesignError::UnknownTerminal(i) => {
                write!(f, "net references unknown terminal index {i}")
            }
            DesignError::Empty => write!(f, "design contains no blocks"),
        }
    }
}

impl Error for DesignError {}

/// Aggregate statistics of a design, mirroring the columns of Table 1 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DesignStats {
    /// Number of hard blocks.
    pub hard_blocks: usize,
    /// Number of soft blocks.
    pub soft_blocks: usize,
    /// Number of nets.
    pub nets: usize,
    /// Number of terminal pins.
    pub terminals: usize,
    /// Die outline area in mm² (one die of the stack).
    pub outline_mm2: f64,
    /// Total nominal power in watts at 1.0 V.
    pub power_w: f64,
    /// Total block area in µm².
    pub block_area_um2: f64,
    /// Average net degree.
    pub avg_net_degree: f64,
}

/// A block-level design: blocks, nets, I/O terminals and the fixed per-die outline it is to
/// be floorplanned into.
///
/// Construction validates referential integrity so that downstream crates can index blocks
/// and terminals without further checks.
///
/// ```
/// use tsc3d_netlist::{Block, BlockShape, Design, Net, PinRef, BlockId};
/// use tsc3d_geometry::Outline;
///
/// # fn main() -> Result<(), tsc3d_netlist::DesignError> {
/// let blocks = vec![
///     Block::new("a", BlockShape::soft(100.0), 0.1),
///     Block::new("b", BlockShape::soft(200.0), 0.2),
/// ];
/// let nets = vec![Net::new("n0", vec![PinRef::Block(BlockId(0)), PinRef::Block(BlockId(1))])];
/// let design = Design::new("tiny", blocks, nets, vec![], Outline::new(50.0, 50.0))?;
/// assert_eq!(design.stats().soft_blocks, 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Design {
    name: String,
    blocks: Vec<Block>,
    nets: Vec<Net>,
    terminals: Vec<Terminal>,
    outline: Outline,
}

impl Design {
    /// Assembles and validates a design.
    ///
    /// # Errors
    ///
    /// Returns a [`DesignError`] if the design is empty, a block or terminal name is
    /// duplicated, or a net references a non-existing block/terminal.
    pub fn new(
        name: impl Into<String>,
        blocks: Vec<Block>,
        nets: Vec<Net>,
        terminals: Vec<Terminal>,
        outline: Outline,
    ) -> Result<Self, DesignError> {
        if blocks.is_empty() {
            return Err(DesignError::Empty);
        }
        let mut seen = HashMap::new();
        for b in &blocks {
            if seen.insert(b.name().to_string(), ()).is_some() {
                return Err(DesignError::DuplicateBlockName(b.name().to_string()));
            }
        }
        let mut seen_t = HashMap::new();
        for t in &terminals {
            if seen_t.insert(t.name().to_string(), ()).is_some() {
                return Err(DesignError::DuplicateTerminalName(t.name().to_string()));
            }
        }
        for net in &nets {
            for pin in net.pins() {
                match *pin {
                    PinRef::Block(BlockId(i)) if i >= blocks.len() => {
                        return Err(DesignError::UnknownBlock(i))
                    }
                    PinRef::Terminal(TerminalId(i)) if i >= terminals.len() => {
                        return Err(DesignError::UnknownTerminal(i))
                    }
                    _ => {}
                }
            }
        }
        Ok(Self {
            name: name.into(),
            blocks,
            nets,
            terminals,
            outline,
        })
    }

    /// Design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All blocks, indexable by [`BlockId`].
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// All nets, indexable by [`NetId`].
    pub fn nets(&self) -> &[Net] {
        &self.nets
    }

    /// All I/O terminals, indexable by [`TerminalId`].
    pub fn terminals(&self) -> &[Terminal] {
        &self.terminals
    }

    /// The fixed per-die outline.
    pub fn outline(&self) -> Outline {
        self.outline
    }

    /// The block with the given id.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    /// The net with the given id.
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.index()]
    }

    /// The terminal with the given id.
    pub fn terminal(&self, id: TerminalId) -> &Terminal {
        &self.terminals[id.index()]
    }

    /// Iterator over `(BlockId, &Block)` pairs.
    pub fn iter_blocks(&self) -> impl Iterator<Item = (BlockId, &Block)> {
        self.blocks.iter().enumerate().map(|(i, b)| (BlockId(i), b))
    }

    /// Iterator over `(NetId, &Net)` pairs.
    pub fn iter_nets(&self) -> impl Iterator<Item = (NetId, &Net)> {
        self.nets.iter().enumerate().map(|(i, n)| (NetId(i), n))
    }

    /// Looks up a block id by name.
    pub fn block_by_name(&self, name: &str) -> Option<BlockId> {
        self.blocks
            .iter()
            .position(|b| b.name() == name)
            .map(BlockId)
    }

    /// Total block area in µm².
    pub fn total_block_area(&self) -> f64 {
        self.blocks.iter().map(|b| b.area()).sum()
    }

    /// Total nominal power in watts (at 1.0 V).
    pub fn total_power(&self) -> f64 {
        self.blocks.iter().map(|b| b.power()).sum()
    }

    /// Nets incident to the given block.
    pub fn nets_of_block(&self, id: BlockId) -> Vec<NetId> {
        self.nets
            .iter()
            .enumerate()
            .filter(|(_, n)| n.blocks().any(|b| b == id))
            .map(|(i, _)| NetId(i))
            .collect()
    }

    /// Blocks sharing at least one net with `id` (the adjacency used when growing voltage
    /// volumes via breadth-first search).
    pub fn connected_blocks(&self, id: BlockId) -> Vec<BlockId> {
        let mut out = Vec::new();
        for net in &self.nets {
            if net.blocks().any(|b| b == id) {
                for b in net.blocks() {
                    if b != id && !out.contains(&b) {
                        out.push(b);
                    }
                }
            }
        }
        out
    }

    /// Returns a copy of the design with every block footprint linearly scaled by `factor`
    /// and the outline area left unchanged.
    ///
    /// The paper scales up module footprints "in order to obtain sufficiently large dies";
    /// the per-benchmark scale factors of Table 1 are applied by the [`crate::suite`]
    /// generators through this method.
    pub fn with_scaled_blocks(&self, factor: f64) -> Design {
        Design {
            name: self.name.clone(),
            blocks: self.blocks.iter().map(|b| b.scaled(factor)).collect(),
            nets: self.nets.clone(),
            terminals: self.terminals.clone(),
            outline: self.outline,
        }
    }

    /// Returns a copy with a different outline.
    pub fn with_outline(&self, outline: Outline) -> Design {
        Design {
            name: self.name.clone(),
            blocks: self.blocks.clone(),
            nets: self.nets.clone(),
            terminals: self.terminals.clone(),
            outline,
        }
    }

    /// Aggregate statistics (the columns of Table 1).
    pub fn stats(&self) -> DesignStats {
        let hard_blocks = self.blocks.iter().filter(|b| b.shape().is_hard()).count();
        let soft_blocks = self.blocks.len() - hard_blocks;
        let avg_net_degree = if self.nets.is_empty() {
            0.0
        } else {
            self.nets.iter().map(|n| n.degree()).sum::<usize>() as f64 / self.nets.len() as f64
        };
        DesignStats {
            hard_blocks,
            soft_blocks,
            nets: self.nets.len(),
            terminals: self.terminals.len(),
            outline_mm2: self.outline.area() / 1e6,
            power_w: self.total_power(),
            block_area_um2: self.total_block_area(),
            avg_net_degree,
        }
    }
}

impl fmt::Display for Design {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} blocks, {} nets, {} terminals, outline {}",
            self.name,
            self.blocks.len(),
            self.nets.len(),
            self.terminals.len(),
            self.outline
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BlockShape;
    use tsc3d_geometry::Point;

    fn small_design() -> Design {
        let blocks = vec![
            Block::new("a", BlockShape::soft(100.0), 1.0),
            Block::new("b", BlockShape::soft(200.0), 2.0),
            Block::new("c", BlockShape::hard(10.0, 10.0), 0.5),
        ];
        let terminals = vec![Terminal::new("in", Point::new(0.0, 0.0))];
        let nets = vec![
            Net::new(
                "n0",
                vec![PinRef::Block(BlockId(0)), PinRef::Block(BlockId(1))],
            ),
            Net::new(
                "n1",
                vec![
                    PinRef::Block(BlockId(1)),
                    PinRef::Block(BlockId(2)),
                    PinRef::Terminal(TerminalId(0)),
                ],
            ),
        ];
        Design::new("small", blocks, nets, terminals, Outline::new(100.0, 100.0)).unwrap()
    }

    #[test]
    fn totals_and_lookup() {
        let d = small_design();
        assert_eq!(d.total_block_area(), 400.0);
        assert_eq!(d.total_power(), 3.5);
        assert_eq!(d.block_by_name("b"), Some(BlockId(1)));
        assert_eq!(d.block_by_name("zz"), None);
        assert_eq!(d.block(BlockId(2)).name(), "c");
        assert_eq!(d.net(NetId(1)).degree(), 3);
        assert_eq!(d.terminal(TerminalId(0)).name(), "in");
    }

    #[test]
    fn connectivity_queries() {
        let d = small_design();
        assert_eq!(d.nets_of_block(BlockId(1)), vec![NetId(0), NetId(1)]);
        assert_eq!(d.connected_blocks(BlockId(1)), vec![BlockId(0), BlockId(2)]);
        assert_eq!(d.connected_blocks(BlockId(0)), vec![BlockId(1)]);
    }

    #[test]
    fn stats_match_contents() {
        let s = small_design().stats();
        assert_eq!(s.hard_blocks, 1);
        assert_eq!(s.soft_blocks, 2);
        assert_eq!(s.nets, 2);
        assert_eq!(s.terminals, 1);
        assert!((s.outline_mm2 - 0.01).abs() < 1e-9);
        assert!((s.avg_net_degree - 2.5).abs() < 1e-12);
    }

    #[test]
    fn validation_errors() {
        let blocks = vec![
            Block::new("a", BlockShape::soft(1.0), 0.0),
            Block::new("a", BlockShape::soft(1.0), 0.0),
        ];
        let err = Design::new("dup", blocks, vec![], vec![], Outline::new(1.0, 1.0)).unwrap_err();
        assert_eq!(err, DesignError::DuplicateBlockName("a".into()));

        let blocks = vec![Block::new("a", BlockShape::soft(1.0), 0.0)];
        let nets = vec![Net::new(
            "n",
            vec![PinRef::Block(BlockId(0)), PinRef::Block(BlockId(5))],
        )];
        let err = Design::new("bad", blocks, nets, vec![], Outline::new(1.0, 1.0)).unwrap_err();
        assert_eq!(err, DesignError::UnknownBlock(5));

        assert_eq!(
            Design::new("empty", vec![], vec![], vec![], Outline::new(1.0, 1.0)).unwrap_err(),
            DesignError::Empty
        );
        assert!(format!("{}", DesignError::UnknownTerminal(3)).contains("terminal"));
    }

    #[test]
    fn scaling_blocks_preserves_structure() {
        let d = small_design().with_scaled_blocks(2.0);
        assert_eq!(d.total_block_area(), 1600.0);
        assert_eq!(d.nets().len(), 2);
        let d2 = d.with_outline(Outline::new(500.0, 500.0));
        assert_eq!(d2.outline().area(), 250_000.0);
    }
}

//! Nets, pins and terminals.

use crate::BlockId;
use serde::{Deserialize, Serialize};
use std::fmt;
use tsc3d_geometry::Point;

/// Identifier of a net within a design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NetId(pub usize);

impl NetId {
    /// The zero-based index of the net.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of an I/O terminal within a design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TerminalId(pub usize);

impl TerminalId {
    /// The zero-based index of the terminal.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for TerminalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// An I/O terminal (primary input/output pad) with a fixed position on the package.
///
/// Terminal pins participate in wirelength estimation but are never moved by the
/// floorplanner.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Terminal {
    name: String,
    position: Point,
}

impl Terminal {
    /// Creates a terminal at a fixed position.
    pub fn new(name: impl Into<String>, position: Point) -> Self {
        Self {
            name: name.into(),
            position,
        }
    }

    /// Terminal name (unique within the design).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Fixed terminal position in µm (package coordinates, shared across dies).
    pub fn position(&self) -> Point {
        self.position
    }
}

/// A pin of a net: either a block pin or an I/O terminal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PinRef {
    /// Pin on a block; the pin is assumed to sit at the block centre (block-level model).
    Block(BlockId),
    /// Pin on a fixed I/O terminal.
    Terminal(TerminalId),
}

impl PinRef {
    /// The referenced block, if this pin is a block pin.
    pub fn block(self) -> Option<BlockId> {
        match self {
            PinRef::Block(b) => Some(b),
            PinRef::Terminal(_) => None,
        }
    }

    /// The referenced terminal, if this pin is a terminal pin.
    pub fn terminal(self) -> Option<TerminalId> {
        match self {
            PinRef::Terminal(t) => Some(t),
            PinRef::Block(_) => None,
        }
    }
}

impl From<BlockId> for PinRef {
    fn from(b: BlockId) -> Self {
        PinRef::Block(b)
    }
}

impl From<TerminalId> for PinRef {
    fn from(t: TerminalId) -> Self {
        PinRef::Terminal(t)
    }
}

/// A net connecting two or more pins.
///
/// Nets drive the half-perimeter wirelength estimate, the Elmore delay model and — when the
/// connected blocks end up on different dies — the demand for signal TSVs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Net {
    name: String,
    pins: Vec<PinRef>,
}

impl Net {
    /// Creates a net over the given pins.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two pins are given (degenerate nets carry no information).
    pub fn new(name: impl Into<String>, pins: Vec<PinRef>) -> Self {
        assert!(pins.len() >= 2, "a net needs at least two pins");
        Self {
            name: name.into(),
            pins,
        }
    }

    /// Net name (unique within the design).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All pins of the net.
    pub fn pins(&self) -> &[PinRef] {
        &self.pins
    }

    /// Number of pins.
    pub fn degree(&self) -> usize {
        self.pins.len()
    }

    /// Iterator over the block pins only.
    pub fn blocks(&self) -> impl Iterator<Item = BlockId> + '_ {
        self.pins.iter().filter_map(|p| p.block())
    }

    /// Iterator over the terminal pins only.
    pub fn terminals(&self) -> impl Iterator<Item = TerminalId> + '_ {
        self.pins.iter().filter_map(|p| p.terminal())
    }

    /// Returns `true` if the net touches any I/O terminal.
    pub fn has_terminal(&self) -> bool {
        self.pins.iter().any(|p| p.terminal().is_some())
    }
}

impl fmt::Display for Net {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} pins)", self.name, self.pins.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn net_pin_queries() {
        let net = Net::new(
            "clk",
            vec![
                PinRef::Block(BlockId(0)),
                PinRef::Block(BlockId(3)),
                PinRef::Terminal(TerminalId(1)),
            ],
        );
        assert_eq!(net.degree(), 3);
        assert_eq!(net.blocks().count(), 2);
        assert_eq!(net.terminals().count(), 1);
        assert!(net.has_terminal());
        assert_eq!(net.name(), "clk");
    }

    #[test]
    #[should_panic(expected = "at least two pins")]
    fn degenerate_net_rejected() {
        let _ = Net::new("bad", vec![PinRef::Block(BlockId(0))]);
    }

    #[test]
    fn pinref_conversions() {
        let p: PinRef = BlockId(2).into();
        assert_eq!(p.block(), Some(BlockId(2)));
        assert_eq!(p.terminal(), None);
        let q: PinRef = TerminalId(5).into();
        assert_eq!(q.terminal(), Some(TerminalId(5)));
        assert_eq!(q.block(), None);
    }

    #[test]
    fn terminal_accessors() {
        let t = Terminal::new("in0", Point::new(1.0, 2.0));
        assert_eq!(t.name(), "in0");
        assert_eq!(t.position(), Point::new(1.0, 2.0));
    }

    #[test]
    fn id_displays() {
        assert_eq!(format!("{}", NetId(4)), "n4");
        assert_eq!(format!("{}", TerminalId(4)), "p4");
        assert_eq!(NetId(9).index(), 9);
        assert_eq!(TerminalId(9).index(), 9);
    }
}

//! Blocks (modules) of a block-level design.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a block within a [`crate::Design`].
///
/// Block ids are dense indices into the design's block vector, which keeps every per-block
/// table (placements, voltages, activities) a plain `Vec`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BlockId(pub usize);

impl BlockId {
    /// The zero-based index of the block.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

impl From<usize> for BlockId {
    fn from(v: usize) -> Self {
        BlockId(v)
    }
}

/// Footprint flexibility of a block.
///
/// GSRC benchmarks contain only soft blocks (area fixed, aspect ratio flexible);
/// IBM-HB+ benchmarks mix hard macros (fixed width/height) and soft blocks.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BlockShape {
    /// Fixed footprint: the block must be placed with exactly this width and height
    /// (rotation by 90° is still allowed by the floorplanner).
    Hard {
        /// Width in µm.
        width: f64,
        /// Height in µm.
        height: f64,
    },
    /// Flexible footprint: the area is fixed but the aspect ratio may vary within
    /// `[min_aspect, max_aspect]` (height / width).
    Soft {
        /// Area in µm².
        area: f64,
        /// Minimum aspect ratio (height/width).
        min_aspect: f64,
        /// Maximum aspect ratio (height/width).
        max_aspect: f64,
    },
}

impl BlockShape {
    /// A hard block of the given size.
    pub fn hard(width: f64, height: f64) -> Self {
        BlockShape::Hard { width, height }
    }

    /// A soft block with the default aspect-ratio range `[1/3, 3]` used by the GSRC suite.
    pub fn soft(area: f64) -> Self {
        BlockShape::Soft {
            area,
            min_aspect: 1.0 / 3.0,
            max_aspect: 3.0,
        }
    }

    /// Block area in µm².
    pub fn area(&self) -> f64 {
        match *self {
            BlockShape::Hard { width, height } => width * height,
            BlockShape::Soft { area, .. } => area,
        }
    }

    /// Returns `true` for hard blocks.
    pub fn is_hard(&self) -> bool {
        matches!(self, BlockShape::Hard { .. })
    }

    /// Returns `true` for soft blocks.
    pub fn is_soft(&self) -> bool {
        matches!(self, BlockShape::Soft { .. })
    }

    /// Width and height realizing the given aspect ratio.
    ///
    /// For hard blocks the stored dimensions are returned unchanged; for soft blocks the
    /// requested aspect ratio is clamped into the legal range and dimensions with the stored
    /// area are derived (`height = sqrt(area * ar)`, `width = area / height`).
    pub fn dimensions(&self, aspect: f64) -> (f64, f64) {
        match *self {
            BlockShape::Hard { width, height } => (width, height),
            BlockShape::Soft {
                area,
                min_aspect,
                max_aspect,
            } => {
                let ar = aspect.clamp(min_aspect, max_aspect);
                let height = (area * ar).sqrt();
                let width = area / height;
                (width, height)
            }
        }
    }

    /// Returns a copy with both linear dimensions scaled by `factor` (area scales by
    /// `factor²`), mirroring the module up-scaling applied in Section 7 of the paper.
    pub fn scaled(&self, factor: f64) -> BlockShape {
        match *self {
            BlockShape::Hard { width, height } => BlockShape::Hard {
                width: width * factor,
                height: height * factor,
            },
            BlockShape::Soft {
                area,
                min_aspect,
                max_aspect,
            } => BlockShape::Soft {
                area: area * factor * factor,
                min_aspect,
                max_aspect,
            },
        }
    }
}

/// A block (module) of the design: a named footprint with a nominal power value.
///
/// The paper treats blocks as black-box IP: only area, pins and nominal power are known.
/// `power` is the nominal dissipation in watts at the 1.0 V operating point; voltage
/// assignment scales it (see `tsc3d-power`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Block {
    name: String,
    shape: BlockShape,
    power: f64,
}

impl Block {
    /// Creates a block.
    ///
    /// # Panics
    ///
    /// Panics if `power` is negative or the shape has non-positive area.
    pub fn new(name: impl Into<String>, shape: BlockShape, power: f64) -> Self {
        assert!(power >= 0.0, "block power must be non-negative");
        assert!(shape.area() > 0.0, "block area must be positive");
        Self {
            name: name.into(),
            shape,
            power,
        }
    }

    /// Block name (unique within a design).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Footprint description.
    pub fn shape(&self) -> &BlockShape {
        &self.shape
    }

    /// Block area in µm².
    pub fn area(&self) -> f64 {
        self.shape.area()
    }

    /// Nominal power in watts at 1.0 V.
    pub fn power(&self) -> f64 {
        self.power
    }

    /// Nominal power density in W/µm².
    pub fn power_density(&self) -> f64 {
        self.power / self.area()
    }

    /// Returns a copy with the footprint linearly scaled by `factor` and the same power.
    pub fn scaled(&self, factor: f64) -> Block {
        Block {
            name: self.name.clone(),
            shape: self.shape.scaled(factor),
            power: self.power,
        }
    }

    /// Returns a copy with a different nominal power.
    pub fn with_power(&self, power: f64) -> Block {
        assert!(power >= 0.0, "block power must be non-negative");
        Block {
            name: self.name.clone(),
            shape: self.shape,
            power,
        }
    }
}

impl fmt::Display for Block {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({:.0} µm², {:.3} W)",
            self.name,
            self.area(),
            self.power
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hard_block_dimensions_are_fixed() {
        let s = BlockShape::hard(10.0, 20.0);
        assert_eq!(s.area(), 200.0);
        assert!(s.is_hard());
        assert_eq!(s.dimensions(5.0), (10.0, 20.0));
    }

    #[test]
    fn soft_block_respects_aspect_bounds() {
        let s = BlockShape::soft(100.0);
        assert!(s.is_soft());
        let (w, h) = s.dimensions(1.0);
        assert!((w - 10.0).abs() < 1e-9 && (h - 10.0).abs() < 1e-9);
        // Requesting an extreme aspect ratio clamps to the bound but keeps the area.
        let (w, h) = s.dimensions(100.0);
        assert!((w * h - 100.0).abs() < 1e-9);
        assert!((h / w - 3.0).abs() < 1e-9);
    }

    #[test]
    fn scaling_scales_area_quadratically() {
        let s = BlockShape::soft(100.0).scaled(10.0);
        assert!((s.area() - 10_000.0).abs() < 1e-9);
        let h = BlockShape::hard(2.0, 3.0).scaled(2.0);
        assert_eq!(h.area(), 24.0);
    }

    #[test]
    fn block_accessors() {
        let b = Block::new("alu", BlockShape::hard(100.0, 100.0), 0.5);
        assert_eq!(b.name(), "alu");
        assert_eq!(b.area(), 10_000.0);
        assert!((b.power_density() - 5e-5).abs() < 1e-12);
        assert_eq!(b.with_power(1.0).power(), 1.0);
        assert_eq!(b.scaled(2.0).area(), 40_000.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_power_rejected() {
        let _ = Block::new("x", BlockShape::soft(1.0), -1.0);
    }

    #[test]
    fn block_id_display() {
        assert_eq!(format!("{}", BlockId(7)), "b7");
        assert_eq!(BlockId::from(3).index(), 3);
    }
}

//! Block-level netlist model and benchmark suites for 3D-IC floorplanning.
//!
//! The DAC'17 paper evaluates its TSC-aware floorplanning on GSRC (`n100`, `n200`, `n300`)
//! and IBM-HB+ (`ibm01`, `ibm03`, `ibm07`) block-level benchmarks. Those benchmark files are
//! not redistributable here, so this crate provides:
//!
//! * a clean data model for block-level designs — [`Block`], [`Net`], [`Terminal`],
//!   [`Design`] — carrying exactly the information the paper relies on (footprints,
//!   connectivity, nominal power),
//! * a parser and writer for the GSRC-style `.blocks` / `.nets` / `.pl` text format
//!   ([`gsrc`]) so externally obtained benchmarks can be used directly, and
//! * deterministic synthetic generators ([`suite`]) that reproduce the aggregate properties
//!   of Table 1 of the paper (module counts, hard/soft split, net counts, terminal counts,
//!   die outlines, and total power at 1.0 V).
//!
//! # Example
//!
//! ```
//! use tsc3d_netlist::suite::{Benchmark, generate};
//!
//! let design = generate(Benchmark::N100, 42);
//! assert_eq!(design.blocks().len(), 100);
//! assert!(design.total_power() > 7.0 && design.total_power() < 9.0);
//! ```

#![warn(missing_docs)]

mod block;
mod design;
pub mod gsrc;
mod net;
pub mod suite;

pub use block::{Block, BlockId, BlockShape};
pub use design::{Design, DesignError, DesignStats};
pub use net::{Net, NetId, PinRef, Terminal, TerminalId};

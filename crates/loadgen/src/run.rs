//! Executing a schedule against a live serve instance.
//!
//! Workers are `tsc3d-exec` pool jobs sharing one schedule through an atomic
//! cursor, so the *set* of requests issued is identical for any worker count —
//! only the interleaving changes. Two pacing modes:
//!
//! - **closed-loop**: each worker issues its next request as soon as the
//!   previous one finishes (fixed concurrency = worker count); latency is
//!   measured around the request itself.
//! - **open-loop**: each request has an intended send time from the seeded
//!   schedule, and latency is measured from that *intended* time — a request
//!   delayed because the generator fell behind still pays for the delay. This
//!   is the coordinated-omission-free measurement: a stalled server cannot
//!   hide its stall by slowing the generator down.

use crate::client::{self, Outcome, ReadMode};
use crate::mix::OpKind;
use crate::schedule::ScheduledRequest;
use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tsc3d_exec::{CancelToken, Pool};
use tsc3d_obs::LogHistogram;

/// Pacing discipline for a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Fixed concurrency; issue as fast as responses return.
    Closed,
    /// Seeded arrival schedule; latency from intended send time.
    Open,
}

impl Mode {
    /// The identity string used in BENCH_serve.json rows.
    pub fn as_str(self) -> &'static str {
        match self {
            Mode::Closed => "closed",
            Mode::Open => "open",
        }
    }

    /// Parses `closed` / `open`.
    pub fn parse(s: &str) -> Option<Mode> {
        match s {
            "closed" => Some(Mode::Closed),
            "open" => Some(Mode::Open),
            _ => None,
        }
    }
}

/// Per-endpoint accumulation shared by all workers.
#[derive(Default)]
pub struct EndpointRecord {
    /// Request latency (ns), HDR log-bucketed.
    pub latency: LogHistogram,
    /// 2xx/3xx responses.
    pub ok: AtomicU64,
    /// 4xx responses (expected under probing workloads — e.g. polls of
    /// not-yet-allocated job ids).
    pub client_errors: AtomicU64,
    /// 5xx responses.
    pub server_errors: AtomicU64,
    /// Requests that never produced a parseable status line.
    pub io_errors: AtomicU64,
}

impl EndpointRecord {
    /// Records one request outcome with its latency.
    pub fn record(&self, outcome: &Outcome, latency: Duration) {
        let nanos = latency.as_nanos().min(u128::from(u64::MAX)) as u64;
        self.latency.observe(nanos.max(1));
        match outcome {
            Outcome::Status(status) if (500..600).contains(status) => {
                self.server_errors.fetch_add(1, Ordering::Relaxed)
            }
            Outcome::Status(status) if (400..500).contains(status) => {
                self.client_errors.fetch_add(1, Ordering::Relaxed)
            }
            Outcome::Status(_) => self.ok.fetch_add(1, Ordering::Relaxed),
            Outcome::IoError => self.io_errors.fetch_add(1, Ordering::Relaxed),
        };
    }

    /// Total requests recorded against this endpoint.
    pub fn total(&self) -> u64 {
        self.latency.count()
    }
}

/// Everything one run produced.
pub struct RunResult {
    /// Per-endpoint latency/outcome accumulators, keyed by endpoint identity.
    pub endpoints: BTreeMap<&'static str, Arc<EndpointRecord>>,
    /// Wall-clock duration of the issuing phase.
    pub elapsed: Duration,
    /// Requests actually issued (≤ schedule length when the deadline fires).
    pub issued: usize,
    /// Total 5xx responses across endpoints.
    pub server_errors: u64,
    /// Total transport-level failures across endpoints.
    pub io_errors: u64,
}

impl RunResult {
    /// Overall achieved request rate (issued / elapsed).
    pub fn requests_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.issued as f64 / secs
    }
}

/// Parameters of one run.
pub struct RunConfig {
    /// Server address.
    pub addr: SocketAddr,
    /// Pacing discipline.
    pub mode: Mode,
    /// Worker count (closed-loop concurrency; open-loop issuing parallelism).
    pub workers: usize,
    /// Per-request socket timeout.
    pub timeout: Duration,
    /// Overall wall-clock budget; the run stops issuing when it elapses.
    pub deadline: Duration,
}

/// Runs `schedule` against the server and returns the per-endpoint results.
pub fn execute(config: &RunConfig, schedule: Arc<Vec<ScheduledRequest>>) -> RunResult {
    let mut endpoints: BTreeMap<&'static str, Arc<EndpointRecord>> = BTreeMap::new();
    for request in schedule.iter() {
        endpoints.entry(request.endpoint).or_default();
    }
    let cursor = Arc::new(AtomicUsize::new(0));
    let cancel = CancelToken::new().with_deadline(config.deadline);
    let workers = config.workers.max(1);
    let pool = Pool::new(workers);
    let started = Instant::now();

    {
        let endpoints = endpoints.clone();
        let schedule = Arc::clone(&schedule);
        let cursor = Arc::clone(&cursor);
        let cancel = cancel.clone();
        let addr = config.addr;
        let mode = config.mode;
        let timeout = config.timeout;
        // `run_batch` runs single-element batches inline, so issue one job per
        // worker plus one for the caller-helps slot; the shared cursor makes
        // surplus jobs exit immediately once the schedule drains.
        let jobs: Vec<usize> = (0..workers).collect();
        pool.run_batch(jobs, move |_, _| {
            worker_loop(
                &schedule, &cursor, &endpoints, addr, mode, timeout, started, &cancel,
            )
        });
    }
    pool.shutdown();

    let elapsed = started.elapsed();
    let issued = cursor.load(Ordering::Relaxed).min(schedule.len());
    let server_errors = endpoints
        .values()
        .map(|r| r.server_errors.load(Ordering::Relaxed))
        .sum();
    let io_errors = endpoints
        .values()
        .map(|r| r.io_errors.load(Ordering::Relaxed))
        .sum();
    RunResult {
        endpoints,
        elapsed,
        issued,
        server_errors,
        io_errors,
    }
}

#[allow(clippy::too_many_arguments)]
fn worker_loop(
    schedule: &[ScheduledRequest],
    cursor: &AtomicUsize,
    endpoints: &BTreeMap<&'static str, Arc<EndpointRecord>>,
    addr: SocketAddr,
    mode: Mode,
    timeout: Duration,
    started: Instant,
    cancel: &CancelToken,
) {
    loop {
        if cancel.is_cancelled().is_some() {
            return;
        }
        let index = cursor.fetch_add(1, Ordering::Relaxed);
        let Some(request) = schedule.get(index) else {
            return;
        };
        let record = &endpoints[request.endpoint];
        let read_mode = match request.kind {
            OpKind::Watch => ReadMode::HeadOnly,
            _ => ReadMode::FullBody,
        };
        let latency_from = match mode {
            Mode::Closed => Instant::now(),
            Mode::Open => {
                // Sleep until the intended send time, then measure from it:
                // if we are already late, the wait the request *would* have
                // experienced counts against the server, not the generator.
                let intended = started + Duration::from_nanos(request.offset_ns);
                let now = Instant::now();
                if intended > now {
                    std::thread::sleep(intended - now);
                }
                intended
            }
        };
        let outcome = client::issue(
            addr,
            request.method,
            &request.path,
            &request.body,
            read_mode,
            timeout,
        );
        record.record(&outcome, latency_from.elapsed());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_round_trips() {
        assert_eq!(Mode::parse("closed"), Some(Mode::Closed));
        assert_eq!(Mode::parse("open"), Some(Mode::Open));
        assert_eq!(Mode::parse("warp"), None);
        assert_eq!(Mode::Open.as_str(), "open");
    }

    #[test]
    fn endpoint_record_classifies_outcomes() {
        let record = EndpointRecord::default();
        record.record(&Outcome::Status(200), Duration::from_micros(50));
        record.record(&Outcome::Status(404), Duration::from_micros(60));
        record.record(&Outcome::Status(503), Duration::from_micros(70));
        record.record(&Outcome::IoError, Duration::from_micros(80));
        assert_eq!(record.ok.load(Ordering::Relaxed), 1);
        assert_eq!(record.client_errors.load(Ordering::Relaxed), 1);
        assert_eq!(record.server_errors.load(Ordering::Relaxed), 1);
        assert_eq!(record.io_errors.load(Ordering::Relaxed), 1);
        assert_eq!(record.total(), 4);
        assert!(record.latency.quantile(0.5) > 0.0);
    }
}

//! Deterministic HTTP load generation for the `tsc3d-serve` daemon.
//!
//! The crate answers one question reproducibly: *what latency does the serve
//! API deliver under a known workload?* It does so in three strictly separated
//! stages, so the expensive part (issuing requests) never contaminates the
//! reproducible part (deciding what to issue):
//!
//! 1. **[`mix`]** — a named, weighted palette of API operations (submissions,
//!    dedup-triggering repeats, status polls, stats/metrics scrapes, SSE
//!    watches).
//! 2. **[`schedule`]** — a seeded ChaCha8 draw materializes the mix into a
//!    concrete request list with integer-jittered arrival offsets. Pure
//!    integer arithmetic: the same `(seed, mix, count, interval)` produces a
//!    byte-identical schedule on every platform, provable via
//!    [`schedule::schedule_dump`].
//! 3. **[`run`]** — `tsc3d-exec` pool workers share the schedule through an
//!    atomic cursor and issue it over blocking [`client`] sockets, in
//!    closed-loop (fixed concurrency) or open-loop mode. Open-loop latency is
//!    measured from each request's *intended* send time, which makes the
//!    numbers immune to coordinated omission: a stalled server pays for every
//!    request scheduled during its stall, not just the first.
//!
//! Per-endpoint latency lands in `tsc3d-obs` HDR histograms and [`report`]
//! renders the run as a `tsc3d-bench-serve/v1` entry for `BENCH_serve.json`,
//! where `obs bench-diff --gate` treats `p50/p95/p99/max_ms` and `errors`
//! columns as lower-is-better and flags label-over-label regressions.
//!
//! The `loadgen` binary ties the stages together and can boot a private
//! in-process server (`--self-serve`) so CI needs no external daemon.

pub mod client;
pub mod mix;
pub mod report;
pub mod run;
pub mod schedule;

pub use client::{Outcome, ReadMode};
pub use mix::{Mix, OpKind};
pub use run::{EndpointRecord, Mode, RunConfig, RunResult};
pub use schedule::{generate, schedule_dump, ScheduledRequest};

//! Workload mixes: the weighted operation palette a schedule is drawn from.
//!
//! Each operation kind maps to one API interaction of the serve daemon; a
//! [`Mix`] assigns integer weights. The named presets keep submission weights
//! low on purpose — flow and sca jobs cost hundreds of milliseconds of pool
//! time each, and a load test whose arrival rate outruns a 2-worker pool only
//! measures its own queue. Repeats and status polls dominate instead, which is
//! also what exercises the dedup, cache, and status fast paths the HTTP-layer
//! metrics were built to see.

/// One kind of request the generator can issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// `POST /v1/jobs` with a small flow spec (a few distinct seeds cycle).
    SubmitFlow,
    /// `POST /v1/jobs` with a small sca spec.
    SubmitSca,
    /// `POST /v1/jobs` re-submitting the first flow body verbatim — lands as a
    /// dedup join while the job runs and a cache hit afterwards.
    SubmitRepeat,
    /// `GET /v1/jobs/{id}` over a small id window (early ids 404 until the
    /// first submissions allocate them — a 4xx outcome, not a failure).
    PollStatus,
    /// `GET /v1/stats`.
    Stats,
    /// `GET /metrics`.
    Metrics,
    /// `GET /v1/events`: open the SSE stream, time to the response head, drop.
    Watch,
}

impl OpKind {
    /// The endpoint identity this op reports under in BENCH_serve.json rows.
    /// Submission variants are split — a dedup-triggering repeat and a fresh
    /// flow submission have very different latency truths.
    pub fn endpoint(self) -> &'static str {
        match self {
            OpKind::SubmitFlow => "/v1/jobs:flow",
            OpKind::SubmitSca => "/v1/jobs:sca",
            OpKind::SubmitRepeat => "/v1/jobs:repeat",
            OpKind::PollStatus => "/v1/jobs/{id}",
            OpKind::Stats => "/v1/stats",
            OpKind::Metrics => "/metrics",
            OpKind::Watch => "/v1/events",
        }
    }
}

/// A weighted operation mix.
#[derive(Debug, Clone)]
pub struct Mix {
    /// The preset name (row identity in BENCH_serve.json).
    pub name: &'static str,
    /// `(op, weight)` pairs; weights are relative draw frequencies.
    pub weights: Vec<(OpKind, u32)>,
}

impl Mix {
    /// Looks a preset up by name: `mixed` (every op kind, read-heavy),
    /// `reads` (polls/stats/metrics only — no submissions at all), or
    /// `submits` (submission-heavy, exercising dedup and backpressure).
    pub fn preset(name: &str) -> Option<Mix> {
        let weights = match name {
            "mixed" => vec![
                (OpKind::SubmitFlow, 6),
                (OpKind::SubmitSca, 2),
                (OpKind::SubmitRepeat, 10),
                (OpKind::PollStatus, 40),
                (OpKind::Stats, 14),
                (OpKind::Metrics, 14),
                (OpKind::Watch, 4),
            ],
            "reads" => vec![
                (OpKind::PollStatus, 60),
                (OpKind::Stats, 20),
                (OpKind::Metrics, 20),
            ],
            "submits" => vec![
                (OpKind::SubmitFlow, 25),
                (OpKind::SubmitRepeat, 50),
                (OpKind::PollStatus, 25),
            ],
            _ => return None,
        };
        Some(Mix {
            name: match name {
                "mixed" => "mixed",
                "reads" => "reads",
                _ => "submits",
            },
            weights,
        })
    }

    /// Sum of the weights (the modulus of the weighted draw).
    pub fn total_weight(&self) -> u64 {
        self.weights.iter().map(|(_, w)| u64::from(*w)).sum()
    }

    /// The op at weighted position `ticket` (`ticket < total_weight()`).
    pub fn pick(&self, ticket: u64) -> OpKind {
        let mut remaining = ticket;
        for (op, weight) in &self.weights {
            let weight = u64::from(*weight);
            if remaining < weight {
                return *op;
            }
            remaining -= weight;
        }
        // ticket out of range: clamp to the last op rather than panic.
        self.weights.last().expect("non-empty mix").0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_exist_and_unknown_is_none() {
        for name in ["mixed", "reads", "submits"] {
            let mix = Mix::preset(name).expect(name);
            assert!(mix.total_weight() > 0);
            assert_eq!(mix.name, name);
        }
        assert!(Mix::preset("nope").is_none());
    }

    #[test]
    fn pick_walks_the_weight_table() {
        let mix = Mix::preset("reads").unwrap();
        assert_eq!(mix.pick(0), OpKind::PollStatus);
        assert_eq!(mix.pick(59), OpKind::PollStatus);
        assert_eq!(mix.pick(60), OpKind::Stats);
        assert_eq!(mix.pick(99), OpKind::Metrics);
    }

    #[test]
    fn reads_mix_never_submits() {
        let mix = Mix::preset("reads").unwrap();
        assert!(mix.weights.iter().all(|(op, _)| !matches!(
            op,
            OpKind::SubmitFlow | OpKind::SubmitSca | OpKind::SubmitRepeat
        )));
    }
}

//! BENCH_serve.json emission.
//!
//! Schema `tsc3d-bench-serve/v1`: a top-level `entries` array, one object per
//! labeled run, each with an `http` section of per-endpoint rows. Row fields
//! follow the `obs bench-diff` naming convention — `endpoint`/`mode`/`mix`
//! are identity strings, `p50_ms`/`p95_ms`/`p99_ms`/`max_ms` and `errors`
//! carry lower-is-better polarity, `requests_per_sec` higher-is-better — so
//! latency regressions gate exactly like throughput drops do in
//! `BENCH_flow.json`.

use crate::run::{Mode, RunResult};
use std::sync::atomic::Ordering;
use tsc3d_campaign::json::Json;

/// The schema string written at the top of `BENCH_serve.json`.
pub const SCHEMA: &str = "tsc3d-bench-serve/v1";

/// Builds the `entries[]` object for one run: identity (`label`, optional
/// `note`) plus the `http` section. Quantiles of an empty histogram render as
/// `0.0` — a string sentinel would join the row identity key and break
/// label-over-label matching in `bench-diff`.
pub fn render_entry(
    label: &str,
    note: Option<&str>,
    mix: &str,
    mode: Mode,
    result: &RunResult,
) -> Json {
    let mut members = vec![("label".to_string(), Json::Str(label.to_string()))];
    if let Some(note) = note {
        members.push(("note".to_string(), Json::Str(note.to_string())));
    }
    let mut rows = Vec::new();
    let secs = result.elapsed.as_secs_f64().max(f64::MIN_POSITIVE);
    for (endpoint, record) in &result.endpoints {
        if record.total() == 0 {
            continue;
        }
        let ms = |q: f64| {
            let v = record.latency.quantile(q) / 1e6;
            if v.is_finite() {
                v
            } else {
                0.0
            }
        };
        let errors =
            record.server_errors.load(Ordering::Relaxed) + record.io_errors.load(Ordering::Relaxed);
        rows.push(Json::Obj(vec![
            ("endpoint".to_string(), Json::Str((*endpoint).to_string())),
            ("mode".to_string(), Json::Str(mode.as_str().to_string())),
            ("mix".to_string(), Json::Str(mix.to_string())),
            ("p50_ms".to_string(), Json::Num(ms(0.5))),
            ("p95_ms".to_string(), Json::Num(ms(0.95))),
            ("p99_ms".to_string(), Json::Num(ms(0.99))),
            (
                "max_ms".to_string(),
                Json::Num(record.latency.max_ns() as f64 / 1e6),
            ),
            (
                "requests_per_sec".to_string(),
                Json::Num(record.total() as f64 / secs),
            ),
            ("errors".to_string(), Json::UInt(errors)),
        ]));
    }
    members.push(("http".to_string(), Json::Arr(rows)));
    Json::Obj(members)
}

/// Wraps one entry into a fresh schema-versioned document (the `--json` path).
pub fn fresh_doc(entry: Json) -> Json {
    Json::Obj(vec![
        ("schema".to_string(), Json::Str(SCHEMA.to_string())),
        ("entries".to_string(), Json::Arr(vec![entry])),
    ])
}

/// Pushes `entry` onto an existing document's `entries` array (the `--append`
/// path), or starts a fresh document when `existing` is `None`.
pub fn append_entry(existing: Option<Json>, entry: Json) -> Json {
    let mut doc = existing.unwrap_or_else(|| {
        Json::Obj(vec![
            ("schema".to_string(), Json::Str(SCHEMA.to_string())),
            ("entries".to_string(), Json::Arr(Vec::new())),
        ])
    });
    if let Json::Obj(members) = &mut doc {
        if let Some((_, Json::Arr(entries))) = members.iter_mut().find(|(k, _)| k == "entries") {
            entries.push(entry);
            return doc;
        }
        members.push(("entries".to_string(), Json::Arr(vec![entry])));
    }
    doc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Outcome;
    use crate::run::EndpointRecord;
    use std::collections::BTreeMap;
    use std::sync::Arc;
    use std::time::Duration;

    fn sample_result() -> RunResult {
        let record = Arc::new(EndpointRecord::default());
        record.latency.observe(1_000_000);
        record.latency.observe(2_000_000);
        record.ok.fetch_add(2, Ordering::Relaxed);
        let empty = Arc::new(EndpointRecord::default());
        let mut endpoints: BTreeMap<&'static str, Arc<EndpointRecord>> = BTreeMap::new();
        endpoints.insert("/healthz", record);
        endpoints.insert("/v1/stats", empty);
        let server_errors = 0;
        let io_errors = 0;
        RunResult {
            endpoints,
            elapsed: Duration::from_secs(2),
            issued: 2,
            server_errors,
            io_errors,
        }
    }

    #[test]
    fn entry_rows_parse_under_obs_bench_diff() {
        let entry = render_entry(
            "pr10",
            Some("unit"),
            "mixed",
            Mode::Closed,
            &sample_result(),
        );
        let doc = fresh_doc(entry);
        let file = tsc3d_obs::bench::parse_bench(&doc.render()).expect("parses");
        assert_eq!(file.schema, SCHEMA);
        let (section, rows) = &file.entries[0].sections[0];
        assert_eq!(section, "http");
        // The untouched endpoint is skipped; the healthz row carries identity
        // and all six metric columns.
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].key, "endpoint=/healthz mode=closed mix=mixed");
        let names: Vec<&str> = rows[0].rates.iter().map(|(n, _, _)| n.as_str()).collect();
        assert_eq!(
            names,
            [
                "p50_ms",
                "p95_ms",
                "p99_ms",
                "max_ms",
                "requests_per_sec",
                "errors"
            ]
        );
        let rps = rows[0]
            .rates
            .iter()
            .find(|(n, _, _)| n == "requests_per_sec")
            .unwrap();
        assert!((rps.1 - 1.0).abs() < 1e-9, "2 requests over 2s");
    }

    #[test]
    fn append_extends_and_bootstraps() {
        let first = render_entry("a", None, "reads", Mode::Open, &sample_result());
        let doc = append_entry(None, first);
        let second = render_entry("b", None, "reads", Mode::Open, &sample_result());
        let doc = append_entry(Some(doc), second);
        let file = tsc3d_obs::bench::parse_bench(&doc.render()).expect("parses");
        let labels: Vec<&str> = file.entries.iter().map(|e| e.label.as_str()).collect();
        assert_eq!(labels, ["a", "b"]);
    }

    #[test]
    fn error_outcome_lands_in_errors_column() {
        let mut result = sample_result();
        let record = Arc::get_mut(result.endpoints.get_mut("/healthz").unwrap());
        // Arc has two strong refs only in the real run; here it is unique.
        let record = record.expect("unique in test");
        record.record(&Outcome::Status(503), Duration::from_millis(1));
        result.server_errors = 1;
        let entry = render_entry("x", None, "mixed", Mode::Closed, &result);
        let doc = fresh_doc(entry);
        let file = tsc3d_obs::bench::parse_bench(&doc.render()).unwrap();
        let row = &file.entries[0].sections[0].1[0];
        let errors = row.rates.iter().find(|(n, _, _)| n == "errors").unwrap();
        assert_eq!(errors.1, 1.0);
    }
}

//! `loadgen` — drive a `tsc3d-serve` instance with a seeded workload and
//! record the latency trajectory.
//!
//! ```text
//! loadgen --addr 127.0.0.1:7878 --mix mixed --requests 2000 --label pr10 \
//!         --append BENCH_serve.json
//! loadgen --self-serve --mode open --mean-interval-us 800 --schedule-out s.tsv
//! ```

use std::net::SocketAddr;
use std::process::ExitCode;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;
use tsc3d_campaign::json::Json;
use tsc3d_loadgen::{mix::Mix, report, run, schedule};
use tsc3d_serve::{Server, ServerConfig};

const USAGE: &str = "\
loadgen — deterministic HTTP load generator for tsc3d-serve

USAGE:
    loadgen [--addr HOST:PORT | --self-serve] [OPTIONS]

TARGET:
    --addr HOST:PORT        drive an already-running server
    --self-serve            boot a private in-process server on an ephemeral
                            port, drive it, and shut it down afterwards

WORKLOAD:
    --mix NAME              operation mix: mixed | reads | submits  [mixed]
    --requests N            schedule length                         [500]
    --seed N                schedule seed                           [42]
    --mode MODE             closed | open                           [closed]
    --workers N             worker threads (closed-loop concurrency) [4]
    --mean-interval-us N    open-loop mean arrival interval, µs     [1000]
    --deadline-s N          wall-clock budget for the issuing phase [60]
    --timeout-ms N          per-request socket timeout              [5000]

OUTPUT:
    --label LABEL           bench entry label                       [dev]
    --note TEXT             free-form note stored on the entry
    --json PATH             write a fresh BENCH_serve.json with this run
    --append PATH           append this run to an existing BENCH_serve.json
    --schedule-out PATH     dump the generated schedule (stable text form)
    --fail-on-5xx           exit 1 if any request drew a 5xx or I/O error
";

fn arg_value(name: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(arg) = args.next() {
        if arg == name {
            return args.next();
        }
    }
    None
}

fn arg_present(name: &str) -> bool {
    std::env::args().any(|arg| arg == name)
}

fn parsed<T: std::str::FromStr>(name: &str, default: T) -> Result<T, ExitCode> {
    match arg_value(name) {
        None => Ok(default),
        Some(raw) => raw.parse().map_err(|_| {
            eprintln!("loadgen: {name} takes a number, got '{raw}'");
            ExitCode::from(2)
        }),
    }
}

fn main() -> ExitCode {
    if arg_present("--help") || arg_present("-h") {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }

    let mix_name = arg_value("--mix").unwrap_or_else(|| "mixed".to_string());
    let Some(mix) = Mix::preset(&mix_name) else {
        eprintln!("loadgen: unknown mix '{mix_name}' (mixed | reads | submits)");
        return ExitCode::from(2);
    };
    let mode = {
        let raw = arg_value("--mode").unwrap_or_else(|| "closed".to_string());
        match run::Mode::parse(&raw) {
            Some(mode) => mode,
            None => {
                eprintln!("loadgen: unknown mode '{raw}' (closed | open)");
                return ExitCode::from(2);
            }
        }
    };
    let requests: usize = match parsed("--requests", 500) {
        Ok(v) => v,
        Err(code) => return code,
    };
    let seed: u64 = match parsed("--seed", 42) {
        Ok(v) => v,
        Err(code) => return code,
    };
    let workers: usize = match parsed("--workers", 4) {
        Ok(v) => v,
        Err(code) => return code,
    };
    let mean_interval_us: u64 = match parsed("--mean-interval-us", 1000) {
        Ok(v) => v,
        Err(code) => return code,
    };
    let deadline_s: u64 = match parsed("--deadline-s", 60) {
        Ok(v) => v,
        Err(code) => return code,
    };
    let timeout_ms: u64 = match parsed("--timeout-ms", 5000) {
        Ok(v) => v,
        Err(code) => return code,
    };
    let label = arg_value("--label").unwrap_or_else(|| "dev".to_string());

    // The schedule exists before (and independently of) any server: dumping it
    // must work even when the run later fails.
    let plan = Arc::new(schedule::generate(
        seed,
        &mix,
        requests,
        mean_interval_us.saturating_mul(1000),
    ));
    if let Some(path) = arg_value("--schedule-out") {
        if let Err(err) = std::fs::write(&path, schedule::schedule_dump(&plan)) {
            eprintln!("loadgen: could not write {path}: {err}");
            return ExitCode::from(2);
        }
        println!(
            "loadgen: schedule ({} requests) written to {path}",
            plan.len()
        );
        // Plan-only mode: with no target given, dumping the schedule IS the
        // run (the determinism harness diffs these dumps across invocations).
        if !arg_present("--self-serve") && arg_value("--addr").is_none() {
            return ExitCode::SUCCESS;
        }
    }

    // Resolve the target: an external server or a private in-process one.
    let mut self_server = None;
    let addr: SocketAddr = if arg_present("--self-serve") {
        let server = match Server::start(ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            http_threads: 4,
            queue_cap: 64,
            cache_cap: 256,
            ..ServerConfig::default()
        }) {
            Ok(server) => server,
            Err(err) => {
                eprintln!("loadgen: self-serve boot failed: {err:?}");
                return ExitCode::FAILURE;
            }
        };
        let addr = server.local_addr();
        self_server = Some(server);
        addr
    } else {
        let Some(raw) = arg_value("--addr") else {
            eprintln!("loadgen: need --addr HOST:PORT or --self-serve (see --help)");
            return ExitCode::from(2);
        };
        match raw.parse() {
            Ok(addr) => addr,
            Err(_) => {
                eprintln!("loadgen: '--addr {raw}' is not HOST:PORT");
                return ExitCode::from(2);
            }
        }
    };

    println!(
        "loadgen: {} {} requests (mix {}, seed {seed}, {} workers) against {addr}",
        mode.as_str(),
        plan.len(),
        mix.name,
        workers
    );
    let config = run::RunConfig {
        addr,
        mode,
        workers,
        timeout: Duration::from_millis(timeout_ms),
        deadline: Duration::from_secs(deadline_s),
    };
    let result = run::execute(&config, Arc::clone(&plan));
    if let Some(server) = self_server {
        server.shutdown();
    }

    // Human summary, one line per touched endpoint.
    println!(
        "loadgen: issued {}/{} in {:.2}s ({:.0} req/s overall), {} server errors, {} I/O errors",
        result.issued,
        plan.len(),
        result.elapsed.as_secs_f64(),
        result.requests_per_sec(),
        result.server_errors,
        result.io_errors
    );
    for (endpoint, record) in &result.endpoints {
        if record.total() == 0 {
            continue;
        }
        println!(
            "  {endpoint:<16} n={:<6} p50={:>9} p99={:>9} max={:>9} ok={} 4xx={} 5xx={} io={}",
            record.total(),
            tsc3d_obs::report::fmt_ns(record.latency.quantile(0.5) as u64),
            tsc3d_obs::report::fmt_ns(record.latency.quantile(0.99) as u64),
            tsc3d_obs::report::fmt_ns(record.latency.max_ns()),
            record.ok.load(Ordering::Relaxed),
            record.client_errors.load(Ordering::Relaxed),
            record.server_errors.load(Ordering::Relaxed),
            record.io_errors.load(Ordering::Relaxed),
        );
    }

    let entry = report::render_entry(
        &label,
        arg_value("--note").as_deref(),
        mix.name,
        mode,
        &result,
    );
    if let Some(path) = arg_value("--json") {
        if write_doc(&path, &report::fresh_doc(entry.clone())).is_err() {
            return ExitCode::FAILURE;
        }
        println!("loadgen: wrote {path}");
    }
    if let Some(path) = arg_value("--append") {
        let existing = std::fs::read_to_string(&path)
            .ok()
            .and_then(|text| Json::parse(&text).ok());
        if write_doc(&path, &report::append_entry(existing, entry)).is_err() {
            return ExitCode::FAILURE;
        }
        println!("loadgen: appended entry '{label}' to {path}");
    }

    if arg_present("--fail-on-5xx") && result.server_errors + result.io_errors > 0 {
        eprintln!(
            "loadgen: FAIL — {} server errors, {} I/O errors",
            result.server_errors, result.io_errors
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn write_doc(path: &str, doc: &Json) -> Result<(), ()> {
    if let Some(parent) = std::path::Path::new(path).parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    std::fs::write(path, format!("{}\n", doc.render())).map_err(|err| {
        eprintln!("loadgen: could not write {path}: {err}");
    })
}

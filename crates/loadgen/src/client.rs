//! A minimal blocking HTTP/1.1 client over `std::net::TcpStream`.
//!
//! One request per connection (`Connection: close`), which keeps the client
//! honest about connection-setup cost and matches how the serve daemon's
//! accept-to-last-byte latency histogram frames a request. Two read modes:
//! full-body (normal requests) and head-only (SSE watchers, which would
//! otherwise block on an endless stream — we time to the response head and
//! drop the socket).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// How much of the response a request waits for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadMode {
    /// Read until the server closes the connection (full response).
    FullBody,
    /// Read only through the end of the response headers, then drop. Used for
    /// SSE streams, whose bodies never end.
    HeadOnly,
}

/// Outcome of one request attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// A parsed HTTP status line (any status, including 4xx/5xx).
    Status(u16),
    /// Connect, write, read, or parse failure — the server never answered.
    IoError,
}

impl Outcome {
    /// True for 5xx statuses (server-side failures).
    pub fn is_server_error(&self) -> bool {
        matches!(self, Outcome::Status(status) if (500..600).contains(status))
    }
}

/// Issues one HTTP request and returns the outcome. All socket operations are
/// bounded by `timeout`; any failure maps to [`Outcome::IoError`].
pub fn issue(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
    mode: ReadMode,
    timeout: Duration,
) -> Outcome {
    match issue_inner(addr, method, path, body, mode, timeout) {
        Some(status) => Outcome::Status(status),
        None => Outcome::IoError,
    }
}

fn issue_inner(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
    mode: ReadMode,
    timeout: Duration,
) -> Option<u16> {
    let mut stream = TcpStream::connect_timeout(&addr, timeout).ok()?;
    stream.set_read_timeout(Some(timeout)).ok()?;
    stream.set_write_timeout(Some(timeout)).ok()?;
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: loadgen\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).ok()?;
    let mut response = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                response.extend_from_slice(&chunk[..n]);
                if mode == ReadMode::HeadOnly && find_header_end(&response).is_some() {
                    break;
                }
                // Backstop against unbounded bodies in full-body mode: the
                // serve daemon caps payloads well below this.
                if response.len() > 8 << 20 {
                    break;
                }
            }
            Err(_) => return parse_status(&response),
        }
    }
    parse_status(&response)
}

fn find_header_end(bytes: &[u8]) -> Option<usize> {
    bytes.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Parses the status code out of an HTTP/1.x status line.
fn parse_status(response: &[u8]) -> Option<u16> {
    let line_end = response.iter().position(|&b| b == b'\r')?;
    let line = std::str::from_utf8(&response[..line_end]).ok()?;
    let code = line.strip_prefix("HTTP/1.")?.get(2..5)?;
    code.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_status_lines() {
        assert_eq!(parse_status(b"HTTP/1.1 200 OK\r\n\r\n"), Some(200));
        assert_eq!(
            parse_status(b"HTTP/1.0 404 Not Found\r\nX: y\r\n\r\n"),
            Some(404)
        );
        assert_eq!(parse_status(b"garbage"), None);
        assert_eq!(parse_status(b""), None);
    }

    #[test]
    fn header_end_detection() {
        assert_eq!(
            find_header_end(b"HTTP/1.1 200 OK\r\nA: b\r\n\r\nbody"),
            Some(21)
        );
        assert_eq!(find_header_end(b"HTTP/1.1 200 OK\r\nA: b\r\n"), None);
    }

    #[test]
    fn connect_failure_is_io_error() {
        // A port nothing listens on (reserved port 1 on localhost).
        let addr: SocketAddr = "127.0.0.1:1".parse().unwrap();
        let outcome = issue(
            addr,
            "GET",
            "/healthz",
            "",
            ReadMode::FullBody,
            Duration::from_millis(200),
        );
        assert_eq!(outcome, Outcome::IoError);
        assert!(!outcome.is_server_error());
    }

    #[test]
    fn server_error_classification() {
        assert!(Outcome::Status(500).is_server_error());
        assert!(Outcome::Status(503).is_server_error());
        assert!(!Outcome::Status(200).is_server_error());
        assert!(!Outcome::Status(404).is_server_error());
        assert!(!Outcome::IoError.is_server_error());
    }
}

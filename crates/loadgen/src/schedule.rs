//! Seeded request schedules.
//!
//! A schedule is the full, materialized list of requests a run will issue:
//! operation order, bodies, and (for open-loop pacing) intended send offsets.
//! It is a pure function of `(seed, mix, count, mean interval)` — generation
//! uses only integer arithmetic on a ChaCha8 stream, never floats or the wall
//! clock, so the same inputs produce byte-identical schedules on every
//! platform and across any worker count. [`schedule_dump`] renders that
//! identity in a stable text form the determinism tests (and `--schedule-out`)
//! compare against a committed golden file.

use crate::mix::{Mix, OpKind};
use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// One fully-specified request in a schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduledRequest {
    /// Position in the schedule (0-based).
    pub index: usize,
    /// Intended send time as nanoseconds after the run's start (open-loop
    /// pacing target; closed-loop runs ignore it).
    pub offset_ns: u64,
    /// HTTP method.
    pub method: &'static str,
    /// Request target path.
    pub path: String,
    /// Request body (empty for GETs).
    pub body: String,
    /// Reporting identity (see [`OpKind::endpoint`]).
    pub endpoint: &'static str,
    /// The operation kind this request realizes.
    pub kind: OpKind,
}

/// Flow-submission body for one of the cycling seeds. Seed 1 doubles as the
/// dedup-repeat body, so repeats always collide with a prior real submission.
fn flow_body(seed: u64) -> String {
    format!(
        "{{\"type\":\"flow\",\"benchmark\":\"n100\",\"setup\":\"tsc\",\"seed\":{seed},\
         \"stages\":4,\"moves\":8,\"grid_bins\":10,\"verification_bins\":10,\
         \"activity_samples\":6,\"tsv_budget\":2}}"
    )
}

/// Minimal sca-submission body (noise-free, single key byte, tiny budget).
fn sca_body(seed: u64) -> String {
    format!(
        "{{\"type\":\"sca\",\"benchmark\":\"n100\",\"seed\":{seed},\"key_seed\":7,\
         \"traces\":16,\"noise\":0,\"key_bytes\":1,\"attack_grid_bins\":8,\
         \"dwell_ms\":2,\"stages\":4,\"moves\":8,\"grid_bins\":10,\
         \"verification_bins\":10}}"
    )
}

/// Number of distinct flow seeds that cycle through `SubmitFlow` ops.
const FLOW_SEED_SPAN: u64 = 3;
/// Job-id window status polls draw from (ids are allocated from 1 upward).
const POLL_ID_SPAN: u64 = 8;

/// Generates the schedule for `(seed, mix, count, mean_interval_ns)`.
///
/// Arrival offsets accumulate an integer jitter of `mean/2 + U[0, mean]`
/// nanoseconds per request — mean `mean_interval_ns`, bounded burstiness, and
/// bit-stable across platforms (no floating point touches the schedule).
pub fn generate(
    seed: u64,
    mix: &Mix,
    count: usize,
    mean_interval_ns: u64,
) -> Vec<ScheduledRequest> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let total_weight = mix.total_weight().max(1);
    let mut offset_ns = 0u64;
    let mut flow_submissions = 0u64;
    let mut out = Vec::with_capacity(count);
    for index in 0..count {
        let jitter = if mean_interval_ns == 0 {
            0
        } else {
            mean_interval_ns / 2 + rng.next_u64() % (mean_interval_ns + 1)
        };
        offset_ns = offset_ns.saturating_add(jitter);
        let kind = mix.pick(rng.next_u64() % total_weight);
        let (method, path, body) = match kind {
            OpKind::SubmitFlow => {
                let body = flow_body(1 + flow_submissions % FLOW_SEED_SPAN);
                flow_submissions += 1;
                ("POST", "/v1/jobs".to_string(), body)
            }
            OpKind::SubmitSca => ("POST", "/v1/jobs".to_string(), sca_body(1)),
            OpKind::SubmitRepeat => ("POST", "/v1/jobs".to_string(), flow_body(1)),
            OpKind::PollStatus => {
                let id = 1 + rng.next_u64() % POLL_ID_SPAN;
                ("GET", format!("/v1/jobs/{id}"), String::new())
            }
            OpKind::Stats => ("GET", "/v1/stats".to_string(), String::new()),
            OpKind::Metrics => ("GET", "/metrics".to_string(), String::new()),
            OpKind::Watch => ("GET", "/v1/events".to_string(), String::new()),
        };
        out.push(ScheduledRequest {
            index,
            offset_ns,
            method,
            path,
            body,
            endpoint: kind.endpoint(),
            kind,
        });
    }
    out
}

/// Renders a schedule in a stable tab-separated text form:
/// `index<TAB>offset_ns<TAB>method<TAB>path<TAB>endpoint<TAB>body`, one line
/// per request, trailing newline. Byte-for-byte equality of two dumps means
/// the schedules are identical.
pub fn schedule_dump(schedule: &[ScheduledRequest]) -> String {
    let mut out = String::new();
    for request in schedule {
        out.push_str(&format!(
            "{}\t{}\t{}\t{}\t{}\t{}\n",
            request.index,
            request.offset_ns,
            request.method,
            request.path,
            request.endpoint,
            request.body
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_means_identical_schedule() {
        let mix = Mix::preset("mixed").unwrap();
        let a = generate(42, &mix, 200, 1_000_000);
        let b = generate(42, &mix, 200, 1_000_000);
        assert_eq!(a, b);
        assert_eq!(schedule_dump(&a), schedule_dump(&b));
    }

    #[test]
    fn different_seeds_diverge() {
        let mix = Mix::preset("mixed").unwrap();
        let a = generate(1, &mix, 100, 1_000_000);
        let b = generate(2, &mix, 100, 1_000_000);
        assert_ne!(schedule_dump(&a), schedule_dump(&b));
    }

    #[test]
    fn offsets_are_monotonic_and_near_mean() {
        let mean = 1_000_000u64;
        let mix = Mix::preset("reads").unwrap();
        let schedule = generate(7, &mix, 1_000, mean);
        let mut prev = 0;
        for request in &schedule {
            assert!(request.offset_ns >= prev, "offsets never go backwards");
            let step = request.offset_ns - prev;
            assert!((mean / 2..=mean / 2 + mean).contains(&step));
            prev = request.offset_ns;
        }
        // Mean arrival spacing lands near the requested interval (±25%).
        let avg = prev / schedule.len() as u64;
        assert!(
            (mean * 3 / 4..=mean * 5 / 4).contains(&avg),
            "avg step {avg}"
        );
    }

    #[test]
    fn zero_interval_packs_all_requests_at_time_zero() {
        let mix = Mix::preset("reads").unwrap();
        let schedule = generate(7, &mix, 50, 0);
        assert!(schedule.iter().all(|r| r.offset_ns == 0));
    }

    #[test]
    fn repeat_bodies_always_match_the_first_flow_seed() {
        let mix = Mix::preset("submits").unwrap();
        let schedule = generate(9, &mix, 400, 0);
        let repeat = schedule
            .iter()
            .find(|r| r.kind == OpKind::SubmitRepeat)
            .expect("submits mix draws repeats");
        assert_eq!(repeat.body, flow_body(1));
        let first_flow = schedule
            .iter()
            .find(|r| r.kind == OpKind::SubmitFlow)
            .expect("submits mix draws flows");
        assert_eq!(first_flow.body, flow_body(1), "seed cycle starts at 1");
    }
}

//! End-to-end smoke: a seeded run against a real in-process serve instance
//! must complete with zero server-side failures and produce a bench entry
//! that `obs bench-diff` can parse and diff.

use std::process::Command;
use std::sync::Arc;
use std::time::Duration;
use tsc3d_loadgen::{generate, report, run, Mix, Mode, RunConfig};
use tsc3d_serve::{Server, ServerConfig};

fn test_server() -> Server {
    Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        http_threads: 4,
        queue_cap: 64,
        cache_cap: 256,
        ..ServerConfig::default()
    })
    .expect("server boots")
}

#[test]
fn seeded_run_has_no_server_errors_and_benches_parse() {
    let server = test_server();
    let mix = Mix::preset("mixed").unwrap();
    let plan = Arc::new(generate(42, &mix, 150, 0));
    let config = RunConfig {
        addr: server.local_addr(),
        mode: Mode::Closed,
        workers: 3,
        timeout: Duration::from_secs(10),
        deadline: Duration::from_secs(120),
    };
    let result = run::execute(&config, Arc::clone(&plan));
    server.shutdown();

    assert_eq!(result.issued, plan.len(), "the whole schedule was issued");
    assert_eq!(result.server_errors, 0, "no 5xx under the smoke workload");
    assert_eq!(result.io_errors, 0, "every request produced a status line");

    // Every endpoint kind in the mix actually got exercised and measured.
    for endpoint in [
        "/v1/jobs:flow",
        "/v1/jobs:repeat",
        "/v1/jobs/{id}",
        "/v1/stats",
        "/metrics",
        "/v1/events",
    ] {
        let record = result
            .endpoints
            .get(endpoint)
            .unwrap_or_else(|| panic!("endpoint {endpoint} missing"));
        assert!(record.total() > 0, "{endpoint} saw no requests");
        assert!(
            record.latency.quantile(0.5) > 0.0,
            "{endpoint} recorded no latency"
        );
    }

    // The bench entry round-trips through the obs parser with the expected
    // identity and metric columns.
    let entry = report::render_entry("smoke", None, mix.name, Mode::Closed, &result);
    let doc = report::fresh_doc(entry);
    let file = tsc3d_obs::bench::parse_bench(&doc.render()).expect("bench JSON parses");
    assert_eq!(file.schema, report::SCHEMA);
    let (section, rows) = &file.entries[0].sections[0];
    assert_eq!(section, "http");
    assert!(rows.len() >= 5, "one row per exercised endpoint: {rows:?}");
    for row in rows {
        assert!(row.key.contains("mode=closed") && row.key.contains("mix=mixed"));
        let errors = row.rates.iter().find(|(n, _, _)| n == "errors").unwrap();
        assert_eq!(errors.1, 0.0, "{}: clean run", row.key);
    }
}

#[test]
fn open_loop_latency_includes_schedule_slip() {
    // One worker, two requests scheduled at the same instant: the second is
    // issued after the first completes, but its latency clock starts at its
    // intended send time — so it must measure at least the first request's
    // service time on top of its own (no coordinated omission).
    let server = test_server();
    let mix = Mix::preset("reads").unwrap();
    let plan = Arc::new(generate(11, &mix, 40, 0));
    let config = RunConfig {
        addr: server.local_addr(),
        mode: Mode::Open,
        workers: 1,
        timeout: Duration::from_secs(10),
        deadline: Duration::from_secs(120),
    };
    let result = run::execute(&config, Arc::clone(&plan));
    server.shutdown();
    assert_eq!(result.issued, plan.len());
    assert_eq!(result.server_errors + result.io_errors, 0);
    // Across 40 same-instant arrivals drained serially, the recorded maximum
    // must dominate (well exceed) any single closed-loop response: it carries
    // the queueing delay of everything scheduled before it.
    let max_ns = result
        .endpoints
        .values()
        .map(|r| r.latency.max_ns())
        .max()
        .unwrap();
    let min_ns = result
        .endpoints
        .values()
        .filter(|r| r.total() > 0)
        .map(|r| r.latency.min_ns())
        .min()
        .unwrap();
    assert!(
        max_ns > min_ns.saturating_mul(3),
        "open-loop max ({max_ns}ns) should reflect accumulated slip over the \
         fastest response ({min_ns}ns)"
    );
}

#[test]
fn cli_self_serve_writes_a_parseable_bench_file() {
    let dir = std::env::temp_dir().join(format!("tsc3d-loadgen-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let bench = dir.join("BENCH_serve.json");
    let output = Command::new(env!("CARGO_BIN_EXE_loadgen"))
        .args([
            "--self-serve",
            "--mix",
            "reads",
            "--requests",
            "80",
            "--seed",
            "5",
            "--workers",
            "2",
            "--label",
            "smoke-cli",
            "--fail-on-5xx",
            "--json",
        ])
        .arg(&bench)
        .output()
        .expect("loadgen binary runs");
    assert!(
        output.status.success(),
        "loadgen failed:\n{}\n{}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr)
    );
    let text = std::fs::read_to_string(&bench).expect("bench file written");
    let file = tsc3d_obs::bench::parse_bench(&text).expect("bench file parses");
    assert_eq!(file.schema, "tsc3d-bench-serve/v1");
    assert_eq!(file.entries[0].label, "smoke-cli");
    assert!(!file.entries[0].sections.is_empty());
    let _ = std::fs::remove_dir_all(&dir);
}

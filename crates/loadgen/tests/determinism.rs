//! Schedule determinism: the generator's core reproducibility contract.
//!
//! The committed golden dump (`golden_schedule.tsv`) pins the exact byte-level
//! schedule for `(seed 7, mix mixed, 64 requests, 1ms mean interval)`. Any
//! change to the RNG draw order, the jitter arithmetic, the mix weights, or
//! the request bodies breaks these tests — which is the point: such a change
//! invalidates every BENCH_serve.json comparison across it and must be a
//! conscious decision (re-bless the golden file and start a new trajectory).

use std::process::Command;
use tsc3d_loadgen::{generate, schedule_dump, Mix};

const GOLDEN: &str = include_str!("golden_schedule.tsv");

fn golden_params() -> (u64, Mix, usize, u64) {
    (
        7,
        Mix::preset("mixed").expect("mixed preset"),
        64,
        1_000_000,
    )
}

#[test]
fn schedule_matches_the_committed_golden_dump() {
    let (seed, mix, count, interval) = golden_params();
    let dump = schedule_dump(&generate(seed, &mix, count, interval));
    assert_eq!(
        dump, GOLDEN,
        "seeded schedule diverged from tests/golden_schedule.tsv — if this \
         is intentional, re-bless the golden file (and expect the bench \
         trajectory to restart)"
    );
}

#[test]
fn repeated_generation_is_byte_identical() {
    let (seed, mix, count, interval) = golden_params();
    let first = schedule_dump(&generate(seed, &mix, count, interval));
    for _ in 0..3 {
        assert_eq!(first, schedule_dump(&generate(seed, &mix, count, interval)));
    }
}

/// Runs the CLI in plan-only mode and returns the dumped schedule bytes.
fn cli_dump(workers: u32, out: &std::path::Path) -> String {
    let status = Command::new(env!("CARGO_BIN_EXE_loadgen"))
        .args([
            "--seed",
            "7",
            "--mix",
            "mixed",
            "--requests",
            "64",
            "--mean-interval-us",
            "1000",
            "--workers",
            &workers.to_string(),
            "--schedule-out",
        ])
        .arg(out)
        .status()
        .expect("loadgen binary runs");
    assert!(status.success(), "plan-only dump exits 0");
    std::fs::read_to_string(out).expect("dump written")
}

#[test]
fn cli_dump_is_identical_across_worker_counts_and_matches_golden() {
    let dir = std::env::temp_dir().join(format!("tsc3d-loadgen-det-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let one = cli_dump(1, &dir.join("w1.tsv"));
    let three = cli_dump(3, &dir.join("w3.tsv"));
    let eight = cli_dump(8, &dir.join("w8.tsv"));
    assert_eq!(one, three, "worker count must not perturb the schedule");
    assert_eq!(one, eight, "worker count must not perturb the schedule");
    assert_eq!(one, GOLDEN, "CLI dump equals the library golden dump");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn golden_dump_is_well_formed() {
    assert_eq!(GOLDEN.lines().count(), 64, "one line per request");
    for (i, line) in GOLDEN.lines().enumerate() {
        let fields: Vec<&str> = line.split('\t').collect();
        assert_eq!(
            fields.len(),
            6,
            "index, offset, method, path, endpoint, body"
        );
        assert_eq!(fields[0].parse::<usize>().unwrap(), i);
        fields[1].parse::<u64>().expect("numeric offset");
    }
}

//! Block-level timing graph: critical path and per-module slack.

use crate::{ElmoreModel, ModuleDelayModel, NetTopology};
use serde::{Deserialize, Serialize};
use tsc3d_netlist::{BlockId, Design, NetId};

/// Summary of the critical (longest) path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PathSummary {
    /// Total path delay in ns.
    pub delay: f64,
    /// Blocks along the path, in topological order.
    pub blocks: Vec<BlockId>,
}

/// Result of a timing analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimingReport {
    arrival: Vec<f64>,
    required: Vec<f64>,
    critical: PathSummary,
}

impl TimingReport {
    /// Critical (longest-path) delay in ns.
    pub fn critical_delay(&self) -> f64 {
        self.critical.delay
    }

    /// The critical path itself.
    pub fn critical_path(&self) -> &PathSummary {
        &self.critical
    }

    /// Arrival time (longest path delay up to and including the block) in ns.
    pub fn arrival(&self, block: BlockId) -> f64 {
        self.arrival[block.index()]
    }

    /// Required time of the block for the design to meet the critical delay, in ns.
    pub fn required(&self, block: BlockId) -> f64 {
        self.required[block.index()]
    }

    /// Timing slack of the block in ns (non-negative; zero on the critical path).
    pub fn slack(&self, block: BlockId) -> f64 {
        (self.required[block.index()] - self.arrival[block.index()]).max(0.0)
    }

    /// Slack of every block, indexable by block id.
    pub fn slacks(&self) -> Vec<f64> {
        (0..self.arrival.len())
            .map(|i| self.slack(BlockId(i)))
            .collect()
    }
}

/// Reusable buffers for [`TimingGraph::analyze_with`], the allocation-free analysis used
/// inside the floorplanner's hot loop.
///
/// One scratch serves any number of analyses; the arrival/required buffers grow on demand
/// and are reused across calls. [`TimingScratch::slacks_into`] extracts the per-block
/// slacks of the most recent analysis without allocating.
#[derive(Debug, Clone, Default)]
pub struct TimingScratch {
    arrival: Vec<f64>,
    required: Vec<f64>,
}

impl TimingScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Arrival time of every block from the most recent analysis, in ns.
    pub fn arrival(&self) -> &[f64] {
        &self.arrival
    }

    /// Writes the per-block slacks of the most recent analysis into `out` (cleared first).
    ///
    /// Computes the same `(required - arrival).max(0)` values as
    /// [`TimingReport::slacks`].
    pub fn slacks_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.extend(
            self.required
                .iter()
                .zip(&self.arrival)
                .map(|(r, a)| (r - a).max(0.0)),
        );
    }
}

/// A directed acyclic timing graph derived from the block-level netlist.
///
/// Block-level benchmarks carry undirected nets with no signal directions, so — as is usual
/// for floorplanning-stage timing estimation — a deterministic direction is imposed: within
/// each net, the block with the smallest id drives the remaining pins. The resulting DAG is
/// fixed per design; only the *weights* (net delays from the current placement, module
/// delays scaled by the assigned voltage) change between floorplanning iterations, which
/// keeps re-analysis cheap inside the optimization loop.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimingGraph {
    blocks: usize,
    /// Directed edges `(driver, sink, net)`.
    edges: Vec<(BlockId, BlockId, NetId)>,
    /// Outgoing adjacency per block (edge indices).
    out_edges: Vec<Vec<usize>>,
    /// Topological order of block ids (increasing id is already topological for our edge
    /// direction rule, stored explicitly for clarity).
    topo: Vec<BlockId>,
}

impl TimingGraph {
    /// Builds the timing DAG for a design.
    pub fn new(design: &Design) -> Self {
        let blocks = design.blocks().len();
        let mut edges = Vec::new();
        let mut out_edges = vec![Vec::new(); blocks];
        for (net_id, net) in design.iter_nets() {
            let pins: Vec<BlockId> = net.blocks().collect();
            if pins.len() < 2 {
                continue;
            }
            let driver = *pins.iter().min().expect("non-empty");
            for &sink in &pins {
                if sink != driver {
                    out_edges[driver.index()].push(edges.len());
                    edges.push((driver, sink, net_id));
                }
            }
        }
        let topo = (0..blocks).map(BlockId).collect();
        Self {
            blocks,
            edges,
            out_edges,
            topo,
        }
    }

    /// Number of directed edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Nominal intrinsic delay of every module in the design (ns), before voltage scaling.
    pub fn nominal_module_delays(design: &Design, model: &ModuleDelayModel) -> Vec<f64> {
        design
            .blocks()
            .iter()
            .map(|b| model.module_delay(b.area()))
            .collect()
    }

    /// Net delays for the given per-net topologies (ns).
    pub fn net_delays(model: &ElmoreModel, topologies: &[NetTopology]) -> Vec<f64> {
        topologies.iter().map(|t| model.net_delay(t)).collect()
    }

    /// Runs a full longest-path analysis.
    ///
    /// `module_delays[b]` is the (voltage-scaled) intrinsic delay of block `b` in ns;
    /// `net_delays[n]` the delay of net `n` in ns.
    ///
    /// # Panics
    ///
    /// Panics if the delay vectors do not match the design's block/net counts.
    pub fn analyze(&self, module_delays: &[f64], net_delays: &[f64]) -> TimingReport {
        assert_eq!(
            module_delays.len(),
            self.blocks,
            "one delay per block required"
        );
        let mut arrival = vec![0.0_f64; self.blocks];
        let mut pred: Vec<Option<usize>> = vec![None; self.blocks];

        // Forward pass in topological (= id) order: arrival includes the block's own delay.
        for &block in &self.topo {
            let b = block.index();
            arrival[b] += module_delays[b];
            for &edge_idx in &self.out_edges[b] {
                let (_, sink, net) = self.edges[edge_idx];
                assert!(
                    net.index() < net_delays.len(),
                    "one delay per net required (missing net {net})"
                );
                let candidate = arrival[b] + net_delays[net.index()];
                if candidate > arrival[sink.index()] {
                    arrival[sink.index()] = candidate;
                    pred[sink.index()] = Some(edge_idx);
                }
            }
        }

        let (critical_end, &critical_delay) = arrival
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .expect("design has at least one block");

        // Backward pass for required times.
        let mut required = vec![critical_delay; self.blocks];
        for &block in self.topo.iter().rev() {
            let b = block.index();
            for &edge_idx in &self.out_edges[b] {
                let (_, sink, net) = self.edges[edge_idx];
                let candidate =
                    required[sink.index()] - module_delays[sink.index()] - net_delays[net.index()];
                if candidate < required[b] {
                    required[b] = candidate;
                }
            }
        }
        // Required time of a block is measured at its output (after its own delay), same
        // reference as arrival, so clamp to at least its own arrival contribution origin.
        // (arrival uses "output of block" convention throughout.)

        // Reconstruct the critical path.
        let mut path = vec![BlockId(critical_end)];
        let mut cursor = critical_end;
        while let Some(edge_idx) = pred[cursor] {
            let (driver, _, _) = self.edges[edge_idx];
            path.push(driver);
            cursor = driver.index();
        }
        path.reverse();

        TimingReport {
            arrival,
            required,
            critical: PathSummary {
                delay: critical_delay,
                blocks: path,
            },
        }
    }

    /// Runs the longest-path analysis into reusable buffers and returns the critical
    /// delay in ns.
    ///
    /// Performs exactly the arithmetic of [`TimingGraph::analyze`] (same traversal order,
    /// same comparisons) without allocating and without reconstructing the critical path,
    /// so the returned delay — and the slacks recoverable via
    /// [`TimingScratch::slacks_into`] — are bit-identical to the allocating analysis.
    ///
    /// # Panics
    ///
    /// Panics if the delay vectors do not match the design's block/net counts.
    pub fn analyze_with(
        &self,
        module_delays: &[f64],
        net_delays: &[f64],
        scratch: &mut TimingScratch,
    ) -> f64 {
        let critical_delay = self.analyze_forward(module_delays, net_delays, scratch);

        // Backward pass for required times.
        scratch.required.clear();
        scratch.required.resize(self.blocks, critical_delay);
        let required = &mut scratch.required;
        for &block in self.topo.iter().rev() {
            let b = block.index();
            for &edge_idx in &self.out_edges[b] {
                let (_, sink, net) = self.edges[edge_idx];
                let candidate =
                    required[sink.index()] - module_delays[sink.index()] - net_delays[net.index()];
                if candidate < required[b] {
                    required[b] = candidate;
                }
            }
        }

        critical_delay
    }

    /// The forward (arrival) half of [`TimingGraph::analyze_with`] alone, returning the
    /// critical delay.
    ///
    /// For callers that only need the critical delay (the voltage-scaled re-analysis of
    /// the evaluation loop), skipping the backward pass halves the work; the arrival
    /// arithmetic — and thus the returned delay — is identical. The scratch's required
    /// times are *not* updated; call [`TimingGraph::analyze_with`] when slacks are needed.
    ///
    /// # Panics
    ///
    /// Panics if the delay vectors do not match the design's block/net counts.
    pub fn analyze_forward(
        &self,
        module_delays: &[f64],
        net_delays: &[f64],
        scratch: &mut TimingScratch,
    ) -> f64 {
        assert_eq!(
            module_delays.len(),
            self.blocks,
            "one delay per block required"
        );
        scratch.arrival.clear();
        scratch.arrival.resize(self.blocks, 0.0);
        let arrival = &mut scratch.arrival;

        // Forward pass in topological (= id) order: arrival includes the block's own delay.
        for &block in &self.topo {
            let b = block.index();
            arrival[b] += module_delays[b];
            for &edge_idx in &self.out_edges[b] {
                let (_, sink, net) = self.edges[edge_idx];
                assert!(
                    net.index() < net_delays.len(),
                    "one delay per net required (missing net {net})"
                );
                let candidate = arrival[b] + net_delays[net.index()];
                if candidate > arrival[sink.index()] {
                    arrival[sink.index()] = candidate;
                }
            }
        }

        *arrival
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .expect("design has at least one block")
            .1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsc3d_geometry::Outline;
    use tsc3d_netlist::{Block, BlockShape, Net, PinRef};

    /// A chain a -> b -> c plus a side branch a -> d.
    fn chain_design() -> Design {
        let blocks = vec![
            Block::new("a", BlockShape::soft(10_000.0), 0.1),
            Block::new("b", BlockShape::soft(40_000.0), 0.2),
            Block::new("c", BlockShape::soft(10_000.0), 0.1),
            Block::new("d", BlockShape::soft(2_500.0), 0.05),
        ];
        let nets = vec![
            Net::new(
                "ab",
                vec![PinRef::Block(BlockId(0)), PinRef::Block(BlockId(1))],
            ),
            Net::new(
                "bc",
                vec![PinRef::Block(BlockId(1)), PinRef::Block(BlockId(2))],
            ),
            Net::new(
                "ad",
                vec![PinRef::Block(BlockId(0)), PinRef::Block(BlockId(3))],
            ),
        ];
        Design::new(
            "chain",
            blocks,
            nets,
            vec![],
            Outline::new(1_000.0, 1_000.0),
        )
        .unwrap()
    }

    fn uniform_delays(design: &Design, module: f64, net: f64) -> (Vec<f64>, Vec<f64>) {
        (
            vec![module; design.blocks().len()],
            vec![net; design.nets().len()],
        )
    }

    #[test]
    fn graph_structure() {
        let d = chain_design();
        let g = TimingGraph::new(&d);
        // Each 2-pin net contributes one edge.
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn critical_path_follows_longest_chain() {
        let d = chain_design();
        let g = TimingGraph::new(&d);
        let (m, n) = uniform_delays(&d, 1.0, 0.5);
        let report = g.analyze(&m, &n);
        // a(1) -0.5-> b(1) -0.5-> c(1) = 4.0
        assert!((report.critical_delay() - 4.0).abs() < 1e-9);
        assert_eq!(
            report.critical_path().blocks,
            vec![BlockId(0), BlockId(1), BlockId(2)]
        );
    }

    #[test]
    fn slack_is_zero_on_critical_path_and_positive_off_it() {
        let d = chain_design();
        let g = TimingGraph::new(&d);
        let (m, n) = uniform_delays(&d, 1.0, 0.5);
        let report = g.analyze(&m, &n);
        assert!(report.slack(BlockId(0)) < 1e-9);
        assert!(report.slack(BlockId(1)) < 1e-9);
        assert!(report.slack(BlockId(2)) < 1e-9);
        // The short branch a -> d has slack: critical 4.0 vs a(1)+0.5+d(1) = 2.5.
        assert!((report.slack(BlockId(3)) - 1.5).abs() < 1e-9);
        assert_eq!(report.slacks().len(), 4);
    }

    #[test]
    fn larger_module_delays_increase_critical_delay() {
        let d = chain_design();
        let g = TimingGraph::new(&d);
        let model = ModuleDelayModel::default_90nm();
        let nominal = TimingGraph::nominal_module_delays(&d, &model);
        assert_eq!(nominal.len(), 4);
        // Block b has 4x the area of a → 2x the linear size → larger intrinsic delay.
        assert!(nominal[1] > nominal[0]);

        let net_delays = vec![0.1; d.nets().len()];
        let base = g.analyze(&nominal, &net_delays).critical_delay();
        let slowed: Vec<f64> = nominal.iter().map(|x| x * 1.56).collect();
        let slow = g.analyze(&slowed, &net_delays).critical_delay();
        assert!(slow > base);
    }

    #[test]
    fn net_delay_helper_matches_model() {
        let model = ElmoreModel::default_90nm();
        let topos = vec![
            NetTopology::new(100.0, 0, 1),
            NetTopology::new(5_000.0, 1, 2),
        ];
        let delays = TimingGraph::net_delays(&model, &topos);
        assert_eq!(delays.len(), 2);
        assert!(delays[1] > delays[0]);
    }

    #[test]
    fn arrival_times_are_monotone_along_edges() {
        let d = chain_design();
        let g = TimingGraph::new(&d);
        let (m, n) = uniform_delays(&d, 0.7, 0.3);
        let r = g.analyze(&m, &n);
        assert!(r.arrival(BlockId(1)) > r.arrival(BlockId(0)));
        assert!(r.arrival(BlockId(2)) > r.arrival(BlockId(1)));
        assert!(r.required(BlockId(0)) <= r.required(BlockId(2)));
    }

    #[test]
    fn analyze_with_matches_analyze_bit_for_bit() {
        let d = chain_design();
        let g = TimingGraph::new(&d);
        let mut scratch = TimingScratch::new();
        let mut slacks = Vec::new();
        for (m, n) in [(1.0, 0.5), (0.7, 0.3), (2.5, 0.0)] {
            let (md, nd) = uniform_delays(&d, m, n);
            let report = g.analyze(&md, &nd);
            let critical = g.analyze_with(&md, &nd, &mut scratch);
            assert_eq!(critical, report.critical_delay());
            scratch.slacks_into(&mut slacks);
            assert_eq!(slacks, report.slacks());
            assert_eq!(scratch.arrival().len(), d.blocks().len());
        }
    }

    #[test]
    #[should_panic(expected = "one delay per block")]
    fn wrong_module_delay_count_panics() {
        let d = chain_design();
        let g = TimingGraph::new(&d);
        let _ = g.analyze(&[1.0], &[0.1, 0.1, 0.1]);
    }
}

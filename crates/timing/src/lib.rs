//! Timing analysis for block-level 3D-IC floorplanning.
//!
//! The paper's voltage-assignment technique is *timing-driven*: "the prospects for voltage
//! assignment depend primarily on timing slacks — the more slack a module has, the lower the
//! voltage we may apply". This crate provides the timing substrate:
//!
//! * [`ElmoreModel`] — Elmore RC delays for block-to-block nets, accounting for wire length
//!   (half-perimeter estimate) and for TSVs when the net spans dies,
//! * [`ModuleDelayModel`] — a simple area/complexity-based intrinsic delay per module, after
//!   the model the paper adopts from its reference \[27\],
//! * [`VoltageLevel`] and [`VoltageScaling`] — the three 90 nm operating points used in the
//!   paper (0.8 V, 1.0 V, 1.2 V) with their power and delay scaling factors,
//! * [`TimingGraph`] — a DAG over modules built from the netlist, supporting critical-path
//!   (longest path) analysis and per-module slack extraction.
//!
//! # Example
//!
//! ```
//! use tsc3d_timing::{VoltageLevel, VoltageScaling};
//!
//! let scaling = VoltageScaling::paper_90nm();
//! assert_eq!(scaling.levels().len(), 3);
//! assert!(scaling.power_factor(VoltageLevel::V0_8) < 1.0);
//! assert!(scaling.delay_factor(VoltageLevel::V0_8) > 1.0);
//! ```

#![warn(missing_docs)]

mod delay;
mod graph;
mod voltage;

pub use delay::{ElmoreModel, ModuleDelayModel, NetTopology};
pub use graph::{PathSummary, TimingGraph, TimingReport, TimingScratch};
pub use voltage::{VoltageLevel, VoltageScaling};

//! Voltage levels and their power/delay scaling (90 nm node, Section 7 of the paper).

use serde::{Deserialize, Serialize};
use std::fmt;

/// The three supply voltages considered for voltage volumes in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum VoltageLevel {
    /// 0.8 V: 0.817× power, 1.56× delay.
    V0_8,
    /// 1.0 V: nominal power and delay.
    V1_0,
    /// 1.2 V: 1.496× power, 0.83× delay.
    V1_2,
}

impl VoltageLevel {
    /// All levels from lowest to highest voltage.
    pub const ALL: [VoltageLevel; 3] = [VoltageLevel::V0_8, VoltageLevel::V1_0, VoltageLevel::V1_2];

    /// The supply voltage in volts.
    pub fn volts(self) -> f64 {
        match self {
            VoltageLevel::V0_8 => 0.8,
            VoltageLevel::V1_0 => 1.0,
            VoltageLevel::V1_2 => 1.2,
        }
    }
}

impl fmt::Display for VoltageLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}V", self.volts())
    }
}

/// Power and delay scaling factors per voltage level.
///
/// The default values are the 90 nm simulation results quoted in Section 7 of the paper.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VoltageScaling {
    levels: Vec<(VoltageLevel, f64, f64)>,
}

impl VoltageScaling {
    /// The scaling table used in the paper: 0.8 V (0.817× power, 1.56× delay), 1.0 V
    /// (1×, 1×), 1.2 V (1.496× power, 0.83× delay).
    pub fn paper_90nm() -> Self {
        Self {
            levels: vec![
                (VoltageLevel::V0_8, 0.817, 1.56),
                (VoltageLevel::V1_0, 1.0, 1.0),
                (VoltageLevel::V1_2, 1.496, 0.83),
            ],
        }
    }

    /// The raw scaling table: `(level, power factor, delay factor)` rows, lowest voltage
    /// first. Lets hot loops index levels by table position without allocating.
    pub fn entries(&self) -> &[(VoltageLevel, f64, f64)] {
        &self.levels
    }

    /// The available levels, lowest voltage first.
    pub fn levels(&self) -> Vec<VoltageLevel> {
        self.levels.iter().map(|(l, _, _)| *l).collect()
    }

    /// Power scaling factor of a level relative to 1.0 V.
    pub fn power_factor(&self, level: VoltageLevel) -> f64 {
        self.levels
            .iter()
            .find(|(l, _, _)| *l == level)
            .map(|(_, p, _)| *p)
            .expect("level present in table")
    }

    /// Delay scaling factor of a level relative to 1.0 V.
    pub fn delay_factor(&self, level: VoltageLevel) -> f64 {
        self.levels
            .iter()
            .find(|(l, _, _)| *l == level)
            .map(|(_, _, d)| *d)
            .expect("level present in table")
    }

    /// The lowest level whose delay factor keeps `nominal_delay * factor <= budget`, i.e.
    /// the most power-efficient voltage a module with the given slack can afford.
    ///
    /// Returns `None` when even the highest voltage misses the budget.
    pub fn lowest_feasible(&self, nominal_delay: f64, budget: f64) -> Option<VoltageLevel> {
        self.levels
            .iter()
            .find(|(_, _, d)| nominal_delay * d <= budget)
            .map(|(l, _, _)| *l)
    }

    /// All levels whose delay factor keeps the module within the budget.
    pub fn feasible_set(&self, nominal_delay: f64, budget: f64) -> Vec<VoltageLevel> {
        self.levels
            .iter()
            .filter(|(_, _, d)| nominal_delay * d <= budget)
            .map(|(l, _, _)| *l)
            .collect()
    }
}

impl Default for VoltageScaling {
    fn default() -> Self {
        Self::paper_90nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_table_values() {
        let s = VoltageScaling::paper_90nm();
        assert_eq!(s.power_factor(VoltageLevel::V0_8), 0.817);
        assert_eq!(s.delay_factor(VoltageLevel::V0_8), 1.56);
        assert_eq!(s.power_factor(VoltageLevel::V1_0), 1.0);
        assert_eq!(s.delay_factor(VoltageLevel::V1_2), 0.83);
        assert_eq!(s.levels(), VoltageLevel::ALL.to_vec());
    }

    #[test]
    fn voltage_values_and_display() {
        assert_eq!(VoltageLevel::V0_8.volts(), 0.8);
        assert_eq!(format!("{}", VoltageLevel::V1_2), "1.2V");
        assert!(VoltageLevel::V0_8 < VoltageLevel::V1_2);
    }

    #[test]
    fn lowest_feasible_prefers_low_voltage() {
        let s = VoltageScaling::paper_90nm();
        // Plenty of slack → run at 0.8 V.
        assert_eq!(s.lowest_feasible(1.0, 2.0), Some(VoltageLevel::V0_8));
        // Tight budget → must boost to 1.2 V.
        assert_eq!(s.lowest_feasible(1.0, 0.9), Some(VoltageLevel::V1_2));
        // Impossible budget.
        assert_eq!(s.lowest_feasible(1.0, 0.5), None);
    }

    #[test]
    fn feasible_set_is_monotone_in_budget() {
        let s = VoltageScaling::paper_90nm();
        let tight = s.feasible_set(1.0, 1.0);
        let loose = s.feasible_set(1.0, 2.0);
        assert!(tight.len() <= loose.len());
        assert_eq!(loose.len(), 3);
        assert_eq!(tight, vec![VoltageLevel::V1_0, VoltageLevel::V1_2]);
    }
}

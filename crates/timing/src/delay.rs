//! Elmore net delays and module intrinsic delays.

use serde::{Deserialize, Serialize};

/// Placement-derived description of one net, as needed for delay estimation.
///
/// The floorplanner produces one `NetTopology` per net from the current layout: the
/// half-perimeter wirelength of the net's bounding box and the number of dies the net has to
/// cross (each crossing requires one signal TSV).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetTopology {
    /// Half-perimeter wirelength in µm.
    pub hpwl: f64,
    /// Number of inter-die crossings (signal TSVs on this net).
    pub tsv_crossings: usize,
    /// Number of sink pins driven by the net.
    pub fanout: usize,
}

impl NetTopology {
    /// Creates a net topology description.
    pub fn new(hpwl: f64, tsv_crossings: usize, fanout: usize) -> Self {
        Self {
            hpwl,
            tsv_crossings,
            fanout: fanout.max(1),
        }
    }
}

/// Elmore RC delay model for wires and TSVs.
///
/// The model follows the classical first-order Elmore formulation the paper uses for net
/// delays ("we estimate the net delays via the well-known Elmore delays, here with
/// consideration of wires and TSVs"): a driver resistance charging the distributed wire
/// RC, the lumped TSV RC of every die crossing, and the input capacitance of each sink.
/// All resistances are in ohms, capacitances in farads, lengths in µm; delays are returned
/// in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ElmoreModel {
    /// Wire resistance per µm (Ω/µm).
    pub wire_resistance: f64,
    /// Wire capacitance per µm (F/µm).
    pub wire_capacitance: f64,
    /// Lumped resistance of one signal TSV (Ω).
    pub tsv_resistance: f64,
    /// Lumped capacitance of one signal TSV (F).
    pub tsv_capacitance: f64,
    /// Output resistance of the driving module (Ω).
    pub driver_resistance: f64,
    /// Input capacitance of one sink pin (F).
    pub sink_capacitance: f64,
}

impl ElmoreModel {
    /// Default 90 nm global-wire parameters (matching the technology assumptions of the
    /// paper's references): 0.1 Ω/µm, 0.2 fF/µm wires; 50 mΩ, 50 fF TSVs; 1 kΩ drivers;
    /// 5 fF sinks.
    pub fn default_90nm() -> Self {
        Self {
            wire_resistance: 0.1,
            wire_capacitance: 0.2e-15,
            tsv_resistance: 0.05,
            tsv_capacitance: 50e-15,
            driver_resistance: 1_000.0,
            sink_capacitance: 5e-15,
        }
    }

    /// Elmore delay of a net in nanoseconds.
    ///
    /// ```
    /// use tsc3d_timing::{ElmoreModel, NetTopology};
    /// let model = ElmoreModel::default_90nm();
    /// let short = model.net_delay(&NetTopology::new(100.0, 0, 1));
    /// let long = model.net_delay(&NetTopology::new(10_000.0, 0, 1));
    /// assert!(long > short);
    /// ```
    pub fn net_delay(&self, net: &NetTopology) -> f64 {
        let wire_r = self.wire_resistance * net.hpwl;
        let wire_c = self.wire_capacitance * net.hpwl;
        let tsv_r = self.tsv_resistance * net.tsv_crossings as f64;
        let tsv_c = self.tsv_capacitance * net.tsv_crossings as f64;
        let sinks_c = self.sink_capacitance * net.fanout as f64;

        // Driver sees the full downstream capacitance; the distributed wire sees half its
        // own capacitance plus everything downstream of it; the TSVs are lumped at the far
        // end of the wire.
        let delay_s = self.driver_resistance * (wire_c + tsv_c + sinks_c)
            + wire_r * (wire_c / 2.0 + tsv_c + sinks_c)
            + tsv_r * (tsv_c / 2.0 + sinks_c);
        delay_s * 1e9
    }
}

impl Default for ElmoreModel {
    fn default() -> Self {
        Self::default_90nm()
    }
}

/// Intrinsic module delay model.
///
/// Block-level benchmarks expose no internal netlists, so — following the model adopted by
/// the paper from its reference \[27\] — a module's intrinsic delay is estimated from its
/// footprint: larger modules host longer internal paths, with a square-root dependence on
/// area (logic depth grows with the linear dimension, not the area).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModuleDelayModel {
    /// Fixed overhead per module in ns (register + local routing).
    pub base_delay: f64,
    /// Delay per micrometre of linear module dimension, in ns/µm.
    pub delay_per_um: f64,
}

impl ModuleDelayModel {
    /// Default 90 nm parameters: 0.05 ns base, 0.2 ps/µm of linear dimension.
    pub fn default_90nm() -> Self {
        Self {
            base_delay: 0.05,
            delay_per_um: 0.0002,
        }
    }

    /// Intrinsic delay (ns) of a module with the given area in µm².
    ///
    /// ```
    /// use tsc3d_timing::ModuleDelayModel;
    /// let m = ModuleDelayModel::default_90nm();
    /// assert!(m.module_delay(1_000_000.0) > m.module_delay(10_000.0));
    /// ```
    pub fn module_delay(&self, area: f64) -> f64 {
        self.base_delay + self.delay_per_um * area.max(0.0).sqrt()
    }
}

impl Default for ModuleDelayModel {
    fn default() -> Self {
        Self::default_90nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_grows_with_wirelength() {
        let m = ElmoreModel::default_90nm();
        let d1 = m.net_delay(&NetTopology::new(100.0, 0, 1));
        let d2 = m.net_delay(&NetTopology::new(1_000.0, 0, 1));
        let d3 = m.net_delay(&NetTopology::new(10_000.0, 0, 1));
        assert!(d1 < d2 && d2 < d3);
        // Long global wires have a quadratic component.
        assert!((d3 - d1) > 10.0 * (d2 - d1) * 0.5);
    }

    #[test]
    fn tsv_crossing_adds_delay() {
        let m = ElmoreModel::default_90nm();
        let planar = m.net_delay(&NetTopology::new(1_000.0, 0, 1));
        let crossing = m.net_delay(&NetTopology::new(1_000.0, 1, 1));
        assert!(crossing > planar);
        // But a TSV costs far less than a few millimetres of extra wire.
        let detour = m.net_delay(&NetTopology::new(4_000.0, 0, 1));
        assert!(crossing < detour);
    }

    #[test]
    fn fanout_adds_delay_and_is_at_least_one() {
        let m = ElmoreModel::default_90nm();
        let single = m.net_delay(&NetTopology::new(500.0, 0, 1));
        let fan8 = m.net_delay(&NetTopology::new(500.0, 0, 8));
        assert!(fan8 > single);
        // Constructor clamps fanout to >= 1.
        assert_eq!(NetTopology::new(500.0, 0, 0).fanout, 1);
    }

    #[test]
    fn delays_are_positive_nanoseconds_in_plausible_range() {
        let m = ElmoreModel::default_90nm();
        let d = m.net_delay(&NetTopology::new(5_000.0, 2, 3));
        assert!(d > 0.0 && d < 100.0, "delay {d} ns out of plausible range");
    }

    #[test]
    fn module_delay_scales_with_sqrt_area() {
        let m = ModuleDelayModel::default_90nm();
        let small = m.module_delay(10_000.0); // 100 µm on a side
        let large = m.module_delay(1_000_000.0); // 1000 µm on a side
        assert!(large > small);
        let ratio = (large - m.base_delay) / (small - m.base_delay);
        assert!((ratio - 10.0).abs() < 1e-9);
        assert_eq!(m.module_delay(0.0), m.base_delay);
    }
}

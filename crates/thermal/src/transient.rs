//! Transient thermal models: the lumped per-die RC model and the spatial transient
//! engine over the full solver grid.
//!
//! Figure 1 of the paper illustrates the central practical limitation of the thermal side
//! channel: switching activity and power change on nanosecond scales, while on-die
//! temperatures respond on millisecond-to-second scales. [`LumpedTransient`] provides a
//! small lumped RC model per die that reproduces this time-scale gap and is used by the
//! `figure1` experiment binary.
//!
//! [`TransientSolver`] generalises the same explicit RC forward-stepping from one node per
//! die to the full `layers x cols x rows` conductance network of the steady-state solver —
//! the engine behind trace-level side-channel simulation (`tsc3d-sca`), where an attacker
//! samples *time series* of spatially resolved temperatures instead of one steady-state
//! map. The lumped model is retained as a bit-tested special case: stepping a
//! [`TransientSolver::lumped`] network (one uncoupled node per die on a 1×1 grid)
//! reproduces [`LumpedTransient::simulate`] bit for bit.

use crate::solver::Network;
use crate::tsv::TsvField;
use crate::{MaterialProperties, SolveError, StackLayerKind, ThermalConfig};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use tsc3d_exec::Pool;
use tsc3d_geometry::{Grid, GridMap, GridPos};

/// A lumped (single-node-per-die) transient thermal model.
///
/// Each die is represented by one thermal capacitance (its silicon volume) and one
/// resistance towards ambient derived from the configured boundary conductances. The model
/// intentionally ignores lateral detail — it only has to reproduce the *time constants*.
///
/// ```
/// use tsc3d_geometry::{Outline, Stack};
/// use tsc3d_thermal::{ThermalConfig, transient::LumpedTransient};
///
/// let config = ThermalConfig::default_for(Stack::two_die(Outline::new(4000.0, 4000.0)));
/// let model = LumpedTransient::new(&config);
/// assert!(model.time_constant(0) > 1e-4); // much slower than logic (ns)
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LumpedTransient {
    /// Thermal capacitance per die in J/K.
    capacitance: Vec<f64>,
    /// Thermal resistance towards ambient per die in K/W.
    resistance: Vec<f64>,
    /// Ambient temperature in K.
    ambient: f64,
}

/// One sample of a transient simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransientSample {
    /// Simulation time in seconds.
    pub time: f64,
    /// Instantaneous power in watts.
    pub power: f64,
    /// Die temperature in kelvin.
    pub temperature: f64,
}

/// The per-die lumped RC parameters derived from a thermal configuration: capacitance in
/// J/K and resistance towards ambient in K/W (bottom die first).
///
/// Shared by [`LumpedTransient::new`] and [`TransientSolver::lumped`], so the lumped model
/// and its grid-engine special case are built from the identical numbers.
fn lumped_rc(config: &ThermalConfig) -> (Vec<f64>, Vec<f64>) {
    let area_m2 = config.stack.outline().area() * 1e-12;
    let dies = config.stack.dies();
    let mut capacitance = Vec::with_capacity(dies);
    let mut resistance = Vec::with_capacity(dies);
    for die in 0..dies {
        // Capacitance: silicon volume of the die's active layer.
        let thickness = config
            .active_layer_of(die)
            .map(|l| config.layers[l].thickness)
            .unwrap_or(100e-6);
        let c = MaterialProperties::SILICON.volumetric_heat_capacity * area_m2 * thickness;
        // Resistance: top die goes through the heatsink path, lower dies additionally
        // through one bond layer per crossed interface.
        let sink_r = 1.0 / (config.heatsink_conductance * area_m2);
        let crossings = (dies - 1 - die) as f64;
        let bond_r = crossings
            * (20e-6 / (MaterialProperties::BOND.conductivity * area_m2)
                + 100e-6 / (MaterialProperties::SILICON.conductivity * area_m2));
        capacitance.push(c);
        resistance.push(sink_r + bond_r);
    }
    (capacitance, resistance)
}

impl LumpedTransient {
    /// Builds the lumped model from a thermal configuration.
    pub fn new(config: &ThermalConfig) -> Self {
        let (capacitance, resistance) = lumped_rc(config);
        Self {
            capacitance,
            resistance,
            ambient: config.ambient,
        }
    }

    /// Thermal RC time constant of die `die` in seconds.
    pub fn time_constant(&self, die: usize) -> f64 {
        self.resistance[die] * self.capacitance[die]
    }

    /// Steady-state temperature of die `die` for a constant power `p` in watts.
    pub fn steady_state(&self, die: usize, p: f64) -> f64 {
        self.ambient + p * self.resistance[die]
    }

    /// Simulates die `die` under a time-varying power waveform using explicit Euler
    /// integration.
    ///
    /// `power(t)` returns the instantaneous power in watts at time `t` (seconds). The
    /// simulation runs from 0 to `duration` with the given `dt`.
    ///
    /// The per-step arithmetic is the single-node instance of the
    /// [`TransientSolver`] step kernel (conductance form, `t += (flow / c) * dt`), which
    /// is what makes the grid engine's lumped special case bit-identical.
    ///
    /// # Panics
    ///
    /// Panics if `dt` or `duration` is non-positive.
    pub fn simulate<F>(&self, die: usize, power: F, duration: f64, dt: f64) -> Vec<TransientSample>
    where
        F: Fn(f64) -> f64,
    {
        assert!(
            dt > 0.0 && duration > 0.0,
            "dt and duration must be positive"
        );
        let c = self.capacitance[die];
        let g = 1.0 / self.resistance[die];
        let steps = (duration / dt).ceil() as usize;
        let mut t_die = self.ambient;
        let mut out = Vec::with_capacity(steps + 1);
        for step in 0..=steps {
            let time = step as f64 * dt;
            let p = power(time);
            out.push(TransientSample {
                time,
                power: p,
                temperature: t_die,
            });
            // dT/dt = (P - (T - T_amb) * G) / C
            let flow = p - (t_die - self.ambient) * g;
            t_die += (flow / c) * dt;
        }
        out
    }

    /// Produces the data behind Figure 1: a power waveform toggling every `period` seconds
    /// between `p_low` and `p_high`, together with the (much slower) thermal response.
    pub fn time_scale_demo(
        &self,
        die: usize,
        p_low: f64,
        p_high: f64,
        period: f64,
        duration: f64,
        samples: usize,
    ) -> Vec<TransientSample> {
        let dt = duration / samples as f64;
        self.simulate(
            die,
            |t| {
                if ((t / period) as u64) % 2 == 0 {
                    p_high
                } else {
                    p_low
                }
            },
            duration,
            dt,
        )
    }

    /// Ambient temperature of the model in kelvin.
    pub fn ambient(&self) -> f64 {
        self.ambient
    }
}

/// Safety margin applied to the explicit-Euler stability bound when
/// [`TransientSolver::advance`] picks its internal substep.
const STABILITY_MARGIN: f64 = 0.5;

/// The mutable side of a transient simulation: the temperature field, the per-node power
/// injection, and the scratch buffer of the Jacobi step. Reusable across traces
/// ([`TransientSolver::reset`]) so a long campaign allocates its buffers once.
#[derive(Debug, Clone)]
pub struct TransientState {
    /// Node temperatures in kelvin (`layers * bins`, layer-major). Held in an [`Arc`] so
    /// the parallel step can snapshot it without copying; the buffer is uniquely owned
    /// again after every step.
    temps: Arc<Vec<f64>>,
    /// Scratch for the out-of-place Jacobi step.
    next: Vec<f64>,
    /// Injected power per node in watts.
    power: Vec<f64>,
}

impl TransientState {
    /// Raw node temperatures (layer-major, `layers * bins` values).
    pub fn temperatures(&self) -> &[f64] {
        &self.temps
    }
}

/// Spatial transient engine: explicit RC forward-stepping of the steady-state solver's
/// conductance network.
///
/// The solver owns the immutable network (conductances, per-node heat capacities); each
/// simulation owns a [`TransientState`]. One step is a Jacobi update — every node reads
/// only the *previous* field — so [`TransientSolver::step_on`] distributes the node
/// updates over a [`Pool`] with **bit-identical** results for any worker count.
///
/// Explicit Euler is conditionally stable: steps longer than
/// [`TransientSolver::max_stable_dt`] diverge. [`TransientSolver::advance`] substeps
/// automatically; the raw [`TransientSolver::step`] leaves `dt` to the caller (the
/// lumped-equivalence path).
///
/// ```
/// use tsc3d_geometry::{Grid, GridMap, Outline, Stack};
/// use tsc3d_thermal::{transient::TransientSolver, ThermalConfig, TsvField};
///
/// let stack = Stack::two_die(Outline::new(2000.0, 2000.0));
/// let grid = Grid::square(stack.outline().rect(), 8);
/// let config = ThermalConfig::default_for(stack);
/// let solver = TransientSolver::new(&config, grid, &[TsvField::empty(grid)]).unwrap();
/// let mut state = solver.state();
/// solver
///     .set_power(&mut state, &[GridMap::constant(grid, 2.0 / 64.0), GridMap::zeros(grid)])
///     .unwrap();
/// solver.advance(&mut state, 0.01);
/// assert!(solver.die_temperature(&state, 0).max() > config.ambient);
/// ```
#[derive(Debug)]
pub struct TransientSolver {
    grid: Grid,
    pub(crate) network: Network,
    /// Heat capacity per node in J/K.
    pub(crate) cap: Vec<f64>,
    /// Layer index of each die's active layer (node extraction for sensors).
    pub(crate) active_layers: Vec<usize>,
    dies: usize,
    /// Largest stable explicit-Euler step in seconds (min over nodes of C / ΣG).
    max_stable_dt: f64,
}

impl TransientSolver {
    /// Builds the transient engine for a stack configuration on an analysis grid.
    ///
    /// `tsv_per_interface[i]` is the TSV field of the bond layer between die `i` and die
    /// `i+1` — exactly the input of [`crate::SteadyStateSolver::solve`]; TSV density
    /// raises both the vertical conductance and the (copper-mixed) heat capacity of the
    /// bond nodes.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::TsvFieldCount`] / [`SolveError::GridMismatch`] when the TSV
    /// fields do not match the configuration or the grid.
    pub fn new(
        config: &ThermalConfig,
        grid: Grid,
        tsv_per_interface: &[TsvField],
    ) -> Result<Self, SolveError> {
        let interfaces = config.interfaces();
        if tsv_per_interface.len() != interfaces {
            return Err(SolveError::TsvFieldCount {
                got: tsv_per_interface.len(),
                expected: interfaces,
            });
        }
        if tsv_per_interface.iter().any(|f| f.density().grid() != grid) {
            return Err(SolveError::GridMismatch);
        }
        let dies = config.stack.dies();
        let zero_power = vec![GridMap::zeros(grid); dies];
        let network = Network::build(config, grid, &zero_power, tsv_per_interface);

        // Per-node heat capacity: material volume heat capacity times cell volume; bond
        // layers mix the bond material with copper by the local TSV density, mirroring
        // the conductivity mixing of the steady-state network.
        let bins = grid.bins();
        let dx = grid.bin_width() * 1e-6;
        let dy = grid.bin_height() * 1e-6;
        let mut cap = vec![0.0; config.layer_count() * bins];
        for (l, layer) in config.layers.iter().enumerate() {
            let volume = dx * dy * layer.thickness;
            for b in 0..bins {
                let cv = match layer.kind {
                    StackLayerKind::Bond { interface } => {
                        let d = tsv_per_interface[interface].density().values()[b];
                        layer.material.volumetric_heat_capacity * (1.0 - d)
                            + MaterialProperties::COPPER.volumetric_heat_capacity * d
                    }
                    _ => layer.material.volumetric_heat_capacity,
                };
                cap[l * bins + b] = cv * volume;
            }
        }

        let active_layers = (0..dies)
            .map(|die| {
                config
                    .active_layer_of(die)
                    .expect("config must contain an active layer per die")
            })
            .collect();
        let max_stable_dt = stable_dt(&network, &cap);
        Ok(Self {
            grid,
            network,
            cap,
            active_layers,
            dies,
            max_stable_dt,
        })
    }

    /// The lumped special case: one uncoupled node per die on a 1×1 grid, with the exact
    /// RC values of [`LumpedTransient::new`]. Stepping this solver with
    /// [`TransientSolver::step`] is bit-identical to [`LumpedTransient::simulate`].
    pub fn lumped(config: &ThermalConfig) -> Self {
        let (cap, resistance) = lumped_rc(config);
        let dies = config.stack.dies();
        let grid = Grid::square(config.stack.outline().rect(), 1);
        let gb: Vec<f64> = resistance.iter().map(|&r| 1.0 / r).collect();
        let network = Network {
            layers: dies,
            cols: 1,
            rows: 1,
            gx: vec![0.0; dies],
            gy: vec![0.0; dies],
            gz: vec![0.0; dies],
            gb,
            power: vec![0.0; dies],
            ambient: config.ambient,
        };
        let max_stable_dt = stable_dt(&network, &cap);
        Self {
            grid,
            network,
            cap,
            active_layers: (0..dies).collect(),
            dies,
            max_stable_dt,
        }
    }

    /// The analysis grid.
    pub fn grid(&self) -> Grid {
        self.grid
    }

    /// Number of dies.
    pub fn dies(&self) -> usize {
        self.dies
    }

    /// Number of RC nodes (`layers * bins`).
    pub fn node_count(&self) -> usize {
        self.cap.len()
    }

    /// Ambient temperature in kelvin.
    pub fn ambient(&self) -> f64 {
        self.network.ambient
    }

    /// The largest explicit-Euler step that keeps the integration stable, in seconds
    /// (`min` over nodes of `C / ΣG`). [`TransientSolver::advance`] applies an additional
    /// safety margin on top.
    pub fn max_stable_dt(&self) -> f64 {
        self.max_stable_dt
    }

    /// A fresh state: every node at ambient, zero injected power.
    pub fn state(&self) -> TransientState {
        let n = self.node_count();
        TransientState {
            temps: Arc::new(vec![self.network.ambient; n]),
            next: vec![self.network.ambient; n],
            power: vec![0.0; n],
        }
    }

    /// Resets a state to ambient temperatures (power is left as set) — the buffer-reusing
    /// way to start the next trace.
    pub fn reset(&self, state: &mut TransientState) {
        Arc::make_mut(&mut state.temps).fill(self.network.ambient);
    }

    /// Sets the injected power from per-die maps (watts per bin, bottom die first), the
    /// same convention as [`crate::SteadyStateSolver::solve`].
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::PowerMapCount`] / [`SolveError::GridMismatch`] on mismatched
    /// inputs.
    pub fn set_power(
        &self,
        state: &mut TransientState,
        power_per_die: &[GridMap],
    ) -> Result<(), SolveError> {
        if power_per_die.len() != self.dies {
            return Err(SolveError::PowerMapCount {
                got: power_per_die.len(),
                expected: self.dies,
            });
        }
        if power_per_die.iter().any(|m| m.grid() != self.grid) {
            return Err(SolveError::GridMismatch);
        }
        let bins = self.grid.bins();
        state.power.fill(0.0);
        for (die, map) in power_per_die.iter().enumerate() {
            let l = self.active_layers[die];
            state.power[l * bins..(l + 1) * bins].copy_from_slice(map.values());
        }
        Ok(())
    }

    /// Sets a spatially uniform total power per die (watts), a convenience for demos and
    /// step-response tests.
    ///
    /// # Panics
    ///
    /// Panics if `watts_per_die.len()` differs from the die count.
    pub fn set_uniform_power(&self, state: &mut TransientState, watts_per_die: &[f64]) {
        assert_eq!(
            watts_per_die.len(),
            self.dies,
            "one power value per die required"
        );
        let bins = self.grid.bins();
        state.power.fill(0.0);
        for (die, &watts) in watts_per_die.iter().enumerate() {
            let l = self.active_layers[die];
            let per_bin = watts / bins as f64;
            state.power[l * bins..(l + 1) * bins].fill(per_bin);
        }
    }

    /// The new temperature of one node under the current field: the Jacobi explicit-Euler
    /// update. Reads only `t` (the previous field), so any execution order produces the
    /// same value — the bit-identical-parallelism property.
    #[inline]
    fn stepped_value(&self, t: &[f64], power: &[f64], idx: usize, dt: f64) -> f64 {
        let n = &self.network;
        let bins = n.cols * n.rows;
        let b = idx % bins;
        let l = idx / bins;
        let col = b % n.cols;
        let row = b / n.cols;
        let here = t[idx];
        let mut flow = power[idx] - n.gb[idx] * (here - n.ambient);
        if col + 1 < n.cols {
            flow += n.gx[idx] * (t[idx + 1] - here);
        }
        if col > 0 {
            flow += n.gx[idx - 1] * (t[idx - 1] - here);
        }
        if row + 1 < n.rows {
            flow += n.gy[idx] * (t[idx + n.cols] - here);
        }
        if row > 0 {
            flow += n.gy[idx - n.cols] * (t[idx - n.cols] - here);
        }
        if l + 1 < n.layers {
            flow += n.gz[idx] * (t[idx + bins] - here);
        }
        if l > 0 {
            flow += n.gz[idx - bins] * (t[idx - bins] - here);
        }
        here + (flow / self.cap[idx]) * dt
    }

    /// Advances the field by one explicit-Euler step of `dt` seconds.
    ///
    /// The caller owns stability: `dt` above [`TransientSolver::max_stable_dt`] diverges.
    /// Use [`TransientSolver::advance`] for automatic substepping.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not positive.
    pub fn step(&self, state: &mut TransientState, dt: f64) {
        assert!(dt > 0.0, "dt must be positive");
        let temps = Arc::clone(&state.temps);
        for idx in 0..state.next.len() {
            state.next[idx] = self.stepped_value(&temps, &state.power, idx, dt);
        }
        drop(temps);
        std::mem::swap(Arc::make_mut(&mut state.temps), &mut state.next);
    }

    /// [`TransientSolver::step`] with the node updates fanned out over a worker pool.
    ///
    /// The Jacobi update reads only the previous field, so the partition affects
    /// scheduling, never values: temperatures are **bit-identical** to the serial step for
    /// every worker count. A pool with zero threads degrades to the serial path.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not positive.
    pub fn step_on(self: &Arc<Self>, pool: &Pool, state: &mut TransientState, dt: f64) {
        assert!(dt > 0.0, "dt must be positive");
        if pool.threads() == 0 {
            return self.step(state, dt);
        }
        let n = self.node_count();
        let chunks = tsc3d_exec::chunk_ranges(n, pool.threads() * 3);
        let snapshot = Arc::clone(&state.temps);
        let power = std::mem::take(&mut state.power);
        let power = Arc::new(power);
        let results = {
            let solver = Arc::clone(self);
            let snapshot = Arc::clone(&snapshot);
            let power = Arc::clone(&power);
            pool.run_batch(chunks.clone(), move |_, (lo, hi)| {
                let field: &[f64] = &snapshot;
                (lo..hi)
                    .map(|idx| solver.stepped_value(field, &power, idx, dt))
                    .collect::<Vec<f64>>()
            })
        };
        // The last batch worker may still be tearing its closure down (run_batch returns
        // once every *result* landed), so unique ownership is the common case, not a
        // guarantee — fall back to a copy instead of racing the teardown.
        state.power = Arc::try_unwrap(power).unwrap_or_else(|shared| (*shared).clone());
        for (&(lo, _), values) in chunks.iter().zip(&results) {
            state.next[lo..lo + values.len()].copy_from_slice(values);
        }
        drop(snapshot);
        std::mem::swap(Arc::make_mut(&mut state.temps), &mut state.next);
    }

    /// Number of substeps [`TransientSolver::advance`] uses for a duration.
    pub fn steps_for(&self, duration: f64) -> usize {
        ((duration / (self.max_stable_dt * STABILITY_MARGIN)).ceil() as usize).max(1)
    }

    /// Advances the field by `duration` seconds, substepping within the stability bound.
    /// Returns the number of steps taken.
    ///
    /// # Panics
    ///
    /// Panics if `duration` is not positive.
    pub fn advance(&self, state: &mut TransientState, duration: f64) -> usize {
        assert!(duration > 0.0, "duration must be positive");
        let steps = self.steps_for(duration);
        let dt = duration / steps as f64;
        for _ in 0..steps {
            self.step(state, dt);
        }
        steps
    }

    /// [`TransientSolver::advance`] with every substep distributed over the pool
    /// (bit-identical to the serial path, see [`TransientSolver::step_on`]).
    ///
    /// # Panics
    ///
    /// Panics if `duration` is not positive.
    pub fn advance_on(
        self: &Arc<Self>,
        pool: &Pool,
        state: &mut TransientState,
        duration: f64,
    ) -> usize {
        assert!(duration > 0.0, "duration must be positive");
        let steps = self.steps_for(duration);
        let dt = duration / steps as f64;
        for _ in 0..steps {
            self.step_on(pool, state, dt);
        }
        steps
    }

    /// The temperature map of die `die`'s active layer, in kelvin.
    pub fn die_temperature(&self, state: &TransientState, die: usize) -> GridMap {
        let bins = self.grid.bins();
        let l = self.active_layers[die];
        GridMap::from_values(self.grid, state.temps[l * bins..(l + 1) * bins].to_vec())
    }

    /// The temperature of one bin of die `die`'s active layer — the cheap point read a
    /// sensor model samples every period without materialising a map.
    pub fn temperature_at(&self, state: &TransientState, die: usize, pos: GridPos) -> f64 {
        let bins = self.grid.bins();
        let l = self.active_layers[die];
        state.temps[l * bins + self.grid.flat_index(pos)]
    }
}

/// The explicit-Euler stability bound of a network: `min` over nodes of `C / ΣG`.
fn stable_dt(network: &Network, cap: &[f64]) -> f64 {
    let bins = network.cols * network.rows;
    let mut worst = f64::INFINITY;
    for (idx, &c) in cap.iter().enumerate() {
        let b = idx % bins;
        let l = idx / bins;
        let col = b % network.cols;
        let row = b / network.cols;
        let mut g_sum = network.gb[idx];
        if col + 1 < network.cols {
            g_sum += network.gx[idx];
        }
        if col > 0 {
            g_sum += network.gx[idx - 1];
        }
        if row + 1 < network.rows {
            g_sum += network.gy[idx];
        }
        if row > 0 {
            g_sum += network.gy[idx - network.cols];
        }
        if l + 1 < network.layers {
            g_sum += network.gz[idx];
        }
        if l > 0 {
            g_sum += network.gz[idx - bins];
        }
        if g_sum > 0.0 {
            worst = worst.min(c / g_sum);
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SteadyStateSolver;
    use tsc3d_geometry::{Outline, Rect, Stack};

    fn model() -> LumpedTransient {
        let config = ThermalConfig::default_for(Stack::two_die(Outline::new(4000.0, 4000.0)));
        LumpedTransient::new(&config)
    }

    #[test]
    fn time_constants_are_slow_compared_to_logic() {
        let m = model();
        // Thermal time constants must be orders of magnitude above nanoseconds.
        assert!(m.time_constant(0) > 1e-4);
        assert!(m.time_constant(1) > 1e-5);
        // The bottom die (further from the sink) is slower than the top die.
        assert!(m.time_constant(0) > m.time_constant(1));
    }

    #[test]
    fn step_response_approaches_steady_state() {
        let m = model();
        let tau = m.time_constant(1);
        let samples = m.simulate(1, |_| 2.0, 8.0 * tau, tau / 50.0);
        let last = samples.last().unwrap();
        let target = m.steady_state(1, 2.0);
        assert!((last.temperature - target).abs() / (target - m.ambient()) < 0.02);
        // Early in the transient the temperature must still be far from steady state.
        let early = &samples[samples.len() / 100];
        assert!((early.temperature - m.ambient()) < 0.7 * (target - m.ambient()));
    }

    #[test]
    fn fast_power_toggling_is_filtered_out() {
        let m = model();
        let tau = m.time_constant(1);
        // Toggle power 1000x faster than the time constant: the temperature ripple must be
        // tiny compared to the mean rise — this is the low-bandwidth property of the TSC.
        let samples = m.time_scale_demo(1, 0.0, 2.0, tau / 1000.0, 4.0 * tau, 40_000);
        // Look at the tail of the simulation only, where the slow exponential settling no
        // longer masks the (tiny) toggling-induced ripple.
        let tail = &samples[samples.len() - samples.len() / 40..];
        let temps: Vec<f64> = tail.iter().map(|s| s.temperature).collect();
        let mean = temps.iter().sum::<f64>() / temps.len() as f64;
        let ripple = temps.iter().cloned().fold(f64::MIN, f64::max)
            - temps.iter().cloned().fold(f64::MAX, f64::min);
        let rise = mean - m.ambient();
        assert!(rise > 0.0);
        assert!(ripple / rise < 0.05, "ripple {ripple} vs rise {rise}");
        // The mean settles near the average-power steady state.
        let target = m.steady_state(1, 1.0);
        assert!((mean - target).abs() / (target - m.ambient()) < 0.1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn invalid_dt_panics() {
        let m = model();
        let _ = m.simulate(0, |_| 1.0, 1.0, 0.0);
    }

    fn spatial_setup(bins: usize) -> (ThermalConfig, Grid) {
        let stack = Stack::two_die(Outline::new(2000.0, 2000.0));
        let grid = Grid::square(stack.outline().rect(), bins);
        (ThermalConfig::default_for(stack), grid)
    }

    #[test]
    fn lumped_model_is_a_bit_tested_special_case_of_the_grid_engine() {
        // Step the lumped-topology grid engine and LumpedTransient::simulate through the
        // same toggling waveform: every sample must agree bit for bit.
        let config = ThermalConfig::default_for(Stack::two_die(Outline::new(4000.0, 4000.0)));
        let lumped = LumpedTransient::new(&config);
        let solver = TransientSolver::lumped(&config);
        assert_eq!(solver.dies(), 2);
        assert_eq!(solver.node_count(), 2);
        for die in 0..2 {
            let tau = lumped.time_constant(die);
            let dt = tau / 64.0;
            let duration = 2.0 * tau;
            let power = |t: f64| {
                if ((t / (tau / 8.0)) as u64) % 2 == 0 {
                    2.5
                } else {
                    0.5
                }
            };
            let reference = lumped.simulate(die, power, duration, dt);

            let mut state = solver.state();
            let steps = (duration / dt).ceil() as usize;
            let mut watts = vec![0.0; 2];
            for (step, sample) in reference.iter().enumerate().take(steps + 1) {
                let time = step as f64 * dt;
                assert_eq!(sample.time, time);
                assert_eq!(
                    solver.temperature_at(&state, die, GridPos::new(0, 0)),
                    sample.temperature,
                    "die {die} step {step}"
                );
                watts[die] = power(time);
                solver.set_uniform_power(&mut state, &watts);
                solver.step(&mut state, dt);
            }
        }
    }

    #[test]
    fn grid_transient_settles_to_the_steady_state_solution() {
        // The long-time limit of the transient engine must agree with the steady-state
        // solver on the identical network (same conductances, same boundary paths).
        let (config, grid) = spatial_setup(8);
        let tsvs = vec![TsvField::uniform(grid, 0.05)];
        let mut hotspot = GridMap::zeros(grid);
        hotspot.splat_power(&Rect::new(0.0, 0.0, 700.0, 500.0), 2.0);
        let power = vec![hotspot, GridMap::constant(grid, 1.0 / 64.0)];

        let steady = SteadyStateSolver::new(config.clone())
            .solve(&power, &tsvs)
            .unwrap();

        let solver = TransientSolver::new(&config, grid, &tsvs).unwrap();
        let mut state = solver.state();
        solver.set_power(&mut state, &power).unwrap();
        // Settle: several die-level time constants.
        solver.advance(&mut state, 0.5);
        for die in 0..2 {
            let transient_map = solver.die_temperature(&state, die);
            let steady_map = steady.die_temperature(die);
            for (a, b) in transient_map.values().iter().zip(steady_map.values()) {
                assert!(
                    (a - b).abs() < 0.05,
                    "die {die}: transient {a} vs steady {b}"
                );
            }
        }
    }

    #[test]
    fn transient_heats_where_the_power_is() {
        let (config, grid) = spatial_setup(16);
        let tsvs = vec![TsvField::empty(grid)];
        let solver = TransientSolver::new(&config, grid, &tsvs).unwrap();
        let mut state = solver.state();
        let mut p0 = GridMap::zeros(grid);
        p0.splat_power(&Rect::new(0.0, 0.0, 500.0, 500.0), 3.0);
        solver
            .set_power(&mut state, &[p0, GridMap::zeros(grid)])
            .unwrap();
        solver.advance(&mut state, 0.02);
        let map = solver.die_temperature(&state, 0);
        let hottest = map.argmax();
        assert!(hottest.col < 8 && hottest.row < 8, "hotspot at {hottest}");
        assert!(map.max() > solver.ambient());
        // The opposite corner has barely moved this early in the transient.
        let far = map.get(GridPos::new(15, 15));
        assert!(far - solver.ambient() < 0.2 * (map.max() - solver.ambient()));
    }

    #[test]
    fn pooled_stepping_is_bit_identical_to_serial() {
        let (config, grid) = spatial_setup(12);
        let tsvs = vec![TsvField::uniform(grid, 0.03)];
        let solver = Arc::new(TransientSolver::new(&config, grid, &tsvs).unwrap());
        let mut hotspot = GridMap::zeros(grid);
        hotspot.splat_power(&Rect::new(200.0, 300.0, 600.0, 400.0), 2.5);
        let power = vec![hotspot, GridMap::constant(grid, 0.8 / 144.0)];

        let mut serial = solver.state();
        solver.set_power(&mut serial, &power).unwrap();
        let serial_steps = solver.advance(&mut serial, 0.004);

        for workers in [1usize, 3, 7] {
            let pool = Pool::new(workers);
            let mut state = solver.state();
            solver.set_power(&mut state, &power).unwrap();
            let steps = solver.advance_on(&pool, &mut state, 0.004);
            assert_eq!(steps, serial_steps, "{workers} workers");
            assert_eq!(
                state.temperatures(),
                serial.temperatures(),
                "{workers} workers"
            );
            pool.shutdown();
        }
    }

    #[test]
    fn stability_bound_is_finite_and_respected() {
        let (config, grid) = spatial_setup(8);
        let tsvs = vec![TsvField::empty(grid)];
        let solver = TransientSolver::new(&config, grid, &tsvs).unwrap();
        let dt_max = solver.max_stable_dt();
        assert!(dt_max.is_finite() && dt_max > 0.0);
        // advance picks at least duration/(margin*dt_max) steps.
        assert!(solver.steps_for(1.0) as f64 >= 1.0 / dt_max);
        // A long integration at the automatic substep stays bounded (no blow-up).
        let mut state = solver.state();
        solver.set_uniform_power(&mut state, &[2.0, 2.0]);
        solver.advance(&mut state, 0.05);
        assert!(state.temperatures().iter().all(|t| t.is_finite()));
        assert!(state.temperatures().iter().all(|&t| t < 500.0));
    }

    #[test]
    fn input_validation_is_typed() {
        let (config, grid) = spatial_setup(4);
        let err = TransientSolver::new(&config, grid, &[]).unwrap_err();
        assert!(matches!(
            err,
            SolveError::TsvFieldCount {
                expected: 1,
                got: 0
            }
        ));
        let other = Grid::square(Rect::from_size(2000.0, 2000.0), 5);
        let err = TransientSolver::new(&config, grid, &[TsvField::empty(other)]).unwrap_err();
        assert!(matches!(err, SolveError::GridMismatch));

        let solver = TransientSolver::new(&config, grid, &[TsvField::empty(grid)]).unwrap();
        let mut state = solver.state();
        let err = solver
            .set_power(&mut state, &[GridMap::zeros(grid)])
            .unwrap_err();
        assert!(matches!(
            err,
            SolveError::PowerMapCount {
                expected: 2,
                got: 1
            }
        ));
        let err = solver
            .set_power(&mut state, &[GridMap::zeros(other), GridMap::zeros(other)])
            .unwrap_err();
        assert!(matches!(err, SolveError::GridMismatch));
    }
}

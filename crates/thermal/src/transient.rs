//! Lumped transient thermal model.
//!
//! Figure 1 of the paper illustrates the central practical limitation of the thermal side
//! channel: switching activity and power change on nanosecond scales, while on-die
//! temperatures respond on millisecond-to-second scales. This module provides a small lumped
//! RC model per die that reproduces this time-scale gap and is used by the `figure1`
//! experiment binary.

use crate::{MaterialProperties, ThermalConfig};
use serde::{Deserialize, Serialize};

/// A lumped (single-node-per-die) transient thermal model.
///
/// Each die is represented by one thermal capacitance (its silicon volume) and one
/// resistance towards ambient derived from the configured boundary conductances. The model
/// intentionally ignores lateral detail — it only has to reproduce the *time constants*.
///
/// ```
/// use tsc3d_geometry::{Outline, Stack};
/// use tsc3d_thermal::{ThermalConfig, transient::LumpedTransient};
///
/// let config = ThermalConfig::default_for(Stack::two_die(Outline::new(4000.0, 4000.0)));
/// let model = LumpedTransient::new(&config);
/// assert!(model.time_constant(0) > 1e-4); // much slower than logic (ns)
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LumpedTransient {
    /// Thermal capacitance per die in J/K.
    capacitance: Vec<f64>,
    /// Thermal resistance towards ambient per die in K/W.
    resistance: Vec<f64>,
    /// Ambient temperature in K.
    ambient: f64,
}

/// One sample of a transient simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransientSample {
    /// Simulation time in seconds.
    pub time: f64,
    /// Instantaneous power in watts.
    pub power: f64,
    /// Die temperature in kelvin.
    pub temperature: f64,
}

impl LumpedTransient {
    /// Builds the lumped model from a thermal configuration.
    pub fn new(config: &ThermalConfig) -> Self {
        let area_m2 = config.stack.outline().area() * 1e-12;
        let dies = config.stack.dies();
        let mut capacitance = Vec::with_capacity(dies);
        let mut resistance = Vec::with_capacity(dies);
        for die in 0..dies {
            // Capacitance: silicon volume of the die's active layer.
            let thickness = config
                .active_layer_of(die)
                .map(|l| config.layers[l].thickness)
                .unwrap_or(100e-6);
            let c = MaterialProperties::SILICON.volumetric_heat_capacity * area_m2 * thickness;
            // Resistance: top die goes through the heatsink path, lower dies additionally
            // through one bond layer per crossed interface.
            let sink_r = 1.0 / (config.heatsink_conductance * area_m2);
            let crossings = (dies - 1 - die) as f64;
            let bond_r = crossings
                * (20e-6 / (MaterialProperties::BOND.conductivity * area_m2)
                    + 100e-6 / (MaterialProperties::SILICON.conductivity * area_m2));
            capacitance.push(c);
            resistance.push(sink_r + bond_r);
        }
        Self {
            capacitance,
            resistance,
            ambient: config.ambient,
        }
    }

    /// Thermal RC time constant of die `die` in seconds.
    pub fn time_constant(&self, die: usize) -> f64 {
        self.resistance[die] * self.capacitance[die]
    }

    /// Steady-state temperature of die `die` for a constant power `p` in watts.
    pub fn steady_state(&self, die: usize, p: f64) -> f64 {
        self.ambient + p * self.resistance[die]
    }

    /// Simulates die `die` under a time-varying power waveform using explicit Euler
    /// integration.
    ///
    /// `power(t)` returns the instantaneous power in watts at time `t` (seconds). The
    /// simulation runs from 0 to `duration` with the given `dt`.
    ///
    /// # Panics
    ///
    /// Panics if `dt` or `duration` is non-positive.
    pub fn simulate<F>(&self, die: usize, power: F, duration: f64, dt: f64) -> Vec<TransientSample>
    where
        F: Fn(f64) -> f64,
    {
        assert!(
            dt > 0.0 && duration > 0.0,
            "dt and duration must be positive"
        );
        let c = self.capacitance[die];
        let r = self.resistance[die];
        let steps = (duration / dt).ceil() as usize;
        let mut t_die = self.ambient;
        let mut out = Vec::with_capacity(steps + 1);
        for step in 0..=steps {
            let time = step as f64 * dt;
            let p = power(time);
            out.push(TransientSample {
                time,
                power: p,
                temperature: t_die,
            });
            // dT/dt = (P - (T - T_amb)/R) / C
            let dtemp = (p - (t_die - self.ambient) / r) / c;
            t_die += dtemp * dt;
        }
        out
    }

    /// Produces the data behind Figure 1: a power waveform toggling every `period` seconds
    /// between `p_low` and `p_high`, together with the (much slower) thermal response.
    pub fn time_scale_demo(
        &self,
        die: usize,
        p_low: f64,
        p_high: f64,
        period: f64,
        duration: f64,
        samples: usize,
    ) -> Vec<TransientSample> {
        let dt = duration / samples as f64;
        self.simulate(
            die,
            |t| {
                if ((t / period) as u64) % 2 == 0 {
                    p_high
                } else {
                    p_low
                }
            },
            duration,
            dt,
        )
    }

    /// Ambient temperature of the model in kelvin.
    pub fn ambient(&self) -> f64 {
        self.ambient
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsc3d_geometry::{Outline, Stack};

    fn model() -> LumpedTransient {
        let config = ThermalConfig::default_for(Stack::two_die(Outline::new(4000.0, 4000.0)));
        LumpedTransient::new(&config)
    }

    #[test]
    fn time_constants_are_slow_compared_to_logic() {
        let m = model();
        // Thermal time constants must be orders of magnitude above nanoseconds.
        assert!(m.time_constant(0) > 1e-4);
        assert!(m.time_constant(1) > 1e-5);
        // The bottom die (further from the sink) is slower than the top die.
        assert!(m.time_constant(0) > m.time_constant(1));
    }

    #[test]
    fn step_response_approaches_steady_state() {
        let m = model();
        let tau = m.time_constant(1);
        let samples = m.simulate(1, |_| 2.0, 8.0 * tau, tau / 50.0);
        let last = samples.last().unwrap();
        let target = m.steady_state(1, 2.0);
        assert!((last.temperature - target).abs() / (target - m.ambient()) < 0.02);
        // Early in the transient the temperature must still be far from steady state.
        let early = &samples[samples.len() / 100];
        assert!((early.temperature - m.ambient()) < 0.7 * (target - m.ambient()));
    }

    #[test]
    fn fast_power_toggling_is_filtered_out() {
        let m = model();
        let tau = m.time_constant(1);
        // Toggle power 1000x faster than the time constant: the temperature ripple must be
        // tiny compared to the mean rise — this is the low-bandwidth property of the TSC.
        let samples = m.time_scale_demo(1, 0.0, 2.0, tau / 1000.0, 4.0 * tau, 40_000);
        // Look at the tail of the simulation only, where the slow exponential settling no
        // longer masks the (tiny) toggling-induced ripple.
        let tail = &samples[samples.len() - samples.len() / 40..];
        let temps: Vec<f64> = tail.iter().map(|s| s.temperature).collect();
        let mean = temps.iter().sum::<f64>() / temps.len() as f64;
        let ripple = temps.iter().cloned().fold(f64::MIN, f64::max)
            - temps.iter().cloned().fold(f64::MAX, f64::min);
        let rise = mean - m.ambient();
        assert!(rise > 0.0);
        assert!(ripple / rise < 0.05, "ripple {ripple} vs rise {rise}");
        // The mean settles near the average-power steady state.
        let target = m.steady_state(1, 1.0);
        assert!((mean - target).abs() / (target - m.ambient()) < 0.1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn invalid_dt_panics() {
        let m = model();
        let _ = m.simulate(0, |_| 1.0, 1.0, 0.0);
    }
}

//! Lockstep batched transient stepping: many independent traces through one network.
//!
//! Trace-level side-channel simulation (`tsc3d-sca`) steps the *same* RC network through
//! thousands of short transients that differ only in their injected power. The scalar
//! [`TransientSolver`] pays the per-node overhead — index arithmetic, boundary branches,
//! conductance loads — once per node per step *per trace*. [`BatchTransientSolver`] steps
//! a batch of traces ("lanes") in lockstep over structure-of-arrays fields laid out
//! `[node × lane]`, so every per-node quantity is loaded once per step and the inner loop
//! is a contiguous, vectorizable sweep over the lanes.
//!
//! **Bit-identity.** For each lane the arithmetic is the exact per-node operation
//! sequence of [`TransientSolver::step`] — the boundary-damping term first, then the
//! +x, −x, +y, −y, +z, −z neighbour flows in that order, then `t + (flow / C) · dt` —
//! on the same operands. Lanes never mix, so every lane's temperature series is
//! bit-identical to a scalar simulation of that trace, for any batch size.

use crate::transient::TransientSolver;
use crate::SolveError;
use std::sync::Arc;
use tsc3d_geometry::{GridMap, GridPos};

/// The stepping plan of the whole network in CSR-style structure-of-arrays form:
/// everything [`BatchTransientSolver::step`] needs, resolved once at construction so the
/// hot loop carries no index arithmetic, no boundary branches, and the minimum possible
/// per-node memory traffic (the plan stream is read once per step sweep and competes with
/// the lane fields for bandwidth).
#[derive(Debug, Default)]
struct StepPlan {
    /// Conductance towards ambient (boundary paths) per node in W/K.
    gb: Vec<f64>,
    /// Heat capacity per node in J/K.
    cap: Vec<f64>,
    /// Exclusive prefix offsets into `neighbor`/`g`: node `i`'s neighbours occupy
    /// `starts[i]..starts[i + 1]`.
    starts: Vec<u32>,
    /// Neighbour node indices, per node in the scalar engine's flow-accumulation order:
    /// +x, −x, +y, −y, +z, −z, keeping only the neighbours that exist.
    neighbor: Vec<u32>,
    /// Conductance towards the matching `neighbor` entry in W/K.
    g: Vec<f64>,
}

/// The mutable side of a batched simulation: `lanes` independent temperature fields and
/// power injections interleaved `[node × lane]` (lane-contiguous per node).
#[derive(Debug, Clone)]
pub struct BatchTransientState {
    lanes: usize,
    /// Node temperatures in kelvin, `node_count × lanes`, node-major.
    temps: Vec<f64>,
    /// Scratch for the out-of-place Jacobi step.
    next: Vec<f64>,
    /// Injected power per node per lane in watts, same layout as `temps`.
    power: Vec<f64>,
    /// Per-lane flow accumulator of the node currently being stepped.
    flow: Vec<f64>,
}

impl BatchTransientState {
    /// Number of lanes (traces stepped in lockstep).
    pub fn lanes(&self) -> usize {
        self.lanes
    }
}

/// Lockstep batched variant of [`TransientSolver`]: one shared conductance network and
/// capacity vector, `lanes` independent transients advanced per step.
///
/// The scalar engine stays the bit-tested reference; this engine exists purely for
/// throughput and is equivalence-tested against it lane by lane (see module docs for the
/// bit-identity argument).
///
/// ```
/// use std::sync::Arc;
/// use tsc3d_geometry::{Grid, GridMap, Outline, Stack};
/// use tsc3d_thermal::{BatchTransientSolver, ThermalConfig, TransientSolver, TsvField};
///
/// let stack = Stack::two_die(Outline::new(2000.0, 2000.0));
/// let grid = Grid::square(stack.outline().rect(), 8);
/// let config = ThermalConfig::default_for(stack);
/// let scalar = Arc::new(TransientSolver::new(&config, grid, &[TsvField::empty(grid)]).unwrap());
/// let batched = BatchTransientSolver::new(Arc::clone(&scalar));
/// let mut state = batched.state(4);
/// let maps = [GridMap::constant(grid, 2.0 / 64.0), GridMap::zeros(grid)];
/// for lane in 0..4 {
///     batched.set_power(&mut state, lane, &maps).unwrap();
/// }
/// batched.advance(&mut state, 0.01);
/// ```
#[derive(Debug)]
pub struct BatchTransientSolver {
    inner: Arc<TransientSolver>,
    plan: StepPlan,
}

impl BatchTransientSolver {
    /// Builds the batched engine over an existing scalar solver: the network and the
    /// capacity vector are shared (built once per mitigation state, not per trace), the
    /// per-node neighbour plans are resolved here.
    pub fn new(inner: Arc<TransientSolver>) -> Self {
        let n = &inner.network;
        let bins = n.cols * n.rows;
        let mut plan = StepPlan::default();
        for idx in 0..inner.node_count() {
            let b = idx % bins;
            let l = idx / bins;
            let col = b % n.cols;
            let row = b / n.cols;
            plan.gb.push(n.gb[idx]);
            plan.cap.push(inner.cap[idx]);
            plan.starts.push(plan.neighbor.len() as u32);
            let mut push = |node: usize, g: f64| {
                plan.neighbor.push(node as u32);
                plan.g.push(g);
            };
            // The scalar step's flow-accumulation order: +x, −x, +y, −y, +z, −z.
            if col + 1 < n.cols {
                push(idx + 1, n.gx[idx]);
            }
            if col > 0 {
                push(idx - 1, n.gx[idx - 1]);
            }
            if row + 1 < n.rows {
                push(idx + n.cols, n.gy[idx]);
            }
            if row > 0 {
                push(idx - n.cols, n.gy[idx - n.cols]);
            }
            if l + 1 < n.layers {
                push(idx + bins, n.gz[idx]);
            }
            if l > 0 {
                push(idx - bins, n.gz[idx - bins]);
            }
        }
        plan.starts.push(plan.neighbor.len() as u32);
        Self { inner, plan }
    }

    /// The shared scalar solver (network topology, stability bound, sensor extraction).
    pub fn inner(&self) -> &Arc<TransientSolver> {
        &self.inner
    }

    /// A fresh state of `lanes` lanes: every node of every lane at ambient, zero power.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero.
    pub fn state(&self, lanes: usize) -> BatchTransientState {
        assert!(lanes > 0, "a batch needs at least one lane");
        let n = self.inner.node_count() * lanes;
        BatchTransientState {
            lanes,
            temps: vec![self.inner.ambient(); n],
            next: vec![self.inner.ambient(); n],
            power: vec![0.0; n],
            flow: vec![0.0; lanes],
        }
    }

    /// Resets every lane to ambient temperatures (power is left as set).
    pub fn reset(&self, state: &mut BatchTransientState) {
        state.temps.fill(self.inner.ambient());
    }

    /// Sets lane `lane`'s injected power from per-die maps, the batched counterpart of
    /// [`TransientSolver::set_power`].
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::PowerMapCount`] / [`SolveError::GridMismatch`] on mismatched
    /// inputs.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn set_power(
        &self,
        state: &mut BatchTransientState,
        lane: usize,
        power_per_die: &[GridMap],
    ) -> Result<(), SolveError> {
        assert!(lane < state.lanes, "lane {lane} outside the batch");
        if power_per_die.len() != self.inner.dies() {
            return Err(SolveError::PowerMapCount {
                got: power_per_die.len(),
                expected: self.inner.dies(),
            });
        }
        if power_per_die.iter().any(|m| m.grid() != self.inner.grid()) {
            return Err(SolveError::GridMismatch);
        }
        let lanes = state.lanes;
        let bins = self.inner.grid().bins();
        for node in 0..self.inner.node_count() {
            state.power[node * lanes + lane] = 0.0;
        }
        for (die, map) in power_per_die.iter().enumerate() {
            let l = self.inner.active_layers[die];
            for (b, &w) in map.values().iter().enumerate() {
                state.power[(l * bins + b) * lanes + lane] = w;
            }
        }
        Ok(())
    }

    /// Advances every lane by one explicit-Euler step of `dt` seconds — the lockstep
    /// counterpart of [`TransientSolver::step`], bit-identical per lane.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not positive.
    pub fn step(&self, state: &mut BatchTransientState, dt: f64) {
        assert!(dt > 0.0, "dt must be positive");
        // Monomorphized lane counts keep the inner loops fixed-size (register-resident
        // flow accumulators, no bounds checks, full vectorization); the power-of-two
        // batch sizes the sca layer uses all hit a specialized path. Per-lane arithmetic
        // is identical in every variant, so this dispatch cannot affect bit-identity.
        match state.lanes {
            1 => self.step_lanes::<1>(state, dt),
            2 => self.step_lanes::<2>(state, dt),
            4 => self.step_lanes::<4>(state, dt),
            8 => self.step_lanes::<8>(state, dt),
            16 => self.step_lanes::<16>(state, dt),
            _ => self.step_dyn(state, dt),
        }
    }

    /// The fixed-lane-count step: `L` is a compile-time constant, so `flow` lives in
    /// registers and every lane loop unrolls.
    fn step_lanes<const L: usize>(&self, state: &mut BatchTransientState, dt: f64) {
        let ambient = self.inner.ambient();
        let plan = &self.plan;
        let BatchTransientState {
            temps, next, power, ..
        } = state;
        let temps: &[f64] = temps;
        for idx in 0..plan.gb.len() {
            let base = idx * L;
            let here: &[f64; L] = temps[base..base + L].try_into().expect("lane slice");
            let injected: &[f64; L] = power[base..base + L].try_into().expect("lane slice");
            // Per lane this is exactly the scalar flow accumulation: boundary term
            // first, then the existing neighbours in +x, −x, +y, −y, +z, −z order.
            let gb = plan.gb[idx];
            let mut flow = [0.0f64; L];
            for lane in 0..L {
                flow[lane] = injected[lane] - gb * (here[lane] - ambient);
            }
            let edges = plan.starts[idx] as usize..plan.starts[idx + 1] as usize;
            for (&neighbor, &g) in plan.neighbor[edges.clone()].iter().zip(&plan.g[edges]) {
                let nb = neighbor as usize * L;
                let there: &[f64; L] = temps[nb..nb + L].try_into().expect("lane slice");
                for lane in 0..L {
                    flow[lane] += g * (there[lane] - here[lane]);
                }
            }
            let cap = plan.cap[idx];
            let out: &mut [f64; L] = (&mut next[base..base + L]).try_into().expect("lane slice");
            for lane in 0..L {
                out[lane] = here[lane] + (flow[lane] / cap) * dt;
            }
        }
        std::mem::swap(&mut state.temps, &mut state.next);
    }

    /// The dynamic-lane-count fallback, same arithmetic with a heap flow accumulator.
    fn step_dyn(&self, state: &mut BatchTransientState, dt: f64) {
        let lanes = state.lanes;
        let ambient = self.inner.ambient();
        let plan = &self.plan;
        let BatchTransientState {
            temps,
            next,
            power,
            flow,
            ..
        } = state;
        let temps: &[f64] = temps;
        for idx in 0..plan.gb.len() {
            let base = idx * lanes;
            let here = &temps[base..base + lanes];
            let injected = &power[base..base + lanes];
            let gb = plan.gb[idx];
            for lane in 0..lanes {
                flow[lane] = injected[lane] - gb * (here[lane] - ambient);
            }
            let edges = plan.starts[idx] as usize..plan.starts[idx + 1] as usize;
            for (&neighbor, &g) in plan.neighbor[edges.clone()].iter().zip(&plan.g[edges]) {
                let nb = neighbor as usize * lanes;
                let there = &temps[nb..nb + lanes];
                for lane in 0..lanes {
                    flow[lane] += g * (there[lane] - here[lane]);
                }
            }
            let cap = plan.cap[idx];
            let out = &mut next[base..base + lanes];
            for lane in 0..lanes {
                out[lane] = here[lane] + (flow[lane] / cap) * dt;
            }
        }
        std::mem::swap(&mut state.temps, &mut state.next);
    }

    /// Advances every lane by `duration` seconds, substepping within the scalar engine's
    /// stability bound — same substep count and `dt` as [`TransientSolver::advance`].
    /// Returns the number of steps taken (per lane).
    ///
    /// # Panics
    ///
    /// Panics if `duration` is not positive.
    pub fn advance(&self, state: &mut BatchTransientState, duration: f64) -> usize {
        assert!(duration > 0.0, "duration must be positive");
        let steps = self.inner.steps_for(duration);
        let dt = duration / steps as f64;
        for step in 0..steps {
            self.step(state, dt);
            // Live substep progress within this lockstep window; one relaxed load per
            // substep when events are off (the substep itself is O(nodes × lanes)).
            tsc3d_obs::emit(|| tsc3d_obs::EventKind::Progress {
                phase: "batch_window",
                done: (step + 1) as u64,
                total: steps as u64,
            });
        }
        steps
    }

    /// The temperature of one bin of die `die`'s active layer in lane `lane` — the
    /// batched counterpart of [`TransientSolver::temperature_at`].
    pub fn temperature_at(
        &self,
        state: &BatchTransientState,
        lane: usize,
        die: usize,
        pos: GridPos,
    ) -> f64 {
        assert!(lane < state.lanes, "lane {lane} outside the batch");
        let bins = self.inner.grid().bins();
        let l = self.inner.active_layers[die];
        let node = l * bins + self.inner.grid().flat_index(pos);
        state.temps[node * state.lanes + lane]
    }

    /// Number of substeps [`BatchTransientSolver::advance`] uses for a duration (the
    /// scalar engine's count, delegated so the one stability margin stays authoritative).
    pub fn steps_for(&self, duration: f64) -> usize {
        self.inner.steps_for(duration)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ThermalConfig, TsvField};
    use tsc3d_geometry::{Grid, Outline, Rect, Stack};

    fn setup(bins: usize) -> (Arc<TransientSolver>, Vec<Vec<GridMap>>) {
        let stack = Stack::two_die(Outline::new(2000.0, 2000.0));
        let grid = Grid::square(stack.outline().rect(), bins);
        let config = ThermalConfig::default_for(stack);
        let tsvs = vec![TsvField::uniform(grid, 0.04)];
        let solver = Arc::new(TransientSolver::new(&config, grid, &tsvs).unwrap());
        // A family of distinct per-lane power patterns.
        let patterns = (0..8usize)
            .map(|i| {
                let mut hot = GridMap::zeros(grid);
                let offset = 37.0 * i as f64;
                hot.splat_power(
                    &Rect::new(100.0 + offset, 150.0 + offset, 600.0, 450.0),
                    1.5 + 0.25 * i as f64,
                );
                let uniform = GridMap::constant(grid, (0.4 + 0.1 * i as f64) / grid.bins() as f64);
                vec![hot, uniform]
            })
            .collect();
        (solver, patterns)
    }

    #[test]
    fn lanes_match_the_scalar_engine_bit_for_bit() {
        let (solver, patterns) = setup(9);
        let duration = 0.003;
        // Scalar references, one per pattern.
        let scalar: Vec<_> = patterns
            .iter()
            .map(|maps| {
                let mut state = solver.state();
                solver.set_power(&mut state, maps).unwrap();
                let steps = solver.advance(&mut state, duration);
                (state, steps)
            })
            .collect();

        let batched = BatchTransientSolver::new(Arc::clone(&solver));
        for lanes in [1usize, 3, 8] {
            let mut state = batched.state(lanes);
            assert_eq!(state.lanes(), lanes);
            for (lane, pattern) in patterns.iter().take(lanes).enumerate() {
                batched.set_power(&mut state, lane, pattern).unwrap();
            }
            batched.reset(&mut state);
            let steps = batched.advance(&mut state, duration);
            for (lane, (reference, ref_steps)) in scalar.iter().take(lanes).enumerate() {
                assert_eq!(steps, *ref_steps, "{lanes} lanes");
                for die in 0..solver.dies() {
                    for pos in solver.grid().positions() {
                        assert_eq!(
                            batched.temperature_at(&state, lane, die, pos),
                            solver.temperature_at(reference, die, pos),
                            "{lanes} lanes, lane {lane}, die {die}, {pos}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn reset_and_power_are_per_lane() {
        let (solver, patterns) = setup(6);
        let batched = BatchTransientSolver::new(Arc::clone(&solver));
        let mut state = batched.state(2);
        batched.set_power(&mut state, 0, &patterns[0]).unwrap();
        // Lane 1 keeps zero power: after stepping, it must stay at ambient.
        batched.advance(&mut state, 0.002);
        let pos = solver.grid().positions().next().unwrap();
        assert!(batched.temperature_at(&state, 0, 0, pos) > solver.ambient());
        for die in 0..solver.dies() {
            for pos in solver.grid().positions() {
                assert_eq!(
                    batched.temperature_at(&state, 1, die, pos),
                    solver.ambient(),
                    "unpowered lane must not heat"
                );
            }
        }
        // Reset returns every lane to ambient.
        batched.reset(&mut state);
        assert!(state.temps.iter().all(|&t| t == solver.ambient()));
    }

    #[test]
    fn input_validation_is_typed() {
        let (solver, _) = setup(4);
        let batched = BatchTransientSolver::new(Arc::clone(&solver));
        let mut state = batched.state(2);
        let err = batched
            .set_power(&mut state, 0, &[GridMap::zeros(solver.grid())])
            .unwrap_err();
        assert!(matches!(
            err,
            SolveError::PowerMapCount {
                expected: 2,
                got: 1
            }
        ));
        let other = Grid::square(Rect::from_size(2000.0, 2000.0), 5);
        let err = batched
            .set_power(
                &mut state,
                0,
                &[GridMap::zeros(other), GridMap::zeros(other)],
            )
            .unwrap_err();
        assert!(matches!(err, SolveError::GridMismatch));
    }
}

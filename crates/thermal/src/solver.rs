//! Finite-volume steady-state solver for the layered 3D-IC thermal network.
//!
//! The solver discretizes the stack into `layers x cols x rows` finite volumes, builds the
//! thermal conductance network (lateral conduction within layers, vertical conduction between
//! layers — with TSV-dependent effective conductivity in bond layers — and the two boundary
//! paths to ambient), and solves the resulting linear system with successive over-relaxation.
//! It plays the role HotSpot 6.0 plays in the paper: the reference ("detailed") analysis used
//! to verify correlations after floorplanning.
//!
//! The SOR sweep uses a **red-black (checkerboard) ordering**: nodes are colored by the
//! parity of `layer + row + col`, so every neighbour of a node has the other color and all
//! updates within one color are mutually independent. That makes the sweep embarrassingly
//! parallel *without* changing its result — [`SteadyStateSolver::solve_on`] distributes each
//! half-sweep over a [`tsc3d_exec::Pool`] and produces **bit-identical** temperatures,
//! iteration counts and residuals for any worker count (including the serial
//! [`SteadyStateSolver::solve`], which performs the same arithmetic in the same per-node
//! order; the residual is a `max` reduction and therefore order-insensitive).

use crate::config::{StackLayerKind, ThermalConfig};
use crate::tsv::TsvField;
use crate::MaterialProperties;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;
use std::sync::Arc;
use tsc3d_exec::{CancelToken, Interrupt, Pool};
use tsc3d_geometry::{Grid, GridMap};

/// Errors raised by [`SteadyStateSolver::solve`].
#[derive(Debug, Clone, PartialEq)]
pub enum SolveError {
    /// The number of power maps does not match the number of dies in the stack.
    PowerMapCount {
        /// Number of maps provided.
        got: usize,
        /// Number of dies expected.
        expected: usize,
    },
    /// The number of TSV fields does not match the number of inter-die interfaces.
    TsvFieldCount {
        /// Number of fields provided.
        got: usize,
        /// Number of interfaces expected.
        expected: usize,
    },
    /// Power maps / TSV fields are not all defined on the same grid.
    GridMismatch,
    /// The iteration did not converge within the configured iteration budget.
    NotConverged {
        /// Residual (largest per-node temperature update) after the final iteration, in K.
        residual: f64,
        /// Number of iterations performed.
        iterations: usize,
    },
    /// The solve was abandoned at a sweep-window checkpoint (site `solver-sweep`):
    /// the caller's [`tsc3d_exec::CancelToken`] fired or the fault harness injected
    /// an error. Never retried by callers — unlike [`SolveError::NotConverged`],
    /// the solver state is fine; the *caller* asked out.
    Interrupted {
        /// Why the checkpoint fired.
        interrupt: tsc3d_exec::Interrupt,
        /// SOR sweeps completed before the interrupt.
        iterations: usize,
    },
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::PowerMapCount { got, expected } => {
                write!(f, "expected {expected} power maps (one per die), got {got}")
            }
            SolveError::TsvFieldCount { got, expected } => {
                write!(
                    f,
                    "expected {expected} TSV fields (one per interface), got {got}"
                )
            }
            SolveError::GridMismatch => write!(f, "power maps and TSV fields use different grids"),
            SolveError::NotConverged {
                residual,
                iterations,
            } => write!(
                f,
                "solver did not converge after {iterations} iterations (residual {residual:.2e} K)"
            ),
            SolveError::Interrupted {
                interrupt,
                iterations,
            } => write!(
                f,
                "solve interrupted after {iterations} sweeps: {interrupt}"
            ),
        }
    }
}

impl Error for SolveError {}

/// Result of a steady-state thermal analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThermalResult {
    config: ThermalConfig,
    die_temperatures: Vec<GridMap>,
    layer_temperatures: Vec<GridMap>,
    iterations: usize,
    residual: f64,
}

impl ThermalResult {
    /// The configuration the analysis was run with.
    pub fn config(&self) -> &ThermalConfig {
        &self.config
    }

    /// Thermal map of the active layer of die `die` (0 = bottom die), in kelvin.
    pub fn die_temperature(&self, die: usize) -> &GridMap {
        &self.die_temperatures[die]
    }

    /// Thermal maps of all dies, bottom to top.
    pub fn die_temperatures(&self) -> &[GridMap] {
        &self.die_temperatures
    }

    /// Thermal maps of every layer of the stack (bottom to top), in kelvin.
    pub fn layer_temperatures(&self) -> &[GridMap] {
        &self.layer_temperatures
    }

    /// Peak temperature over all dies, in kelvin.
    pub fn peak_temperature(&self) -> f64 {
        self.die_temperatures
            .iter()
            .map(|m| m.max())
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Peak temperature rise above ambient, in kelvin.
    pub fn peak_rise(&self) -> f64 {
        self.peak_temperature() - self.config.ambient
    }

    /// Number of SOR iterations performed.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Final residual (largest per-node update of the last iteration) in kelvin.
    pub fn residual(&self) -> f64 {
        self.residual
    }
}

/// Successive-over-relaxation steady-state solver.
///
/// See the [crate-level documentation](crate) for an end-to-end example.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SteadyStateSolver {
    config: ThermalConfig,
    max_iterations: usize,
    tolerance: f64,
    relaxation: f64,
}

impl SteadyStateSolver {
    /// Default convergence tolerance of [`SteadyStateSolver::new`], in K.
    pub const DEFAULT_TOLERANCE: f64 = 1e-5;
    /// Default SOR iteration budget of [`SteadyStateSolver::new`].
    pub const DEFAULT_MAX_ITERATIONS: usize = 10_000;

    /// Creates a solver with default numerical parameters ([`Self::DEFAULT_MAX_ITERATIONS`]
    /// iterations, [`Self::DEFAULT_TOLERANCE`] K tolerance, ω = 1.85).
    pub fn new(config: ThermalConfig) -> Self {
        Self {
            config,
            max_iterations: Self::DEFAULT_MAX_ITERATIONS,
            tolerance: Self::DEFAULT_TOLERANCE,
            relaxation: 1.85,
        }
    }

    /// The thermal configuration.
    pub fn config(&self) -> &ThermalConfig {
        &self.config
    }

    /// Sets the maximum number of SOR iterations.
    pub fn with_max_iterations(mut self, iterations: usize) -> Self {
        self.max_iterations = iterations;
        self
    }

    /// Sets the convergence tolerance (largest per-node update, in K).
    pub fn with_tolerance(mut self, tolerance: f64) -> Self {
        self.tolerance = tolerance;
        self
    }

    /// Sets the SOR relaxation factor (1.0 = Gauss-Seidel; must be in `(0, 2)`).
    ///
    /// # Panics
    ///
    /// Panics if `omega` is outside `(0, 2)`.
    pub fn with_relaxation(mut self, omega: f64) -> Self {
        assert!(
            omega > 0.0 && omega < 2.0,
            "SOR relaxation must be in (0, 2)"
        );
        self.relaxation = omega;
        self
    }

    /// Solves for the steady-state temperature field.
    ///
    /// `power_per_die[d]` is the power map (in watts per bin) of die `d`'s active layer;
    /// `tsv_per_interface[i]` is the TSV field of the bond layer between die `i` and die
    /// `i+1`. All maps must share one grid.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError`] when the inputs are inconsistent or the iteration fails to
    /// converge.
    pub fn solve(
        &self,
        power_per_die: &[GridMap],
        tsv_per_interface: &[TsvField],
    ) -> Result<ThermalResult, SolveError> {
        self.solve_impl(power_per_die, tsv_per_interface, None, &CancelToken::new())
    }

    /// [`SteadyStateSolver::solve`] polling `cancel` once per SOR sweep (the
    /// checkpoint site is `solver-sweep`).
    ///
    /// Between checkpoints the solve is exactly the deterministic iteration it
    /// always was; a solve that completes is bit-identical to [`SteadyStateSolver::solve`].
    ///
    /// # Errors
    ///
    /// [`SolveError::Interrupted`] when the token fires or the fault harness
    /// injects an error, in addition to the [`SteadyStateSolver::solve`] errors.
    pub fn solve_cancellable(
        &self,
        power_per_die: &[GridMap],
        tsv_per_interface: &[TsvField],
        cancel: &CancelToken,
    ) -> Result<ThermalResult, SolveError> {
        self.solve_impl(power_per_die, tsv_per_interface, None, cancel)
    }

    /// [`SteadyStateSolver::solve`] with the red-black half-sweeps distributed over a
    /// worker pool.
    ///
    /// Each color's node updates are mutually independent (every neighbour has the other
    /// color), so the sweep parallelizes without reordering any arithmetic: temperatures,
    /// iteration counts and residuals are bit-identical to the serial solve for every
    /// worker count. A pool with zero threads degrades to the serial path. Parallelism
    /// pays off on fine grids (≳ 64×64 bins); for coarse grids the per-sweep dispatch
    /// overhead can outweigh the gain.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError`] when the inputs are inconsistent or the iteration fails to
    /// converge (identically to the serial solve).
    pub fn solve_on(
        &self,
        pool: &Pool,
        power_per_die: &[GridMap],
        tsv_per_interface: &[TsvField],
    ) -> Result<ThermalResult, SolveError> {
        self.solve_impl(
            power_per_die,
            tsv_per_interface,
            Some(pool),
            &CancelToken::new(),
        )
    }

    /// [`SteadyStateSolver::solve_on`] polling `cancel` once per SOR sweep —
    /// the pooled counterpart of [`SteadyStateSolver::solve_cancellable`].
    ///
    /// # Errors
    ///
    /// [`SolveError::Interrupted`] when the token fires or the fault harness
    /// injects an error, in addition to the [`SteadyStateSolver::solve_on`] errors.
    pub fn solve_on_cancellable(
        &self,
        pool: &Pool,
        power_per_die: &[GridMap],
        tsv_per_interface: &[TsvField],
        cancel: &CancelToken,
    ) -> Result<ThermalResult, SolveError> {
        self.solve_impl(power_per_die, tsv_per_interface, Some(pool), cancel)
    }

    fn solve_impl(
        &self,
        power_per_die: &[GridMap],
        tsv_per_interface: &[TsvField],
        pool: Option<&Pool>,
        cancel: &CancelToken,
    ) -> Result<ThermalResult, SolveError> {
        let dies = self.config.stack.dies();
        if power_per_die.len() != dies {
            return Err(SolveError::PowerMapCount {
                got: power_per_die.len(),
                expected: dies,
            });
        }
        let interfaces = self.config.interfaces();
        if tsv_per_interface.len() != interfaces {
            return Err(SolveError::TsvFieldCount {
                got: tsv_per_interface.len(),
                expected: interfaces,
            });
        }
        let grid = power_per_die[0].grid();
        if power_per_die.iter().any(|m| m.grid() != grid)
            || tsv_per_interface.iter().any(|f| f.density().grid() != grid)
        {
            return Err(SolveError::GridMismatch);
        }

        let _span = tsc3d_obs::span!("thermal_solve");
        let network = Network::build(&self.config, grid, power_per_die, tsv_per_interface);
        let swept = match pool {
            Some(pool) if pool.threads() > 0 => Arc::new(network).solve_sor_parallel(
                pool,
                self.relaxation,
                self.max_iterations,
                self.tolerance,
                cancel,
            ),
            _ => network.solve_sor(self.relaxation, self.max_iterations, self.tolerance, cancel),
        };
        let (temps, iterations, residual) = match swept {
            Ok(done) => done,
            Err((interrupt, iterations)) => {
                tsc3d_obs::add_to_span("solver_sweeps", iterations as u64);
                return Err(SolveError::Interrupted {
                    interrupt,
                    iterations,
                });
            }
        };
        tsc3d_obs::add_to_span("solver_sweeps", iterations as u64);
        solver_metrics().solves.inc();
        solver_metrics().sweeps.add(iterations as u64);
        if residual > self.tolerance {
            return Err(SolveError::NotConverged {
                residual,
                iterations,
            });
        }

        let layers = self.config.layer_count();
        let bins = grid.bins();
        let mut layer_temperatures = Vec::with_capacity(layers);
        for l in 0..layers {
            let values = temps[l * bins..(l + 1) * bins].to_vec();
            layer_temperatures.push(GridMap::from_values(grid, values));
        }
        let die_temperatures = (0..dies)
            .map(|d| {
                let l = self
                    .config
                    .active_layer_of(d)
                    .expect("config must contain an active layer per die");
                layer_temperatures[l].clone()
            })
            .collect();

        Ok(ThermalResult {
            config: self.config.clone(),
            die_temperatures,
            layer_temperatures,
            iterations,
            residual,
        })
    }
}

/// Cached handles for the `tsc3d_thermal_*` global-metric family (bumped once per
/// detailed solve; the per-sweep hot loop stays untouched).
struct SolverMetrics {
    solves: tsc3d_obs::Counter,
    sweeps: tsc3d_obs::Counter,
}

fn solver_metrics() -> &'static SolverMetrics {
    static METRICS: std::sync::OnceLock<SolverMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| SolverMetrics {
        solves: tsc3d_obs::global().counter(
            "tsc3d_thermal_solves_total",
            "Detailed steady-state thermal solves completed",
        ),
        sweeps: tsc3d_obs::global().counter(
            "tsc3d_thermal_sweeps_total",
            "Red-black SOR iterations performed by detailed solves",
        ),
    })
}

/// Assembled conductance network in structure-of-arrays form for the SOR sweep.
///
/// Also reused by the transient engine ([`crate::transient::TransientSolver`]), which
/// steps the same conductances forward in time instead of solving for the fixed point.
#[derive(Debug)]
pub(crate) struct Network {
    pub(crate) layers: usize,
    pub(crate) cols: usize,
    pub(crate) rows: usize,
    /// Lateral conductance to the +x neighbour, per node.
    pub(crate) gx: Vec<f64>,
    /// Lateral conductance to the +y neighbour, per node.
    pub(crate) gy: Vec<f64>,
    /// Vertical conductance to the node one layer up, per node.
    pub(crate) gz: Vec<f64>,
    /// Conductance to ambient (boundary paths), per node.
    pub(crate) gb: Vec<f64>,
    /// Injected power per node, in watts.
    pub(crate) power: Vec<f64>,
    pub(crate) ambient: f64,
}

impl Network {
    pub(crate) fn build(
        config: &ThermalConfig,
        grid: Grid,
        power_per_die: &[GridMap],
        tsv_per_interface: &[TsvField],
    ) -> Network {
        let layers = config.layer_count();
        let cols = grid.cols();
        let rows = grid.rows();
        let bins = grid.bins();
        let n = layers * bins;

        let dx = grid.bin_width() * 1e-6;
        let dy = grid.bin_height() * 1e-6;
        let area = dx * dy;

        // Effective conductivity per node: bond layers mix the bond material with copper
        // according to the local TSV density.
        let mut k_eff = vec![0.0; n];
        for (l, layer) in config.layers.iter().enumerate() {
            for b in 0..bins {
                let idx = l * bins + b;
                k_eff[idx] = match layer.kind {
                    StackLayerKind::Bond { interface } => {
                        let d = tsv_per_interface[interface].density().values()[b];
                        layer.material.conductivity * (1.0 - d)
                            + MaterialProperties::COPPER.conductivity * d
                    }
                    _ => layer.material.conductivity,
                };
            }
        }

        let mut gx = vec![0.0; n];
        let mut gy = vec![0.0; n];
        let mut gz = vec![0.0; n];
        let mut gb = vec![0.0; n];
        let mut power = vec![0.0; n];

        for (l, layer) in config.layers.iter().enumerate() {
            let dz = layer.thickness;
            for row in 0..rows {
                for col in 0..cols {
                    let b = row * cols + col;
                    let idx = l * bins + b;
                    let k = k_eff[idx];
                    // Lateral conductances (series of the two half-bins).
                    if col + 1 < cols {
                        let k_next = k_eff[l * bins + b + 1];
                        gx[idx] = series_conductance(k, k_next, dx, dz * dy);
                    }
                    if row + 1 < rows {
                        let k_next = k_eff[l * bins + b + cols];
                        gy[idx] = series_conductance(k, k_next, dy, dz * dx);
                    }
                    // Vertical conductance to the next layer up.
                    if l + 1 < layers {
                        let up = config.layers[l + 1];
                        let k_up = k_eff[(l + 1) * bins + b];
                        let r = dz / (2.0 * k * area) + up.thickness / (2.0 * k_up * area);
                        gz[idx] = 1.0 / r;
                    }
                    // Boundary paths.
                    if l == 0 && config.secondary_conductance > 0.0 {
                        let r = dz / (2.0 * k * area) + 1.0 / (config.secondary_conductance * area);
                        gb[idx] += 1.0 / r;
                    }
                    if l + 1 == layers && config.heatsink_conductance > 0.0 {
                        let r = dz / (2.0 * k * area) + 1.0 / (config.heatsink_conductance * area);
                        gb[idx] += 1.0 / r;
                    }
                }
            }
            if let StackLayerKind::ActiveSilicon { die } = layer.kind {
                let map = &power_per_die[die];
                for b in 0..bins {
                    power[l * bins + b] += map.values()[b];
                }
            }
        }

        Network {
            layers,
            cols,
            rows,
            gx,
            gy,
            gz,
            gb,
            power,
            ambient: config.ambient,
        }
    }

    /// The relaxed value of one node given the current temperature field: returns the new
    /// temperature and the absolute update `|flow/g_sum - t|` (the residual contribution).
    ///
    /// During a red-black half-sweep every operand read here belongs to the *other* color
    /// (or is the node's own pre-sweep value), so the same `(value, update)` pair results
    /// whether the sweep runs in place serially or gathers into fresh storage in parallel.
    #[inline]
    fn relaxed_value(&self, t: &[f64], l: usize, row: usize, col: usize, omega: f64) -> (f64, f64) {
        let bins = self.cols * self.rows;
        let b = row * self.cols + col;
        let idx = l * bins + b;
        let mut g_sum = self.gb[idx];
        let mut flow = self.gb[idx] * self.ambient + self.power[idx];

        if col + 1 < self.cols {
            let g = self.gx[idx];
            g_sum += g;
            flow += g * t[idx + 1];
        }
        if col > 0 {
            let g = self.gx[idx - 1];
            g_sum += g;
            flow += g * t[idx - 1];
        }
        if row + 1 < self.rows {
            let g = self.gy[idx];
            g_sum += g;
            flow += g * t[idx + self.cols];
        }
        if row > 0 {
            let g = self.gy[idx - self.cols];
            g_sum += g;
            flow += g * t[idx - self.cols];
        }
        if l + 1 < self.layers {
            let g = self.gz[idx];
            g_sum += g;
            flow += g * t[idx + bins];
        }
        if l > 0 {
            let g = self.gz[idx - bins];
            g_sum += g;
            flow += g * t[idx - bins];
        }

        if g_sum > 0.0 {
            let new = flow / g_sum;
            let update = new - t[idx];
            (t[idx] + omega * update, update.abs())
        } else {
            (t[idx], 0.0)
        }
    }

    /// One serial red-black SOR solve; returns (temperatures, iterations, final residual),
    /// or the interrupt plus the sweeps completed when the per-sweep checkpoint fires.
    fn solve_sor(
        &self,
        omega: f64,
        max_iterations: usize,
        tolerance: f64,
        cancel: &CancelToken,
    ) -> Result<(Vec<f64>, usize, f64), (Interrupt, usize)> {
        let bins = self.cols * self.rows;
        let n = self.layers * bins;
        let mut t = vec![self.ambient; n];
        let mut residual = f64::INFINITY;
        let mut iterations = 0;

        for iter in 0..max_iterations {
            // One full-grid sweep dwarfs the checkpoint's two relaxed loads.
            tsc3d_exec::checkpoint("solver-sweep", cancel).map_err(|i| (i, iterations))?;
            residual = 0.0;
            for color in 0..2usize {
                for l in 0..self.layers {
                    for row in 0..self.rows {
                        let first = (color + l + row) % 2;
                        for col in (first..self.cols).step_by(2) {
                            let idx = l * bins + row * self.cols + col;
                            let (value, update) = self.relaxed_value(&t, l, row, col, omega);
                            t[idx] = value;
                            residual = residual.max(update);
                        }
                    }
                }
            }
            iterations = iter + 1;
            // Live sweep progress, thinned so a long solve cannot flood the event ring;
            // with events disabled the cost is one relaxed load per 64 sweeps.
            if iterations % 64 == 0 {
                tsc3d_obs::emit(|| tsc3d_obs::EventKind::Progress {
                    phase: "solver_sweeps",
                    done: iterations as u64,
                    total: max_iterations as u64,
                });
            }
            if residual < tolerance {
                break;
            }
        }
        Ok((t, iterations, residual))
    }

    /// The parallel red-black SOR solve: each half-sweep fans the `(layer, row)` pairs out
    /// over the pool; workers gather new values for their rows against an immutable
    /// snapshot of the field, and the caller writes them back between colors.
    ///
    /// Bit-identical to [`Network::solve_sor`]: per node the same [`Network::relaxed_value`]
    /// arithmetic runs against the same operand values (same-color operands are untouched
    /// within a half-sweep), and the residual is combined with the order-insensitive `max`.
    fn solve_sor_parallel(
        self: Arc<Network>,
        pool: &Pool,
        omega: f64,
        max_iterations: usize,
        tolerance: f64,
        cancel: &CancelToken,
    ) -> Result<(Vec<f64>, usize, f64), (Interrupt, usize)> {
        let bins = self.cols * self.rows;
        let n = self.layers * bins;
        let rows = self.rows;
        let cols = self.cols;

        // Fixed contiguous (layer, row) chunks; the partition only affects scheduling,
        // never values.
        let lr_total = self.layers * rows;
        let chunk_count = (pool.threads() * 3).clamp(1, lr_total);
        let mut chunks = Vec::with_capacity(chunk_count);
        for c in 0..chunk_count {
            let lo = c * lr_total / chunk_count;
            let hi = (c + 1) * lr_total / chunk_count;
            if lo < hi {
                chunks.push((lo, hi));
            }
        }

        let mut t: Arc<Vec<f64>> = Arc::new(vec![self.ambient; n]);
        let mut residual = f64::INFINITY;
        let mut iterations = 0;

        for iter in 0..max_iterations {
            // Same per-sweep checkpoint as the serial solve, so interruption points
            // (and fault-site hit counts) agree across worker counts.
            tsc3d_exec::checkpoint("solver-sweep", cancel).map_err(|i| (i, iterations))?;
            residual = 0.0;
            for color in 0..2usize {
                let network = Arc::clone(&self);
                let snapshot = Arc::clone(&t);
                let results = pool.run_batch(chunks.clone(), move |_, (lo, hi)| {
                    let field: &[f64] = &snapshot;
                    let mut values = Vec::with_capacity((hi - lo) * (cols / 2 + 1));
                    let mut worst = 0.0f64;
                    for lr in lo..hi {
                        let l = lr / rows;
                        let row = lr % rows;
                        let first = (color + l + row) % 2;
                        for col in (first..cols).step_by(2) {
                            let (value, update) = network.relaxed_value(field, l, row, col, omega);
                            values.push(value);
                            worst = worst.max(update);
                        }
                    }
                    (values, worst)
                });

                let field = Arc::make_mut(&mut t);
                for (&(lo, hi), (values, worst)) in chunks.iter().zip(results) {
                    residual = residual.max(worst);
                    let mut v = values.into_iter();
                    for lr in lo..hi {
                        let l = lr / rows;
                        let row = lr % rows;
                        let first = (color + l + row) % 2;
                        for col in (first..cols).step_by(2) {
                            let idx = l * bins + row * cols + col;
                            field[idx] = v.next().expect("one value per swept node");
                        }
                    }
                }
            }
            iterations = iter + 1;
            // Same thinned live progress as the serial sweep (see `solve_sor`).
            if iterations % 64 == 0 {
                tsc3d_obs::emit(|| tsc3d_obs::EventKind::Progress {
                    phase: "solver_sweeps",
                    done: iterations as u64,
                    total: max_iterations as u64,
                });
            }
            if residual < tolerance {
                break;
            }
        }
        let temps = Arc::try_unwrap(t).unwrap_or_else(|shared| (*shared).clone());
        Ok((temps, iterations, residual))
    }
}

/// Conductance of two half-bins in series along one lateral axis.
fn series_conductance(k_a: f64, k_b: f64, length: f64, cross_section: f64) -> f64 {
    let r = length / (2.0 * k_a * cross_section) + length / (2.0 * k_b * cross_section);
    1.0 / r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TsvPattern;
    use tsc3d_geometry::{Outline, Rect, Stack};

    fn setup(grid_n: usize) -> (ThermalConfig, Grid) {
        let stack = Stack::two_die(Outline::new(2000.0, 2000.0));
        let grid = Grid::square(stack.outline().rect(), grid_n);
        (ThermalConfig::default_for(stack), grid)
    }

    fn uniform_power(grid: Grid, total: f64) -> GridMap {
        GridMap::constant(grid, total / grid.bins() as f64)
    }

    #[test]
    fn zero_power_stays_at_ambient() {
        let (cfg, grid) = setup(8);
        let solver = SteadyStateSolver::new(cfg);
        let power = vec![GridMap::zeros(grid), GridMap::zeros(grid)];
        let tsvs = vec![TsvField::empty(grid)];
        let r = solver.solve(&power, &tsvs).unwrap();
        assert!((r.peak_temperature() - 293.0).abs() < 1e-6);
        assert!(r.peak_rise().abs() < 1e-6);
    }

    #[test]
    fn cancelled_token_interrupts_the_solve_typed() {
        let (cfg, grid) = setup(8);
        let solver = SteadyStateSolver::new(cfg);
        let power = vec![uniform_power(grid, 2.0), uniform_power(grid, 2.0)];
        let tsvs = vec![TsvField::uniform(grid, 0.05)];
        let cancel = CancelToken::new();
        cancel.cancel(tsc3d_exec::CancelReason::User);
        match solver.solve_cancellable(&power, &tsvs, &cancel) {
            Err(SolveError::Interrupted {
                interrupt,
                iterations,
            }) => {
                assert_eq!(
                    interrupt,
                    Interrupt::Cancelled(tsc3d_exec::CancelReason::User)
                );
                assert_eq!(iterations, 0, "the first sweep-window checkpoint fires");
            }
            other => panic!("expected an interrupted solve, got {other:?}"),
        }
        // A live token solves identically to the plain entry point.
        let clean = solver.solve(&power, &tsvs).unwrap();
        let live = solver
            .solve_cancellable(&power, &tsvs, &CancelToken::new())
            .unwrap();
        assert_eq!(clean, live);
    }

    #[test]
    fn uniform_power_heats_above_ambient() {
        let (cfg, grid) = setup(8);
        let solver = SteadyStateSolver::new(cfg);
        let power = vec![uniform_power(grid, 2.0), uniform_power(grid, 2.0)];
        let tsvs = vec![TsvField::uniform(grid, 0.05)];
        let r = solver.solve(&power, &tsvs).unwrap();
        assert!(r.peak_rise() > 0.5, "peak rise {}", r.peak_rise());
        // Both dies stay within a physically plausible range for 4 W on 4 mm².
        assert!(r.peak_temperature() < 450.0);
    }

    #[test]
    fn bottom_die_runs_hotter_than_top() {
        // The heatsink sits above the top die, so for equal power the bottom die (longer
        // path to the sink) must be hotter on average.
        let (cfg, grid) = setup(8);
        let solver = SteadyStateSolver::new(cfg);
        let power = vec![uniform_power(grid, 2.0), uniform_power(grid, 2.0)];
        let tsvs = vec![TsvField::empty(grid)];
        let r = solver.solve(&power, &tsvs).unwrap();
        assert!(r.die_temperature(0).mean() > r.die_temperature(1).mean());
    }

    #[test]
    fn hotspot_appears_over_the_powered_block() {
        let (cfg, grid) = setup(16);
        let solver = SteadyStateSolver::new(cfg);
        let mut p0 = GridMap::zeros(grid);
        p0.splat_power(&Rect::new(0.0, 0.0, 500.0, 500.0), 3.0);
        let power = vec![p0, GridMap::zeros(grid)];
        let tsvs = vec![TsvField::empty(grid)];
        let r = solver.solve(&power, &tsvs).unwrap();
        let hottest = r.die_temperature(0).argmax();
        // Hotspot must lie in the lower-left quadrant where the power is injected.
        assert!(hottest.col < 8 && hottest.row < 8, "hotspot at {hottest}");
    }

    #[test]
    fn more_tsvs_reduce_bottom_die_temperature() {
        let (cfg, grid) = setup(8);
        let solver = SteadyStateSolver::new(cfg);
        let power = vec![uniform_power(grid, 3.0), GridMap::zeros(grid)];
        let few = solver
            .solve(&power, &[TsvField::empty(grid)])
            .unwrap()
            .die_temperature(0)
            .mean();
        let many = solver
            .solve(&power, &[TsvField::uniform(grid, 0.2)])
            .unwrap()
            .die_temperature(0)
            .mean();
        assert!(
            many < few,
            "TSVs should cool the bottom die: {many} !< {few}"
        );
    }

    #[test]
    fn energy_is_conserved_at_steady_state() {
        // At steady state all injected power must leave through the two boundary paths;
        // equivalently the temperature rise must scale linearly with total power.
        let (cfg, grid) = setup(8);
        let solver = SteadyStateSolver::new(cfg);
        let tsvs = vec![TsvField::uniform(grid, 0.05)];
        let r1 = solver
            .solve(&[uniform_power(grid, 1.0), GridMap::zeros(grid)], &tsvs)
            .unwrap();
        let r2 = solver
            .solve(&[uniform_power(grid, 2.0), GridMap::zeros(grid)], &tsvs)
            .unwrap();
        let rise1 = r1.peak_rise();
        let rise2 = r2.peak_rise();
        assert!(
            (rise2 / rise1 - 2.0).abs() < 1e-3,
            "linearity violated: {rise1} vs {rise2}"
        );
    }

    #[test]
    fn input_validation() {
        let (cfg, grid) = setup(4);
        let solver = SteadyStateSolver::new(cfg);
        let err = solver.solve(&[GridMap::zeros(grid)], &[TsvField::empty(grid)]);
        assert!(matches!(
            err,
            Err(SolveError::PowerMapCount {
                expected: 2,
                got: 1
            })
        ));
        let err = solver.solve(&[GridMap::zeros(grid), GridMap::zeros(grid)], &[]);
        assert!(matches!(
            err,
            Err(SolveError::TsvFieldCount {
                expected: 1,
                got: 0
            })
        ));
        let other_grid = Grid::square(Rect::from_size(2000.0, 2000.0), 5);
        let err = solver.solve(
            &[GridMap::zeros(grid), GridMap::zeros(other_grid)],
            &[TsvField::empty(grid)],
        );
        assert!(matches!(err, Err(SolveError::GridMismatch)));
    }

    #[test]
    fn parallel_red_black_solve_is_bit_identical_to_serial() {
        // The checkerboard half-sweeps update independent nodes, so the pooled solve must
        // reproduce the serial one *exactly* — temperatures, iterations and residual —
        // for any worker count.
        let (cfg, grid) = setup(16);
        let solver = SteadyStateSolver::new(cfg);
        let mut p0 = GridMap::zeros(grid);
        p0.splat_power(&Rect::new(0.0, 0.0, 700.0, 500.0), 2.5);
        let power = vec![p0, uniform_power(grid, 1.0)];
        let tsvs = vec![TsvField::uniform(grid, 0.07)];
        let serial = solver.solve(&power, &tsvs).unwrap();
        for workers in [1usize, 3, 7] {
            let pool = Pool::new(workers);
            let parallel = solver.solve_on(&pool, &power, &tsvs).unwrap();
            assert_eq!(
                parallel.iterations(),
                serial.iterations(),
                "{workers} workers"
            );
            assert_eq!(parallel.residual(), serial.residual(), "{workers} workers");
            assert_eq!(
                parallel.layer_temperatures(),
                serial.layer_temperatures(),
                "{workers} workers"
            );
            assert_eq!(parallel.die_temperatures(), serial.die_temperatures());
            pool.shutdown();
        }
    }

    #[test]
    fn parallel_non_convergence_stays_typed_and_matches_serial() {
        let (cfg, grid) = setup(8);
        let solver = SteadyStateSolver::new(cfg).with_max_iterations(2);
        let power = vec![uniform_power(grid, 2.0), uniform_power(grid, 2.0)];
        let tsvs = vec![TsvField::empty(grid)];
        let pool = Pool::new(2);
        let err = solver.solve_on(&pool, &power, &tsvs).unwrap_err();
        assert!(matches!(err, SolveError::NotConverged { .. }));
        // Same typed payload (residual and iteration count) as the serial solve.
        assert_eq!(err, solver.solve(&power, &tsvs).unwrap_err());
        pool.shutdown();
    }

    #[test]
    fn non_convergence_is_reported() {
        let (cfg, grid) = setup(8);
        let solver = SteadyStateSolver::new(cfg).with_max_iterations(2);
        let power = vec![uniform_power(grid, 2.0), uniform_power(grid, 2.0)];
        let err = solver.solve(&power, &[TsvField::empty(grid)]).unwrap_err();
        assert!(matches!(err, SolveError::NotConverged { .. }));
        assert!(format!("{err}").contains("did not converge"));
    }

    #[test]
    fn exploratory_patterns_affect_thermal_map_structure() {
        let (cfg, grid) = setup(16);
        let solver = SteadyStateSolver::new(cfg);
        let mut p0 = GridMap::zeros(grid);
        p0.splat_power(&Rect::new(0.0, 0.0, 1000.0, 1000.0), 2.0);
        p0.splat_power(&Rect::new(1000.0, 1000.0, 1000.0, 1000.0), 0.5);
        let power = vec![p0, uniform_power(grid, 1.0)];
        let none = solver
            .solve(&power, &[TsvField::from_pattern(grid, TsvPattern::None, 1)])
            .unwrap();
        let max = solver
            .solve(
                &power,
                &[TsvField::from_pattern(grid, TsvPattern::MaxDensity, 1)],
            )
            .unwrap();
        // Dense TSVs flatten the bottom-die thermal profile.
        assert!(max.die_temperature(0).std_dev() < none.die_temperature(0).std_dev());
    }

    #[test]
    fn relaxation_validation() {
        let (cfg, _) = setup(4);
        let s = SteadyStateSolver::new(cfg)
            .with_relaxation(1.0)
            .with_tolerance(1e-4);
        assert_eq!(s.config().ambient, 293.0);
    }

    #[test]
    #[should_panic(expected = "relaxation")]
    fn invalid_relaxation_panics() {
        let (cfg, _) = setup(4);
        let _ = SteadyStateSolver::new(cfg).with_relaxation(2.5);
    }
}

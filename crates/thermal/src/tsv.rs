//! Through-silicon-via (TSV) distributions.
//!
//! TSVs are copper/tungsten pillars crossing an inter-die bond layer. Thermally they act as
//! "heat pipes" between stacked dies; their number and spatial arrangement is the second key
//! knob (besides the power distribution) controlling how strongly the thermal map of a die
//! correlates with its power map (Section 3 of the paper).
//!
//! A [`TsvField`] stores, per inter-die interface, the fraction of each grid bin occupied by
//! TSV metal. Fields can be built from explicit [`TsvSite`]s (as produced by the
//! floorplanner's TSV planning) or synthesized from one of the exploratory [`TsvPattern`]s
//! of the paper's initial study.

use serde::{Deserialize, Serialize};
use std::fmt;
use tsc3d_geometry::{Grid, GridMap, GridPos, Point, Rect};

/// Technology parameters of a TSV.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TsvTechnology {
    /// TSV (copper) diameter in µm.
    pub diameter: f64,
    /// Minimum pitch between adjacent TSVs in µm.
    pub pitch: f64,
    /// Keep-out-zone margin around each TSV in µm (no active devices allowed).
    pub keep_out: f64,
}

impl TsvTechnology {
    /// Default 3D-IC technology: 5 µm diameter, 10 µm pitch, 5 µm keep-out (Corblivar
    /// defaults for the 90 nm node used in the paper).
    pub const fn default_90nm() -> Self {
        Self {
            diameter: 5.0,
            pitch: 10.0,
            keep_out: 5.0,
        }
    }

    /// Metal cross-section area of a single TSV in µm².
    pub fn metal_area(&self) -> f64 {
        std::f64::consts::PI * (self.diameter / 2.0).powi(2)
    }

    /// Footprint (pitch cell) area of a single TSV including its keep-out zone, in µm².
    pub fn footprint_area(&self) -> f64 {
        let cell = self.diameter + 2.0 * self.keep_out;
        cell * cell
    }

    /// Maximum achievable TSV metal density (metal area / footprint area).
    pub fn max_density(&self) -> f64 {
        (self.metal_area() / self.footprint_area()).min(1.0)
    }
}

impl Default for TsvTechnology {
    fn default() -> Self {
        Self::default_90nm()
    }
}

/// A single TSV (or a group of TSVs at the same site) located on an inter-die interface.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TsvSite {
    /// Centre position of the site in µm.
    pub position: Point,
    /// Number of TSVs at this site (1 for a single signal TSV, larger for a TSV island).
    pub count: usize,
}

impl TsvSite {
    /// Creates a single-TSV site.
    pub fn single(position: Point) -> Self {
        Self { position, count: 1 }
    }

    /// Creates an island of `count` TSVs centred at `position`.
    pub fn island(position: Point, count: usize) -> Self {
        Self { position, count }
    }
}

/// The exploratory TSV arrangements studied in Section 3 / Figure 2 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TsvPattern {
    /// No TSVs at all (pure face-to-back bonding, no vertical interconnect).
    None,
    /// Maximum TSV density: 100 % of the area covered by TSVs and their keep-out zones.
    MaxDensity,
    /// Irregularly placed individual TSVs.
    Irregular,
    /// Irregular TSVs plus a regular background array.
    IrregularPlusRegular,
    /// Irregular groups of densely packed TSVs (TSV islands).
    Islands,
    /// TSV islands plus a regular background array.
    IslandsPlusRegular,
}

impl TsvPattern {
    /// All six patterns in the order used by the exploratory study.
    pub const ALL: [TsvPattern; 6] = [
        TsvPattern::None,
        TsvPattern::MaxDensity,
        TsvPattern::Irregular,
        TsvPattern::IrregularPlusRegular,
        TsvPattern::Islands,
        TsvPattern::IslandsPlusRegular,
    ];

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            TsvPattern::None => "no TSVs",
            TsvPattern::MaxDensity => "maximal TSV density",
            TsvPattern::Irregular => "irregular TSVs",
            TsvPattern::IrregularPlusRegular => "irregular + regular TSVs",
            TsvPattern::Islands => "TSV islands",
            TsvPattern::IslandsPlusRegular => "TSV islands + regular TSVs",
        }
    }
}

impl fmt::Display for TsvPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// TSV metal-density field over one inter-die interface.
///
/// Each bin stores the fraction of the bin area occupied by TSV metal, in `[0, 1]`. The
/// thermal solvers turn this into an effective vertical conductivity; the floorplanner
/// updates it as signal and dummy TSVs are planned.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TsvField {
    density: GridMap,
    technology: TsvTechnology,
    sites: Vec<TsvSite>,
}

impl TsvField {
    /// Creates an empty field (no TSVs) on the given grid.
    pub fn empty(grid: Grid) -> Self {
        Self {
            density: GridMap::zeros(grid),
            technology: TsvTechnology::default(),
            sites: Vec::new(),
        }
    }

    /// Creates a field with uniform density everywhere (clamped to `[0, 1]`).
    pub fn uniform(grid: Grid, density: f64) -> Self {
        Self {
            density: GridMap::constant(grid, density.clamp(0.0, 1.0)),
            technology: TsvTechnology::default(),
            sites: Vec::new(),
        }
    }

    /// Creates an empty field using a specific TSV technology.
    pub fn with_technology(grid: Grid, technology: TsvTechnology) -> Self {
        Self {
            density: GridMap::zeros(grid),
            technology,
            sites: Vec::new(),
        }
    }

    /// The underlying density map (fraction of bin area that is TSV metal).
    pub fn density(&self) -> &GridMap {
        &self.density
    }

    /// The TSV technology parameters.
    pub fn technology(&self) -> TsvTechnology {
        self.technology
    }

    /// The explicit TSV sites added so far (empty for synthesized patterns).
    pub fn sites(&self) -> &[TsvSite] {
        &self.sites
    }

    /// Total number of TSVs represented by the explicit sites.
    pub fn tsv_count(&self) -> usize {
        self.sites.iter().map(|s| s.count).sum()
    }

    /// Removes every TSV from the field (density back to zero, sites cleared), keeping the
    /// allocated storage. Lets hot loops reuse one field per interface across re-plans.
    pub fn clear(&mut self) {
        self.density.values_mut().fill(0.0);
        self.sites.clear();
    }

    /// Adds a TSV site, updating the density map.
    ///
    /// The site's metal area is spread over the bin containing it (and clipped at a density
    /// of 1). Sites outside the grid region are ignored.
    pub fn add_site(&mut self, site: TsvSite) {
        let grid = self.density.grid();
        if let Some(pos) = grid.bin_of(site.position) {
            let added = site.count as f64 * self.technology.metal_area() / grid.bin_area();
            let new = (self.density.get(pos) + added).min(1.0);
            self.density.set(pos, new);
            self.sites.push(site);
        }
    }

    /// [`TsvField::add_site`] with the containing bin already resolved — the hot-loop
    /// variant for callers that cache `bin_of(site.position)` alongside the site.
    ///
    /// # Panics
    ///
    /// Debug builds assert that `pos` is the bin containing the site.
    pub fn add_site_at(&mut self, site: TsvSite, pos: GridPos) {
        let grid = self.density.grid();
        debug_assert_eq!(grid.bin_of(site.position), Some(pos));
        let added = site.count as f64 * self.technology.metal_area() / grid.bin_area();
        let new = (self.density.get(pos) + added).min(1.0);
        self.density.set(pos, new);
        self.sites.push(site);
    }

    /// Adds several sites.
    pub fn add_sites<I: IntoIterator<Item = TsvSite>>(&mut self, sites: I) {
        for s in sites {
            self.add_site(s);
        }
    }

    /// Average density over the whole interface.
    pub fn mean_density(&self) -> f64 {
        self.density.mean()
    }

    /// Density at a specific bin.
    pub fn density_at(&self, pos: GridPos) -> f64 {
        self.density.get(pos)
    }

    /// Synthesizes one of the exploratory patterns of Section 3 on the given grid.
    ///
    /// `seed` makes irregular patterns reproducible. The returned field has no explicit
    /// sites; only the density map is populated.
    pub fn from_pattern(grid: Grid, pattern: TsvPattern, seed: u64) -> Self {
        let technology = TsvTechnology::default();
        let max_density = technology.max_density();
        let mut density = GridMap::zeros(grid);
        let mut rng = SplitMix::new(seed);

        match pattern {
            TsvPattern::None => {}
            TsvPattern::MaxDensity => {
                density = GridMap::constant(grid, max_density);
            }
            TsvPattern::Irregular => {
                scatter(&mut density, &mut rng, grid.bins() / 6, max_density * 0.6);
            }
            TsvPattern::IrregularPlusRegular => {
                regular(&mut density, 4, max_density * 0.3);
                scatter(&mut density, &mut rng, grid.bins() / 8, max_density * 0.6);
            }
            TsvPattern::Islands => {
                islands(&mut density, &mut rng, 5, grid, max_density);
            }
            TsvPattern::IslandsPlusRegular => {
                regular(&mut density, 4, max_density * 0.3);
                islands(&mut density, &mut rng, 5, grid, max_density);
            }
        }
        Self {
            density,
            technology,
            sites: Vec::new(),
        }
    }

    /// Returns a copy whose density is the element-wise maximum of `self` and `other`
    /// (useful for overlaying signal-TSV and dummy-TSV fields on the same interface).
    ///
    /// # Panics
    ///
    /// Panics if the grids differ.
    pub fn merged(&self, other: &TsvField) -> TsvField {
        assert_eq!(self.density.grid(), other.density.grid(), "grid mismatch");
        let values: Vec<f64> = self
            .density
            .values()
            .iter()
            .zip(other.density.values())
            .map(|(a, b)| (a + b).min(1.0))
            .collect();
        let mut sites = self.sites.clone();
        sites.extend_from_slice(&other.sites);
        TsvField {
            density: GridMap::from_values(self.density.grid(), values),
            technology: self.technology,
            sites,
        }
    }
}

fn scatter(density: &mut GridMap, rng: &mut SplitMix, bins: usize, amount: f64) {
    let grid = density.grid();
    for _ in 0..bins {
        let col = rng.below(grid.cols());
        let row = rng.below(grid.rows());
        let pos = GridPos::new(col, row);
        let new = (density.get(pos) + amount).min(1.0);
        density.set(pos, new);
    }
}

fn regular(density: &mut GridMap, stride: usize, amount: f64) {
    let grid = density.grid();
    for pos in grid.positions() {
        if pos.col % stride == 0 && pos.row % stride == 0 {
            let new = (density.get(pos) + amount).min(1.0);
            density.set(pos, new);
        }
    }
}

fn islands(density: &mut GridMap, rng: &mut SplitMix, count: usize, grid: Grid, max_density: f64) {
    for _ in 0..count {
        let col = rng.below(grid.cols());
        let row = rng.below(grid.rows());
        let radius = 1 + rng.below(2);
        let center = grid.bin_center(GridPos::new(col, row));
        let half = radius as f64 * grid.bin_width();
        let island = Rect::new(center.x - half, center.y - half, 2.0 * half, 2.0 * half);
        for pos in grid.positions() {
            if grid.bin_rect(pos).overlaps(&island) {
                density.set(pos, max_density);
            }
        }
    }
}

/// Minimal deterministic PRNG (SplitMix64) so this crate does not need a `rand` dependency.
#[derive(Debug, Clone)]
struct SplitMix {
    state: u64,
}

impl SplitMix {
    fn new(seed: u64) -> Self {
        Self {
            state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound.max(1) as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsc3d_geometry::Rect;

    fn grid() -> Grid {
        Grid::square(Rect::from_size(1000.0, 1000.0), 16)
    }

    #[test]
    fn technology_density_bounds() {
        let t = TsvTechnology::default_90nm();
        assert!(t.max_density() > 0.0 && t.max_density() < 1.0);
        assert!(t.metal_area() < t.footprint_area());
    }

    #[test]
    fn empty_and_uniform_fields() {
        assert_eq!(TsvField::empty(grid()).mean_density(), 0.0);
        let f = TsvField::uniform(grid(), 0.3);
        assert!((f.mean_density() - 0.3).abs() < 1e-12);
        // Clamping.
        assert_eq!(TsvField::uniform(grid(), 2.0).mean_density(), 1.0);
    }

    #[test]
    fn adding_sites_increases_density() {
        let mut f = TsvField::empty(grid());
        f.add_site(TsvSite::single(Point::new(100.0, 100.0)));
        f.add_site(TsvSite::island(Point::new(500.0, 500.0), 50));
        assert_eq!(f.sites().len(), 2);
        assert_eq!(f.tsv_count(), 51);
        assert!(f.mean_density() > 0.0);
        // Sites outside the region are ignored.
        f.add_site(TsvSite::single(Point::new(5000.0, 5000.0)));
        assert_eq!(f.sites().len(), 2);
    }

    #[test]
    fn density_saturates_at_one() {
        let mut f = TsvField::empty(grid());
        f.add_site(TsvSite::island(Point::new(100.0, 100.0), 1_000_000));
        let pos = f.density().grid().bin_of(Point::new(100.0, 100.0)).unwrap();
        assert_eq!(f.density_at(pos), 1.0);
    }

    #[test]
    fn patterns_have_expected_ordering() {
        let g = grid();
        let none = TsvField::from_pattern(g, TsvPattern::None, 1);
        let max = TsvField::from_pattern(g, TsvPattern::MaxDensity, 1);
        let irregular = TsvField::from_pattern(g, TsvPattern::Irregular, 1);
        let islands = TsvField::from_pattern(g, TsvPattern::Islands, 1);
        assert_eq!(none.mean_density(), 0.0);
        assert!(max.mean_density() > irregular.mean_density());
        assert!(irregular.mean_density() > 0.0);
        assert!(islands.mean_density() > 0.0);
        // Max-density pattern is spatially uniform.
        assert!(max.density().std_dev() < 1e-12);
        // Irregular pattern is not.
        assert!(irregular.density().std_dev() > 0.0);
    }

    #[test]
    fn patterns_are_deterministic_per_seed() {
        let g = grid();
        let a = TsvField::from_pattern(g, TsvPattern::Islands, 7);
        let b = TsvField::from_pattern(g, TsvPattern::Islands, 7);
        let c = TsvField::from_pattern(g, TsvPattern::Islands, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn merged_takes_sum_clamped() {
        let g = grid();
        let a = TsvField::uniform(g, 0.6);
        let b = TsvField::uniform(g, 0.7);
        let m = a.merged(&b);
        assert_eq!(m.mean_density(), 1.0);
    }

    #[test]
    fn pattern_names_and_all() {
        assert_eq!(TsvPattern::ALL.len(), 6);
        assert_eq!(format!("{}", TsvPattern::Islands), "TSV islands");
    }
}

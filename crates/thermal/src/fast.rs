//! Fast mask-based thermal estimation ("power blurring").
//!
//! Corblivar's key enabler — and the reason the paper can evaluate thermal leakage inside
//! every floorplanning iteration — is a fast thermal analysis that approximates the thermal
//! map as the convolution of the power map with a pre-characterized impulse response
//! ("thermal mask"). This module implements that estimator for the two-die stack:
//!
//! * each die's power map is blurred with a Gaussian mask whose width models lateral heat
//!   spreading,
//! * dies couple vertically (power in one die raises the temperature of the other, scaled by
//!   a coupling factor that grows with the local TSV density),
//! * the local temperature *rise* is additionally reduced where TSVs provide a good vertical
//!   path towards the heatsink.
//!
//! The estimator is intentionally cheap and only has to be *rank-correlated* with the
//! detailed solver (the paper itself notes the fast analysis "to be inferior to the detailed
//! analysis of HotSpot" and verifies final results with the detailed engine — we do the
//! same, see `tsc3d::flow`).

use crate::{ThermalConfig, TsvField};
use serde::{Deserialize, Serialize};
use tsc3d_geometry::GridMap;

/// Parameters of the power-blurring estimator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerBlurring {
    /// Ambient temperature in kelvin.
    pub ambient: f64,
    /// Lateral spreading of the thermal mask, in grid bins (Gaussian sigma).
    pub sigma_bins: f64,
    /// Temperature rise per watt-per-bin for the die adjacent to the heatsink (top die).
    pub top_die_gain: f64,
    /// Temperature rise per watt-per-bin for dies farther from the heatsink. The bottom die
    /// of a two-die stack sees roughly twice the thermal resistance towards the sink.
    pub bottom_die_gain: f64,
    /// Fraction of the *other* die's blurred power that couples into a die.
    pub coupling: f64,
    /// Strength with which local TSV density suppresses the temperature rise
    /// (`rise *= 1 - tsv_relief * density`, clamped at 0).
    pub tsv_relief: f64,
}

impl PowerBlurring {
    /// Creates an estimator with default mask parameters for the given stack configuration.
    pub fn new(config: &ThermalConfig) -> Self {
        Self {
            ambient: config.ambient,
            sigma_bins: 2.0,
            top_die_gain: 6.0,
            bottom_die_gain: 11.0,
            coupling: 0.45,
            tsv_relief: 0.65,
        }
    }

    /// Sets the Gaussian mask width in bins.
    pub fn with_sigma(mut self, sigma_bins: f64) -> Self {
        self.sigma_bins = sigma_bins.max(0.1);
        self
    }

    /// Sets the inter-die coupling factor.
    pub fn with_coupling(mut self, coupling: f64) -> Self {
        self.coupling = coupling.clamp(0.0, 1.0);
        self
    }

    /// Sets the TSV relief factor.
    pub fn with_tsv_relief(mut self, relief: f64) -> Self {
        self.tsv_relief = relief.clamp(0.0, 1.0);
        self
    }

    /// Estimates the per-die thermal maps for a stack of `power_per_die.len()` dies.
    ///
    /// `tsv_per_interface[i]` is the TSV field between die `i` and `i+1`; pass an empty
    /// slice for single-die stacks.
    ///
    /// # Panics
    ///
    /// Panics if the maps are defined on different grids, or if
    /// `tsv_per_interface.len() + 1 != power_per_die.len()` for multi-die stacks.
    pub fn estimate(
        &self,
        power_per_die: &[GridMap],
        tsv_per_interface: &[TsvField],
    ) -> Vec<GridMap> {
        assert!(!power_per_die.is_empty(), "at least one die required");
        let grid = power_per_die[0].grid();
        assert!(
            power_per_die.iter().all(|m| m.grid() == grid),
            "power maps must share one grid"
        );
        let dies = power_per_die.len();
        if dies > 1 {
            assert_eq!(
                tsv_per_interface.len(),
                dies - 1,
                "one TSV field per inter-die interface required"
            );
            assert!(
                tsv_per_interface.iter().all(|f| f.density().grid() == grid),
                "TSV fields must share the power-map grid"
            );
        }

        let blurred: Vec<GridMap> = power_per_die
            .iter()
            .map(|p| gaussian_blur(p, self.sigma_bins))
            .collect();

        let top = dies - 1;
        (0..dies)
            .map(|d| {
                let gain = if d == top {
                    self.top_die_gain
                } else {
                    self.bottom_die_gain
                };
                let mut values = Vec::with_capacity(grid.bins());
                for b in 0..grid.bins() {
                    let own = gain * blurred[d].values()[b];
                    // Coupling from the neighbouring dies (two-die stacks have one
                    // neighbour; larger stacks accumulate both).
                    let mut coupled = 0.0;
                    if d > 0 {
                        let density = tsv_per_interface[d - 1].density().values()[b];
                        coupled +=
                            self.coupling * (0.5 + density) * gain * blurred[d - 1].values()[b];
                    }
                    if d + 1 < dies {
                        let density = tsv_per_interface[d].density().values()[b];
                        coupled +=
                            self.coupling * (0.5 + density) * gain * blurred[d + 1].values()[b];
                    }
                    // Local TSVs open a vertical escape path that reduces the rise.
                    let relief = if dies > 1 {
                        let density = if d == top {
                            tsv_per_interface[d - 1].density().values()[b]
                        } else {
                            tsv_per_interface[d].density().values()[b]
                        };
                        (1.0 - self.tsv_relief * density).max(0.0)
                    } else {
                        1.0
                    };
                    values.push(self.ambient + (own + coupled) * relief);
                }
                GridMap::from_values(grid, values)
            })
            .collect()
    }

    /// Peak temperature of an estimate produced by [`PowerBlurring::estimate`].
    pub fn peak(maps: &[GridMap]) -> f64 {
        maps.iter()
            .map(|m| m.max())
            .fold(f64::NEG_INFINITY, f64::max)
    }
}

/// Separable Gaussian blur with reflecting boundaries.
fn gaussian_blur(map: &GridMap, sigma: f64) -> GridMap {
    let grid = map.grid();
    let radius = (3.0 * sigma).ceil() as isize;
    let kernel: Vec<f64> = (-radius..=radius)
        .map(|i| (-(i as f64).powi(2) / (2.0 * sigma * sigma)).exp())
        .collect();
    let norm: f64 = kernel.iter().sum();
    let kernel: Vec<f64> = kernel.into_iter().map(|k| k / norm).collect();

    let cols = grid.cols() as isize;
    let rows = grid.rows() as isize;
    let reflect = |i: isize, n: isize| -> usize {
        let mut i = i;
        if i < 0 {
            i = -i - 1;
        }
        if i >= n {
            i = 2 * n - i - 1;
        }
        i.clamp(0, n - 1) as usize
    };

    // Horizontal pass.
    let mut tmp = vec![0.0; grid.bins()];
    for row in 0..rows {
        for col in 0..cols {
            let mut acc = 0.0;
            for (k, w) in kernel.iter().enumerate() {
                let c = reflect(col + k as isize - radius, cols);
                acc += w * map.values()[row as usize * cols as usize + c];
            }
            tmp[row as usize * cols as usize + col as usize] = acc;
        }
    }
    // Vertical pass.
    let mut out = vec![0.0; grid.bins()];
    for row in 0..rows {
        for col in 0..cols {
            let mut acc = 0.0;
            for (k, w) in kernel.iter().enumerate() {
                let r = reflect(row + k as isize - radius, rows);
                acc += w * tmp[r * cols as usize + col as usize];
            }
            out[row as usize * cols as usize + col as usize] = acc;
        }
    }
    GridMap::from_values(grid, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsc3d_geometry::{Grid, Outline, Rect, Stack};

    fn setup() -> (PowerBlurring, Grid) {
        let stack = Stack::two_die(Outline::new(2000.0, 2000.0));
        let grid = Grid::square(stack.outline().rect(), 16);
        (PowerBlurring::new(&ThermalConfig::default_for(stack)), grid)
    }

    #[test]
    fn zero_power_gives_ambient() {
        let (pb, grid) = setup();
        let maps = pb.estimate(
            &[GridMap::zeros(grid), GridMap::zeros(grid)],
            &[TsvField::empty(grid)],
        );
        assert!((PowerBlurring::peak(&maps) - pb.ambient).abs() < 1e-12);
    }

    #[test]
    fn blur_conserves_total_power() {
        let (_, grid) = setup();
        let mut p = GridMap::zeros(grid);
        p.splat_power(&Rect::new(500.0, 500.0, 600.0, 600.0), 3.0);
        let blurred = gaussian_blur(&p, 2.0);
        assert!((blurred.sum() - p.sum()).abs() < 0.15, "blur lost power");
    }

    #[test]
    fn hotspot_location_is_preserved() {
        let (pb, grid) = setup();
        let mut p0 = GridMap::zeros(grid);
        p0.splat_power(&Rect::new(0.0, 0.0, 400.0, 400.0), 2.0);
        let maps = pb.estimate(&[p0, GridMap::zeros(grid)], &[TsvField::empty(grid)]);
        let hottest = maps[0].argmax();
        assert!(hottest.col < 6 && hottest.row < 6);
    }

    #[test]
    fn bottom_die_hotter_for_equal_power() {
        let (pb, grid) = setup();
        let p = GridMap::constant(grid, 0.01);
        let maps = pb.estimate(&[p.clone(), p], &[TsvField::empty(grid)]);
        assert!(maps[0].mean() > maps[1].mean());
    }

    #[test]
    fn tsvs_lower_local_temperature() {
        let (pb, grid) = setup();
        let p = GridMap::constant(grid, 0.01);
        let cool = pb.estimate(&[p.clone(), p.clone()], &[TsvField::uniform(grid, 0.4)]);
        let warm = pb.estimate(&[p.clone(), p], &[TsvField::empty(grid)]);
        assert!(cool[0].mean() < warm[0].mean());
    }

    #[test]
    fn coupling_spreads_heat_across_dies() {
        let (pb, grid) = setup();
        let mut p0 = GridMap::zeros(grid);
        p0.splat_power(&Rect::new(0.0, 0.0, 500.0, 500.0), 2.0);
        let maps = pb.estimate(&[p0, GridMap::zeros(grid)], &[TsvField::empty(grid)]);
        // The un-powered top die still warms above ambient through coupling.
        assert!(maps[1].max() > pb.ambient + 0.01);
    }

    #[test]
    fn builders_clamp_ranges() {
        let (pb, _) = setup();
        assert_eq!(pb.with_coupling(5.0).coupling, 1.0);
        assert_eq!(pb.with_tsv_relief(-1.0).tsv_relief, 0.0);
        assert!(pb.with_sigma(0.0).sigma_bins > 0.0);
    }

    #[test]
    #[should_panic(expected = "interface")]
    fn missing_tsv_field_panics() {
        let (pb, grid) = setup();
        let _ = pb.estimate(&[GridMap::zeros(grid), GridMap::zeros(grid)], &[]);
    }

    #[test]
    fn single_die_stack_needs_no_tsv_field() {
        let (pb, grid) = setup();
        let maps = pb.estimate(&[GridMap::constant(grid, 0.01)], &[]);
        assert_eq!(maps.len(), 1);
        assert!(maps[0].mean() > pb.ambient);
    }
}

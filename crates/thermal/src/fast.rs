//! Fast mask-based thermal estimation ("power blurring").
//!
//! Corblivar's key enabler — and the reason the paper can evaluate thermal leakage inside
//! every floorplanning iteration — is a fast thermal analysis that approximates the thermal
//! map as the convolution of the power map with a pre-characterized impulse response
//! ("thermal mask"). This module implements that estimator for the two-die stack:
//!
//! * each die's power map is blurred with a Gaussian mask whose width models lateral heat
//!   spreading,
//! * dies couple vertically (power in one die raises the temperature of the other, scaled by
//!   a coupling factor that grows with the local TSV density),
//! * the local temperature *rise* is additionally reduced where TSVs provide a good vertical
//!   path towards the heatsink.
//!
//! The estimator is intentionally cheap and only has to be *rank-correlated* with the
//! detailed solver (the paper itself notes the fast analysis "to be inferior to the detailed
//! analysis of HotSpot" and verifies final results with the detailed engine — we do the
//! same, see `tsc3d::flow`).

use crate::{ThermalConfig, TsvField};
use serde::{Deserialize, Serialize};
use tsc3d_geometry::{Grid, GridMap};

/// Parameters of the power-blurring estimator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerBlurring {
    /// Ambient temperature in kelvin.
    pub ambient: f64,
    /// Lateral spreading of the thermal mask, in grid bins (Gaussian sigma).
    pub sigma_bins: f64,
    /// Temperature rise per watt-per-bin for the die adjacent to the heatsink (top die).
    pub top_die_gain: f64,
    /// Temperature rise per watt-per-bin for dies farther from the heatsink. The bottom die
    /// of a two-die stack sees roughly twice the thermal resistance towards the sink.
    pub bottom_die_gain: f64,
    /// Fraction of the *other* die's blurred power that couples into a die.
    pub coupling: f64,
    /// Strength with which local TSV density suppresses the temperature rise
    /// (`rise *= 1 - tsv_relief * density`, clamped at 0).
    pub tsv_relief: f64,
}

impl PowerBlurring {
    /// Creates an estimator with default mask parameters for the given stack configuration.
    pub fn new(config: &ThermalConfig) -> Self {
        Self {
            ambient: config.ambient,
            sigma_bins: 2.0,
            top_die_gain: 6.0,
            bottom_die_gain: 11.0,
            coupling: 0.45,
            tsv_relief: 0.65,
        }
    }

    /// Sets the Gaussian mask width in bins.
    pub fn with_sigma(mut self, sigma_bins: f64) -> Self {
        self.sigma_bins = sigma_bins.max(0.1);
        self
    }

    /// Sets the inter-die coupling factor.
    pub fn with_coupling(mut self, coupling: f64) -> Self {
        self.coupling = coupling.clamp(0.0, 1.0);
        self
    }

    /// Sets the TSV relief factor.
    pub fn with_tsv_relief(mut self, relief: f64) -> Self {
        self.tsv_relief = relief.clamp(0.0, 1.0);
        self
    }

    /// Estimates the per-die thermal maps for a stack of `power_per_die.len()` dies.
    ///
    /// `tsv_per_interface[i]` is the TSV field between die `i` and `i+1`; pass an empty
    /// slice for single-die stacks. Allocates fresh maps (and a transient [`BlurScratch`]);
    /// the floorplanner's hot loop uses [`PowerBlurring::estimate_into`] instead.
    ///
    /// # Panics
    ///
    /// Panics if the maps are defined on different grids, or if
    /// `tsv_per_interface.len() + 1 != power_per_die.len()` for multi-die stacks.
    pub fn estimate(
        &self,
        power_per_die: &[GridMap],
        tsv_per_interface: &[TsvField],
    ) -> Vec<GridMap> {
        let mut scratch = BlurScratch::new();
        let mut out = Vec::new();
        self.estimate_into(power_per_die, tsv_per_interface, &mut scratch, &mut out);
        out
    }

    /// [`PowerBlurring::estimate`] into reusable buffers: the Gaussian kernel, the blurred
    /// intermediate maps and the output maps are all reused across calls, so a steady-state
    /// annealing loop allocates nothing here. Produces values identical to
    /// [`PowerBlurring::estimate`] (same kernel, same traversal order).
    ///
    /// # Panics
    ///
    /// See [`PowerBlurring::estimate`].
    pub fn estimate_into(
        &self,
        power_per_die: &[GridMap],
        tsv_per_interface: &[TsvField],
        scratch: &mut BlurScratch,
        out: &mut Vec<GridMap>,
    ) {
        assert!(!power_per_die.is_empty(), "at least one die required");
        let grid = power_per_die[0].grid();
        assert!(
            power_per_die.iter().all(|m| m.grid() == grid),
            "power maps must share one grid"
        );
        let dies = power_per_die.len();
        if dies > 1 {
            assert_eq!(
                tsv_per_interface.len(),
                dies - 1,
                "one TSV field per inter-die interface required"
            );
            assert!(
                tsv_per_interface.iter().all(|f| f.density().grid() == grid),
                "TSV fields must share the power-map grid"
            );
        }

        scratch.ensure(self.sigma_bins, dies, grid);
        let BlurScratch {
            kernel,
            tmp,
            blurred,
            col_idx,
            row_idx,
            ..
        } = scratch;
        for (d, power) in power_per_die.iter().enumerate() {
            gaussian_blur_tables(power, kernel, col_idx, row_idx, tmp, &mut blurred[d]);
        }
        let blurred = &*blurred;

        if out.len() != dies || out.iter().any(|m| m.grid() != grid) {
            *out = (0..dies).map(|_| GridMap::zeros(grid)).collect();
        }
        let top = dies - 1;
        for (d, map) in out.iter_mut().enumerate() {
            let gain = if d == top {
                self.top_die_gain
            } else {
                self.bottom_die_gain
            };
            let values = map.values_mut();
            for (b, value) in values.iter_mut().enumerate() {
                let own = gain * blurred[d].values()[b];
                // Coupling from the neighbouring dies (two-die stacks have one
                // neighbour; larger stacks accumulate both).
                let mut coupled = 0.0;
                if d > 0 {
                    let density = tsv_per_interface[d - 1].density().values()[b];
                    coupled += self.coupling * (0.5 + density) * gain * blurred[d - 1].values()[b];
                }
                if d + 1 < dies {
                    let density = tsv_per_interface[d].density().values()[b];
                    coupled += self.coupling * (0.5 + density) * gain * blurred[d + 1].values()[b];
                }
                // Local TSVs open a vertical escape path that reduces the rise.
                let relief = if dies > 1 {
                    let density = if d == top {
                        tsv_per_interface[d - 1].density().values()[b]
                    } else {
                        tsv_per_interface[d].density().values()[b]
                    };
                    (1.0 - self.tsv_relief * density).max(0.0)
                } else {
                    1.0
                };
                *value = self.ambient + (own + coupled) * relief;
            }
        }
    }

    /// Peak temperature of an estimate produced by [`PowerBlurring::estimate`].
    pub fn peak(maps: &[GridMap]) -> f64 {
        maps.iter()
            .map(|m| m.max())
            .fold(f64::NEG_INFINITY, f64::max)
    }
}

/// Reusable buffers for [`PowerBlurring::estimate_into`]: the normalized Gaussian kernel
/// (rebuilt only when the sigma changes), the separable-blur intermediate and the per-die
/// blurred maps.
#[derive(Debug, Clone)]
pub struct BlurScratch {
    /// Sigma (in bins) the kernel was built for; NaN before the first use.
    sigma: f64,
    /// Normalized 1D Gaussian taps covering `-radius..=radius`.
    kernel: Vec<f64>,
    /// Horizontal-pass intermediate of the separable blur.
    tmp: Vec<f64>,
    /// Blurred power map per die.
    blurred: Vec<GridMap>,
    /// Pre-resolved reflected source column per (column, tap) pair.
    col_idx: Vec<u32>,
    /// Pre-resolved reflected source row per (row, tap) pair.
    row_idx: Vec<u32>,
    /// Grid the index tables were built for.
    table_grid: Option<Grid>,
}

impl Default for BlurScratch {
    fn default() -> Self {
        Self {
            sigma: f64::NAN,
            kernel: Vec::new(),
            tmp: Vec::new(),
            blurred: Vec::new(),
            col_idx: Vec::new(),
            row_idx: Vec::new(),
            table_grid: None,
        }
    }
}

impl BlurScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuilds the kernel, the reflect-index tables and the buffers as needed.
    fn ensure(&mut self, sigma: f64, dies: usize, grid: Grid) {
        let sigma_changed = self.sigma != sigma;
        if sigma_changed {
            let radius = (3.0 * sigma).ceil() as isize;
            self.kernel = (-radius..=radius)
                .map(|i| (-(i as f64).powi(2) / (2.0 * sigma * sigma)).exp())
                .collect();
            let norm: f64 = self.kernel.iter().sum();
            for k in &mut self.kernel {
                *k /= norm;
            }
            self.sigma = sigma;
        }
        if self.tmp.len() != grid.bins() {
            self.tmp = vec![0.0; grid.bins()];
        }
        if self.blurred.len() != dies || self.blurred.iter().any(|m| m.grid() != grid) {
            self.blurred = (0..dies).map(|_| GridMap::zeros(grid)).collect();
        }
        if sigma_changed || self.table_grid != Some(grid) {
            let radius = (self.kernel.len() / 2) as isize;
            let reflect = |i: isize, n: isize| -> u32 {
                let mut i = i;
                if i < 0 {
                    i = -i - 1;
                }
                if i >= n {
                    i = 2 * n - i - 1;
                }
                i.clamp(0, n - 1) as u32
            };
            let taps = self.kernel.len();
            let cols = grid.cols() as isize;
            let rows = grid.rows() as isize;
            self.col_idx.clear();
            self.col_idx.reserve(grid.cols() * taps);
            for col in 0..cols {
                for k in 0..taps as isize {
                    self.col_idx.push(reflect(col + k - radius, cols));
                }
            }
            self.row_idx.clear();
            self.row_idx.reserve(grid.rows() * taps);
            for row in 0..rows {
                for k in 0..taps as isize {
                    self.row_idx.push(reflect(row + k - radius, rows));
                }
            }
            self.table_grid = Some(grid);
        }
    }
}

/// Separable Gaussian blur with reflecting boundaries (allocating convenience wrapper,
/// kept for the blur-conservation tests).
#[cfg(test)]
fn gaussian_blur(map: &GridMap, sigma: f64) -> GridMap {
    let mut scratch = BlurScratch::new();
    scratch.ensure(sigma, 1, map.grid());
    let mut out = GridMap::zeros(map.grid());
    gaussian_blur_tables(
        map,
        &scratch.kernel,
        &scratch.col_idx,
        &scratch.row_idx,
        &mut scratch.tmp,
        &mut out,
    );
    out
}

/// Separable Gaussian blur with reflecting boundaries, into a caller-provided map.
///
/// `kernel` holds the normalized taps over `-radius..=radius`; `col_idx`/`row_idx` are the
/// pre-resolved reflected source indices per (position, tap) pair (see
/// [`BlurScratch::ensure`]) — resolving them once instead of per sample keeps the inner
/// loop a pure multiply–add over the same operands in the same order.
fn gaussian_blur_tables(
    map: &GridMap,
    kernel: &[f64],
    col_idx: &[u32],
    row_idx: &[u32],
    tmp: &mut [f64],
    out: &mut GridMap,
) {
    let grid = map.grid();
    let cols = grid.cols();
    let rows = grid.rows();
    let taps = kernel.len();

    // Horizontal pass.
    let input = map.values();
    for row in 0..rows {
        let line = &input[row * cols..(row + 1) * cols];
        for col in 0..cols {
            let mut acc = 0.0;
            let idx = &col_idx[col * taps..(col + 1) * taps];
            for (w, &c) in kernel.iter().zip(idx) {
                acc += w * line[c as usize];
            }
            tmp[row * cols + col] = acc;
        }
    }
    // Vertical pass.
    let values = out.values_mut();
    for row in 0..rows {
        let idx = &row_idx[row * taps..(row + 1) * taps];
        for col in 0..cols {
            let mut acc = 0.0;
            for (w, &r) in kernel.iter().zip(idx) {
                acc += w * tmp[r as usize * cols + col];
            }
            values[row * cols + col] = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsc3d_geometry::{Grid, Outline, Rect, Stack};

    fn setup() -> (PowerBlurring, Grid) {
        let stack = Stack::two_die(Outline::new(2000.0, 2000.0));
        let grid = Grid::square(stack.outline().rect(), 16);
        (PowerBlurring::new(&ThermalConfig::default_for(stack)), grid)
    }

    #[test]
    fn estimate_into_matches_estimate_and_reuses_buffers() {
        let (pb, grid) = setup();
        let mut p0 = GridMap::zeros(grid);
        p0.splat_power(&Rect::new(200.0, 300.0, 700.0, 500.0), 2.5);
        let power = vec![p0, GridMap::constant(grid, 0.004)];
        let tsvs = vec![TsvField::uniform(grid, 0.1)];
        let reference = pb.estimate(&power, &tsvs);
        let mut scratch = BlurScratch::new();
        let mut out = Vec::new();
        for _ in 0..3 {
            pb.estimate_into(&power, &tsvs, &mut scratch, &mut out);
            assert_eq!(out, reference);
        }
    }

    #[test]
    fn zero_power_gives_ambient() {
        let (pb, grid) = setup();
        let maps = pb.estimate(
            &[GridMap::zeros(grid), GridMap::zeros(grid)],
            &[TsvField::empty(grid)],
        );
        assert!((PowerBlurring::peak(&maps) - pb.ambient).abs() < 1e-12);
    }

    #[test]
    fn blur_conserves_total_power() {
        let (_, grid) = setup();
        let mut p = GridMap::zeros(grid);
        p.splat_power(&Rect::new(500.0, 500.0, 600.0, 600.0), 3.0);
        let blurred = gaussian_blur(&p, 2.0);
        assert!((blurred.sum() - p.sum()).abs() < 0.15, "blur lost power");
    }

    #[test]
    fn hotspot_location_is_preserved() {
        let (pb, grid) = setup();
        let mut p0 = GridMap::zeros(grid);
        p0.splat_power(&Rect::new(0.0, 0.0, 400.0, 400.0), 2.0);
        let maps = pb.estimate(&[p0, GridMap::zeros(grid)], &[TsvField::empty(grid)]);
        let hottest = maps[0].argmax();
        assert!(hottest.col < 6 && hottest.row < 6);
    }

    #[test]
    fn bottom_die_hotter_for_equal_power() {
        let (pb, grid) = setup();
        let p = GridMap::constant(grid, 0.01);
        let maps = pb.estimate(&[p.clone(), p], &[TsvField::empty(grid)]);
        assert!(maps[0].mean() > maps[1].mean());
    }

    #[test]
    fn tsvs_lower_local_temperature() {
        let (pb, grid) = setup();
        let p = GridMap::constant(grid, 0.01);
        let cool = pb.estimate(&[p.clone(), p.clone()], &[TsvField::uniform(grid, 0.4)]);
        let warm = pb.estimate(&[p.clone(), p], &[TsvField::empty(grid)]);
        assert!(cool[0].mean() < warm[0].mean());
    }

    #[test]
    fn coupling_spreads_heat_across_dies() {
        let (pb, grid) = setup();
        let mut p0 = GridMap::zeros(grid);
        p0.splat_power(&Rect::new(0.0, 0.0, 500.0, 500.0), 2.0);
        let maps = pb.estimate(&[p0, GridMap::zeros(grid)], &[TsvField::empty(grid)]);
        // The un-powered top die still warms above ambient through coupling.
        assert!(maps[1].max() > pb.ambient + 0.01);
    }

    #[test]
    fn builders_clamp_ranges() {
        let (pb, _) = setup();
        assert_eq!(pb.with_coupling(5.0).coupling, 1.0);
        assert_eq!(pb.with_tsv_relief(-1.0).tsv_relief, 0.0);
        assert!(pb.with_sigma(0.0).sigma_bins > 0.0);
    }

    #[test]
    #[should_panic(expected = "interface")]
    fn missing_tsv_field_panics() {
        let (pb, grid) = setup();
        let _ = pb.estimate(&[GridMap::zeros(grid), GridMap::zeros(grid)], &[]);
    }

    #[test]
    fn single_die_stack_needs_no_tsv_field() {
        let (pb, grid) = setup();
        let maps = pb.estimate(&[GridMap::constant(grid, 0.01)], &[]);
        assert_eq!(maps.len(), 1);
        assert!(maps[0].mean() > pb.ambient);
    }
}

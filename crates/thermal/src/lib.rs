//! Thermal analysis of TSV-based 3D ICs.
//!
//! The paper relies on two thermal engines:
//!
//! 1. **HotSpot 6.0** for detailed analysis — used to *verify* the power–temperature
//!    correlation after floorplanning and to drive the activity-sampling post-processing.
//! 2. **Corblivar's fast thermal analysis** (power blurring) — used *inside* the
//!    floorplanning loop where thousands of evaluations are needed.
//!
//! Neither tool is available as a Rust library, so this crate implements both abstractions
//! from scratch:
//!
//! * [`ThermalConfig`] + [`StackLayer`] describe the physical stack (active silicon layers,
//!   bond/BEOL layers whose vertical conductivity depends on the local TSV density, TIM,
//!   heat spreader / heatsink boundary and the weaker secondary heat path into the package).
//! * [`TsvField`] describes signal-TSV and dummy-TSV distributions per inter-die interface,
//!   including the regular/irregular/island patterns explored in Section 3 of the paper.
//! * [`SteadyStateSolver`] is a finite-volume solver for the steady-state heat equation on
//!   the layered grid (successive over-relaxation).
//! * [`fast::PowerBlurring`] is the mask-based estimator used inside optimization loops.
//! * [`transient`] provides a lumped transient model reproducing the time-scale gap between
//!   power and temperature (Figure 1 of the paper), and [`TransientSolver`] — the spatial
//!   transient engine stepping the full solver grid forward in time, the basis of the
//!   trace-level side-channel simulations in `tsc3d-sca`.
//!
//! # Example
//!
//! ```
//! use tsc3d_geometry::{Grid, GridMap, Outline, Rect, Stack};
//! use tsc3d_thermal::{ThermalConfig, SteadyStateSolver, TsvField};
//!
//! let stack = Stack::two_die(Outline::new(2000.0, 2000.0));
//! let grid = Grid::square(stack.outline().rect(), 16);
//! let config = ThermalConfig::default_for(stack);
//! let mut power = vec![GridMap::zeros(grid), GridMap::zeros(grid)];
//! power[0].splat_power(&Rect::new(0.0, 0.0, 1000.0, 1000.0), 2.0);
//! let tsvs = TsvField::uniform(grid, 0.05);
//! let solver = SteadyStateSolver::new(config);
//! let result = solver.solve(&power, &[tsvs]).unwrap();
//! assert!(result.peak_temperature() > result.config().ambient);
//! ```

#![warn(missing_docs)]

pub mod batch;
mod config;
pub mod fast;
mod solver;
pub mod transient;
mod tsv;

pub use batch::{BatchTransientSolver, BatchTransientState};
pub use config::{MaterialProperties, StackLayer, StackLayerKind, ThermalConfig};
pub use solver::{SolveError, SteadyStateSolver, ThermalResult};
pub use transient::{LumpedTransient, TransientSample, TransientSolver, TransientState};
pub use tsv::{TsvField, TsvPattern, TsvSite, TsvTechnology};

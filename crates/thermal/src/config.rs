//! Physical description of the 3D stack: materials, layers and boundary conditions.

use serde::{Deserialize, Serialize};
use tsc3d_geometry::Stack;

/// Bulk material properties used by the thermal solvers.
///
/// Conductivity is in W/(m·K), volumetric heat capacity in J/(m³·K). Values follow the
/// defaults shipped with HotSpot / Corblivar for the 3D-IC configuration used in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MaterialProperties {
    /// Thermal conductivity in W/(m·K).
    pub conductivity: f64,
    /// Volumetric heat capacity in J/(m³·K).
    pub volumetric_heat_capacity: f64,
}

impl MaterialProperties {
    /// Creates a material from conductivity and volumetric heat capacity.
    pub const fn new(conductivity: f64, volumetric_heat_capacity: f64) -> Self {
        Self {
            conductivity,
            volumetric_heat_capacity,
        }
    }

    /// Bulk silicon.
    pub const SILICON: MaterialProperties = MaterialProperties::new(150.0, 1.75e6);
    /// Copper (TSV fill, heat spreader).
    pub const COPPER: MaterialProperties = MaterialProperties::new(400.0, 3.55e6);
    /// Back-end-of-line / bonding layer (oxide + wiring average).
    pub const BEOL: MaterialProperties = MaterialProperties::new(2.25, 2.0e6);
    /// Thermal interface material.
    pub const TIM: MaterialProperties = MaterialProperties::new(4.0, 4.0e6);
    /// Underfill / micro-bump layer between stacked dies.
    pub const BOND: MaterialProperties = MaterialProperties::new(1.5, 2.2e6);
}

/// The role a layer plays in the stack; used to decide where power is injected and where
/// TSV fields modulate the vertical conductivity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StackLayerKind {
    /// Active silicon of a die; power maps are injected here. The payload is the die index
    /// (0 = bottom die).
    ActiveSilicon {
        /// Index of the die this layer belongs to (0 = bottom).
        die: usize,
    },
    /// Bond/BEOL layer between die `lower` and die `lower + 1`; TSVs crossing this interface
    /// raise its effective vertical conductivity. The payload is the interface index
    /// (0 = between die 0 and die 1).
    Bond {
        /// Index of the inter-die interface (0 = between the two bottom-most dies).
        interface: usize,
    },
    /// Thermal interface material between the top die and the heat spreader.
    Tim,
    /// Passive bulk silicon (thinned substrate) of a die.
    BulkSilicon,
}

/// One layer of the thermal stack (bottom-to-top ordering).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StackLayer {
    /// What the layer represents.
    pub kind: StackLayerKind,
    /// Layer thickness in metres.
    pub thickness: f64,
    /// Material of the layer.
    pub material: MaterialProperties,
}

impl StackLayer {
    /// Creates a layer.
    pub fn new(kind: StackLayerKind, thickness: f64, material: MaterialProperties) -> Self {
        Self {
            kind,
            thickness,
            material,
        }
    }
}

/// Full thermal configuration: layer stack plus boundary conditions.
///
/// The primary heat path goes upwards through the TIM into the heat spreader and heatsink
/// (modelled as an area-specific conductance to ambient above the top layer). The secondary
/// path conducts a smaller amount of heat downwards through the package into the board
/// (area-specific conductance below the bottom layer), as described in Section 3.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThermalConfig {
    /// The 3D stack being analysed (die count + outline).
    pub stack: Stack,
    /// Layers from bottom (package side) to top (heatsink side).
    pub layers: Vec<StackLayer>,
    /// Ambient temperature in kelvin.
    pub ambient: f64,
    /// Area-specific conductance of the primary path (TIM top → spreader → sink → ambient),
    /// in W/(m²·K).
    pub heatsink_conductance: f64,
    /// Area-specific conductance of the secondary path (bottom layer → package → ambient),
    /// in W/(m²·K). Much smaller than the heatsink conductance.
    pub secondary_conductance: f64,
}

impl ThermalConfig {
    /// Ambient temperature used throughout the paper (293 K).
    pub const DEFAULT_AMBIENT: f64 = 293.0;

    /// Builds the default two-path configuration for a face-to-back stack of `stack.dies()`
    /// dies: for every die an active silicon layer, between consecutive dies a bond/BEOL
    /// layer (where the TSVs live), and a TIM layer below the heatsink.
    ///
    /// Layer thicknesses follow the Corblivar/HotSpot defaults for TSV-based stacking:
    /// 100 µm thinned dies, 20 µm bond/BEOL, 50 µm TIM.
    pub fn default_for(stack: Stack) -> Self {
        let mut layers = Vec::new();
        for die in 0..stack.dies() {
            layers.push(StackLayer::new(
                StackLayerKind::ActiveSilicon { die },
                100e-6,
                MaterialProperties::SILICON,
            ));
            if die + 1 < stack.dies() {
                layers.push(StackLayer::new(
                    StackLayerKind::Bond { interface: die },
                    20e-6,
                    MaterialProperties::BOND,
                ));
            }
        }
        layers.push(StackLayer::new(
            StackLayerKind::Tim,
            50e-6,
            MaterialProperties::TIM,
        ));
        Self {
            stack,
            layers,
            ambient: Self::DEFAULT_AMBIENT,
            heatsink_conductance: 2.0e4,
            secondary_conductance: 4.0e2,
        }
    }

    /// Number of layers in the stack.
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// Index of the active-silicon layer of die `die`, if present.
    pub fn active_layer_of(&self, die: usize) -> Option<usize> {
        self.layers
            .iter()
            .position(|l| l.kind == StackLayerKind::ActiveSilicon { die })
    }

    /// Index of the bond layer of inter-die interface `interface`, if present.
    pub fn bond_layer_of(&self, interface: usize) -> Option<usize> {
        self.layers
            .iter()
            .position(|l| l.kind == StackLayerKind::Bond { interface })
    }

    /// Number of inter-die interfaces (dies − 1).
    pub fn interfaces(&self) -> usize {
        self.stack.dies().saturating_sub(1)
    }

    /// Returns a copy with a different ambient temperature.
    pub fn with_ambient(mut self, ambient: f64) -> Self {
        self.ambient = ambient;
        self
    }

    /// Returns a copy with a different heatsink conductance (W/(m²·K)).
    pub fn with_heatsink_conductance(mut self, conductance: f64) -> Self {
        self.heatsink_conductance = conductance;
        self
    }

    /// Returns a copy with a different secondary-path conductance (W/(m²·K)).
    pub fn with_secondary_conductance(mut self, conductance: f64) -> Self {
        self.secondary_conductance = conductance;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsc3d_geometry::Outline;

    #[test]
    fn default_two_die_stack_layers() {
        let cfg = ThermalConfig::default_for(Stack::two_die(Outline::new(1000.0, 1000.0)));
        // active(0), bond(0), active(1), TIM
        assert_eq!(cfg.layer_count(), 4);
        assert_eq!(cfg.active_layer_of(0), Some(0));
        assert_eq!(cfg.bond_layer_of(0), Some(1));
        assert_eq!(cfg.active_layer_of(1), Some(2));
        assert_eq!(cfg.active_layer_of(2), None);
        assert_eq!(cfg.interfaces(), 1);
        assert_eq!(cfg.layers[3].kind, StackLayerKind::Tim);
        assert_eq!(cfg.ambient, 293.0);
    }

    #[test]
    fn four_die_stack_has_three_interfaces() {
        let cfg = ThermalConfig::default_for(Stack::new(4, Outline::new(1000.0, 1000.0)));
        assert_eq!(cfg.interfaces(), 3);
        assert_eq!(cfg.layer_count(), 4 + 3 + 1);
        assert!(cfg.bond_layer_of(2).is_some());
        assert!(cfg.bond_layer_of(3).is_none());
    }

    #[test]
    fn builders_override_boundaries() {
        let cfg = ThermalConfig::default_for(Stack::two_die(Outline::new(10.0, 10.0)))
            .with_ambient(300.0)
            .with_heatsink_conductance(1.0)
            .with_secondary_conductance(0.5);
        assert_eq!(cfg.ambient, 300.0);
        assert_eq!(cfg.heatsink_conductance, 1.0);
        assert_eq!(cfg.secondary_conductance, 0.5);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn material_constants_are_sensible() {
        assert!(MaterialProperties::COPPER.conductivity > MaterialProperties::SILICON.conductivity);
        assert!(MaterialProperties::SILICON.conductivity > MaterialProperties::BEOL.conductivity);
        assert!(MaterialProperties::BOND.conductivity < MaterialProperties::TIM.conductivity);
    }
}

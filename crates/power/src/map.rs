//! Rasterization of placed block powers into power-density maps.

use tsc3d_geometry::{Grid, GridMap, Rect};

/// Builds a power map from placed blocks.
///
/// Each entry of `placed` is the footprint of a block on the die and its (voltage-scaled,
/// possibly activity-sampled) power in watts. The result holds watts per bin; divide by
/// [`Grid::bin_area`] to obtain W/µm² densities if needed.
///
/// ```
/// use tsc3d_geometry::{Grid, Rect};
/// use tsc3d_power::power_map_from_rects;
///
/// let grid = Grid::square(Rect::from_size(100.0, 100.0), 10);
/// let map = power_map_from_rects(grid, &[(Rect::new(0.0, 0.0, 50.0, 50.0), 2.0)]);
/// assert!((map.sum() - 2.0).abs() < 1e-9);
/// ```
pub fn power_map_from_rects(grid: Grid, placed: &[(Rect, f64)]) -> GridMap {
    let mut map = GridMap::zeros(grid);
    for (rect, watts) in placed {
        map.splat_power(rect, *watts);
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_power_is_conserved() {
        let grid = Grid::square(Rect::from_size(100.0, 100.0), 8);
        let placed = vec![
            (Rect::new(0.0, 0.0, 30.0, 30.0), 1.5),
            (Rect::new(50.0, 50.0, 40.0, 40.0), 2.5),
        ];
        let map = power_map_from_rects(grid, &placed);
        assert!((map.sum() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn overlapping_blocks_accumulate() {
        let grid = Grid::square(Rect::from_size(100.0, 100.0), 4);
        let placed = vec![
            (Rect::new(0.0, 0.0, 100.0, 100.0), 1.0),
            (Rect::new(0.0, 0.0, 100.0, 100.0), 1.0),
        ];
        let map = power_map_from_rects(grid, &placed);
        assert!((map.sum() - 2.0).abs() < 1e-9);
        assert!((map.max() - map.min()).abs() < 1e-12);
    }

    #[test]
    fn empty_input_gives_zero_map() {
        let grid = Grid::square(Rect::from_size(10.0, 10.0), 4);
        assert_eq!(power_map_from_rects(grid, &[]).sum(), 0.0);
    }
}

//! Gaussian activity sampling (Section 6.2 of the paper).

use rand::Rng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use tsc3d_netlist::Design;

/// Samples per-module power values from Gaussian distributions.
///
/// "To impersonate an attacker triggering various activity patterns by alternating the
/// inputs at runtime, we model the power profiles of all modules as Gaussian distributions
/// [...] with the module's nominal power value as mean and a standard deviation of 10 %."
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActivitySampler {
    means: Vec<f64>,
    relative_sigma: f64,
}

impl ActivitySampler {
    /// Creates a sampler with the paper's default relative standard deviation of 10 %.
    pub fn paper_default(design: &Design) -> Self {
        Self::new(design, 0.10)
    }

    /// Creates a sampler with an explicit relative standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `relative_sigma` is negative.
    pub fn new(design: &Design, relative_sigma: f64) -> Self {
        Self::with_means(
            design.blocks().iter().map(|b| b.power()).collect(),
            relative_sigma,
        )
    }

    /// Creates a sampler around explicit per-module means (e.g. the voltage-scaled powers
    /// of a finished flow, which `tsc3d-sca` uses as the background-traffic baseline).
    ///
    /// # Panics
    ///
    /// Panics if `relative_sigma` is negative.
    pub fn with_means(means: Vec<f64>, relative_sigma: f64) -> Self {
        assert!(relative_sigma >= 0.0, "sigma must be non-negative");
        Self {
            means,
            relative_sigma,
        }
    }

    /// Number of modules the sampler covers.
    pub fn len(&self) -> usize {
        self.means.len()
    }

    /// Returns `true` when the design has no modules (cannot happen for validated designs).
    pub fn is_empty(&self) -> bool {
        self.means.is_empty()
    }

    /// The nominal (mean) power of every module in watts.
    pub fn nominal(&self) -> &[f64] {
        &self.means
    }

    /// Draws one activity set: a power value per module, clamped at zero.
    pub fn sample(&self, rng: &mut ChaCha8Rng) -> Vec<f64> {
        self.means
            .iter()
            .map(|&mean| {
                let sigma = mean * self.relative_sigma;
                (mean + sigma * standard_normal(rng)).max(0.0)
            })
            .collect()
    }

    /// Draws `count` activity sets.
    pub fn sample_many(&self, rng: &mut ChaCha8Rng, count: usize) -> Vec<Vec<f64>> {
        (0..count).map(|_| self.sample(rng)).collect()
    }
}

/// Standard normal variate via the Box–Muller transform (keeps the dependency surface to
/// plain `rand`).
fn standard_normal(rng: &mut ChaCha8Rng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use tsc3d_geometry::Outline;
    use tsc3d_netlist::{Block, BlockShape};

    fn design() -> Design {
        let blocks = vec![
            Block::new("a", BlockShape::soft(100.0), 1.0),
            Block::new("b", BlockShape::soft(100.0), 2.0),
            Block::new("c", BlockShape::soft(100.0), 0.0),
        ];
        Design::new("d", blocks, vec![], vec![], Outline::new(100.0, 100.0)).unwrap()
    }

    #[test]
    fn sample_statistics_match_configuration() {
        let d = design();
        let sampler = ActivitySampler::paper_default(&d);
        assert_eq!(sampler.len(), 3);
        assert!(!sampler.is_empty());
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let samples = sampler.sample_many(&mut rng, 2_000);
        let mean_b: f64 = samples.iter().map(|s| s[1]).sum::<f64>() / samples.len() as f64;
        let var_b: f64 =
            samples.iter().map(|s| (s[1] - mean_b).powi(2)).sum::<f64>() / samples.len() as f64;
        // Mean ≈ 2.0 W, sigma ≈ 0.2 W.
        assert!((mean_b - 2.0).abs() < 0.03, "mean {mean_b}");
        assert!((var_b.sqrt() - 0.2).abs() < 0.03, "sigma {}", var_b.sqrt());
    }

    #[test]
    fn zero_power_module_stays_at_zero() {
        let d = design();
        let sampler = ActivitySampler::paper_default(&d);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for s in sampler.sample_many(&mut rng, 100) {
            assert_eq!(s[2], 0.0);
            assert!(s[0] >= 0.0 && s[1] >= 0.0);
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let d = design();
        let sampler = ActivitySampler::paper_default(&d);
        let a = sampler.sample(&mut ChaCha8Rng::seed_from_u64(3));
        let b = sampler.sample(&mut ChaCha8Rng::seed_from_u64(3));
        let c = sampler.sample(&mut ChaCha8Rng::seed_from_u64(4));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn zero_sigma_reproduces_nominal_power() {
        let d = design();
        let sampler = ActivitySampler::new(&d, 0.0);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        assert_eq!(sampler.sample(&mut rng), sampler.nominal().to_vec());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_sigma_rejected() {
        let _ = ActivitySampler::new(&design(), -0.1);
    }
}

//! Floorplanning-centric voltage assignment (Section 6.1 of the paper).

use crate::{VoltageAssignment, VoltageVolume};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use tsc3d_netlist::{BlockId, Design};
use tsc3d_timing::{VoltageLevel, VoltageScaling};

/// Optimization objective of the voltage-volume selection.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AssignmentObjective {
    /// Power-aware floorplanning (setup (i) of the paper): minimize overall power and the
    /// number of voltage volumes — every volume runs at the lowest commonly feasible voltage
    /// and volumes are grown as large as timing feasibility allows.
    PowerAware,
    /// TSC-aware floorplanning (setup (ii)): additionally minimize the standard deviation of
    /// power densities within volumes and across volumes, so the resulting power
    /// distribution is locally uniform with small global gradients.
    TscAware {
        /// Maximum allowed relative spread of power densities within one volume
        /// (`max density / min density`); candidate blocks exceeding it start a new volume.
        density_spread_limit: f64,
    },
}

impl AssignmentObjective {
    /// The default TSC-aware objective used in the experiments (spread limit 2.5×).
    pub fn tsc_default() -> Self {
        AssignmentObjective::TscAware {
            density_spread_limit: 2.5,
        }
    }
}

/// Reusable buffers for [`VoltageAssigner::assign_with`], the allocation-lean assignment
/// used inside the floorplanner's hot loop.
///
/// Feasible voltage sets are held as bitmasks over the scaling-table indices, and the
/// power-sorted visit order (a function of the design alone) is computed once and reused.
/// One scratch must only be used with a single design (the visit order is cached by block
/// count); create a fresh scratch per design.
#[derive(Debug, Clone, Default)]
pub struct AssignScratch {
    /// Blocks in decreasing-power order; rebuilt when the block count changes.
    order: Vec<usize>,
    /// Power density per block (`power / area`); rebuilt with `order`.
    densities: Vec<f64>,
    /// Feasible-set bitmask per block (bit `i` = scaling-table level `i`).
    feasible: Vec<u32>,
    /// Per-block visited flags of the current assignment.
    assigned: Vec<bool>,
    /// BFS frontier.
    queue: VecDeque<usize>,
}

impl AssignScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// The breadth-first voltage-volume construction of the paper.
///
/// "Voltage volumes are constructed by considering each module individually as the root for
/// a multi-branch tree representation of voltage volumes. Each tree/volume is recursively
/// built up via a breadth-first search across the respectively adjacent modules. During this
/// merging procedure, we update the resulting set of feasible voltages."
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VoltageAssigner {
    scaling: VoltageScaling,
    objective: AssignmentObjective,
}

impl VoltageAssigner {
    /// Creates an assigner with the paper's 90 nm scaling table.
    pub fn new(objective: AssignmentObjective) -> Self {
        Self {
            scaling: VoltageScaling::paper_90nm(),
            objective,
        }
    }

    /// Creates an assigner with a custom scaling table.
    pub fn with_scaling(objective: AssignmentObjective, scaling: VoltageScaling) -> Self {
        Self { scaling, objective }
    }

    /// The scaling table in use.
    pub fn scaling(&self) -> &VoltageScaling {
        &self.scaling
    }

    /// The objective in use.
    pub fn objective(&self) -> AssignmentObjective {
        self.objective
    }

    /// Per-block feasible voltage sets given nominal delays and timing slacks (both in ns).
    ///
    /// A voltage is feasible for a block if scaling the block's intrinsic delay by the
    /// voltage's delay factor consumes no more than the block's slack:
    /// `delay * factor <= delay + slack`. The nominal voltage (1.0 V) is always feasible by
    /// construction since its factor is 1.
    pub fn feasible_sets(&self, nominal_delays: &[f64], slacks: &[f64]) -> Vec<Vec<VoltageLevel>> {
        nominal_delays
            .iter()
            .zip(slacks)
            .map(|(&delay, &slack)| {
                let budget = delay + slack;
                let mut set = self.scaling.feasible_set(delay, budget + 1e-12);
                if set.is_empty() {
                    // Timing is already violated at nominal voltage; boost to the fastest
                    // level so the assignment stays legal (the floorplanner's delay cost
                    // term penalizes this separately).
                    set = vec![*self.scaling.levels().last().expect("non-empty table")];
                }
                set
            })
            .collect()
    }

    /// Builds a complete voltage assignment.
    ///
    /// * `design` — the netlist (provides block powers and areas),
    /// * `adjacency[b]` — blocks spatially adjacent to block `b` in the current floorplan
    ///   (the floorplanner derives this from abutting/overlapping footprints, including
    ///   across dies),
    /// * `nominal_delays[b]` / `slacks[b]` — intrinsic delay and timing slack per block.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths do not match the design's block count.
    pub fn assign(
        &self,
        design: &Design,
        adjacency: &[Vec<BlockId>],
        nominal_delays: &[f64],
        slacks: &[f64],
    ) -> VoltageAssignment {
        let n = design.blocks().len();
        assert_eq!(adjacency.len(), n, "adjacency list per block required");
        assert_eq!(nominal_delays.len(), n, "nominal delay per block required");
        assert_eq!(slacks.len(), n, "slack per block required");

        let feasible = self.feasible_sets(nominal_delays, slacks);
        let mut assigned = vec![false; n];
        let mut volumes = Vec::new();

        // Visit blocks in decreasing-power order so high-power modules become volume roots;
        // this mirrors the paper's per-module tree construction while keeping the procedure
        // deterministic.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            design.blocks()[b]
                .power()
                .partial_cmp(&design.blocks()[a].power())
                .unwrap_or(std::cmp::Ordering::Equal)
        });

        for &root in &order {
            if assigned[root] {
                continue;
            }
            let mut members = vec![BlockId(root)];
            let mut common = feasible[root].clone();
            assigned[root] = true;

            let root_density = density(design, root);
            let mut min_density = root_density;
            let mut max_density = root_density;

            let mut queue: VecDeque<usize> = VecDeque::new();
            queue.push_back(root);
            while let Some(current) = queue.pop_front() {
                for &neighbor in &adjacency[current] {
                    let b = neighbor.index();
                    if assigned[b] {
                        continue;
                    }
                    // Merging keeps the volume only if a commonly feasible voltage remains.
                    let merged: Vec<VoltageLevel> = common
                        .iter()
                        .copied()
                        .filter(|l| feasible[b].contains(l))
                        .collect();
                    if merged.is_empty() {
                        continue;
                    }
                    // Power-aware volumes must never force a module to a higher voltage than
                    // it needs on its own — merging has to be power-neutral.
                    if self.objective == AssignmentObjective::PowerAware
                        && merged.first() != feasible[b].first()
                    {
                        continue;
                    }
                    // The TSC-aware objective additionally demands locally uniform power
                    // densities within the volume.
                    if let AssignmentObjective::TscAware {
                        density_spread_limit,
                    } = self.objective
                    {
                        let d = density(design, b);
                        let new_min = min_density.min(d);
                        let new_max = max_density.max(d);
                        if new_min > 0.0 && new_max / new_min > density_spread_limit {
                            continue;
                        }
                        min_density = new_min;
                        max_density = new_max;
                    }
                    common = merged;
                    assigned[b] = true;
                    members.push(neighbor);
                    queue.push_back(b);
                }
            }

            let level = self.select_level(design, &members, &common);
            volumes.push(VoltageVolume::new(members, common, level));
        }

        VoltageAssignment::new(n, volumes)
    }

    /// [`VoltageAssigner::assign`] over reusable buffers, with feasible voltage sets held
    /// as bitmasks over the scaling-table indices.
    ///
    /// Performs the same visits in the same order with the same merge decisions as the
    /// vector-based construction — set intersection becomes `&`, the "lowest feasible
    /// level" check becomes a trailing-zeros comparison — so the produced assignment is
    /// identical. This is the path the floorplanner's evaluation tier calls thousands of
    /// times per annealing run.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths do not match the design's block count, or if the
    /// scaling table holds more than 32 levels.
    pub fn assign_with(
        &self,
        design: &Design,
        adjacency: &[Vec<BlockId>],
        nominal_delays: &[f64],
        slacks: &[f64],
        scratch: &mut AssignScratch,
    ) -> VoltageAssignment {
        let n = design.blocks().len();
        assert_eq!(adjacency.len(), n, "adjacency list per block required");
        assert_eq!(nominal_delays.len(), n, "nominal delay per block required");
        assert_eq!(slacks.len(), n, "slack per block required");
        let table = self.scaling.entries();
        assert!(
            table.len() <= u32::BITS as usize,
            "bitmask assignment supports at most 32 voltage levels"
        );

        // Feasible sets as bitmasks, mirroring `feasible_sets`: a level is feasible when
        // the scaled delay fits the block's budget; an empty set falls back to the fastest
        // level.
        scratch.feasible.clear();
        scratch
            .feasible
            .extend(nominal_delays.iter().zip(slacks).map(|(&delay, &slack)| {
                let budget = delay + slack + 1e-12;
                let mut mask = 0u32;
                for (i, (_, _, delay_factor)) in table.iter().enumerate() {
                    if delay * delay_factor <= budget {
                        mask |= 1 << i;
                    }
                }
                if mask == 0 {
                    mask = 1 << (table.len() - 1);
                }
                mask
            }));

        // Visit blocks in decreasing-power order (a property of the design alone; cached,
        // as are the per-block power densities the TSC-aware merge criterion reads).
        if scratch.order.len() != n {
            scratch.order = (0..n).collect();
            scratch.order.sort_by(|&a, &b| {
                design.blocks()[b]
                    .power()
                    .partial_cmp(&design.blocks()[a].power())
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            scratch.densities = (0..n).map(|b| density(design, b)).collect();
        }

        scratch.assigned.clear();
        scratch.assigned.resize(n, false);
        scratch.queue.clear();
        let mut volumes = Vec::new();

        for idx in 0..n {
            let root = scratch.order[idx];
            if scratch.assigned[root] {
                continue;
            }
            let mut members = vec![BlockId(root)];
            let mut common = scratch.feasible[root];
            scratch.assigned[root] = true;

            let root_density = scratch.densities[root];
            let mut min_density = root_density;
            let mut max_density = root_density;

            scratch.queue.push_back(root);
            while let Some(current) = scratch.queue.pop_front() {
                for &neighbor in &adjacency[current] {
                    let b = neighbor.index();
                    if scratch.assigned[b] {
                        continue;
                    }
                    // Merging keeps the volume only if a commonly feasible voltage remains.
                    let merged = common & scratch.feasible[b];
                    if merged == 0 {
                        continue;
                    }
                    // Power-aware volumes must never force a module to a higher voltage than
                    // it needs on its own — merging has to be power-neutral.
                    if self.objective == AssignmentObjective::PowerAware
                        && merged.trailing_zeros() != scratch.feasible[b].trailing_zeros()
                    {
                        continue;
                    }
                    // The TSC-aware objective additionally demands locally uniform power
                    // densities within the volume.
                    if let AssignmentObjective::TscAware {
                        density_spread_limit,
                    } = self.objective
                    {
                        let d = scratch.densities[b];
                        let new_min = min_density.min(d);
                        let new_max = max_density.max(d);
                        if new_min > 0.0 && new_max / new_min > density_spread_limit {
                            continue;
                        }
                        min_density = new_min;
                        max_density = new_max;
                    }
                    common = merged;
                    scratch.assigned[b] = true;
                    members.push(neighbor);
                    scratch.queue.push_back(b);
                }
            }

            let feasible: Vec<VoltageLevel> = table
                .iter()
                .enumerate()
                .filter(|(i, _)| common & (1 << i) != 0)
                .map(|(_, (level, _, _))| *level)
                .collect();
            let level = self.select_level(design, &members, &feasible);
            volumes.push(VoltageVolume::new(members, feasible, level));
        }

        VoltageAssignment::new(n, volumes)
    }

    /// Selects the operating voltage of one volume according to the objective.
    fn select_level(
        &self,
        design: &Design,
        members: &[BlockId],
        feasible: &[VoltageLevel],
    ) -> VoltageLevel {
        match self.objective {
            // Power-aware: the lowest feasible voltage minimizes power outright.
            AssignmentObjective::PowerAware => *feasible.first().expect("non-empty"),
            // TSC-aware: pick the feasible voltage whose scaled power density is closest to
            // the design-wide average density, which flattens gradients across volumes.
            AssignmentObjective::TscAware { .. } => {
                let design_density = design.total_power() / design.total_block_area();
                let volume_area: f64 = members.iter().map(|b| design.block(*b).area()).sum();
                let volume_power: f64 = members.iter().map(|b| design.block(*b).power()).sum();
                *feasible
                    .iter()
                    .min_by(|&&a, &&b| {
                        let da = (volume_power * self.scaling.power_factor(a) / volume_area
                            - design_density)
                            .abs();
                        let db = (volume_power * self.scaling.power_factor(b) / volume_area
                            - design_density)
                            .abs();
                        da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .expect("non-empty")
            }
        }
    }
}

fn density(design: &Design, block: usize) -> f64 {
    let b = &design.blocks()[block];
    b.power() / b.area()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsc3d_geometry::Outline;
    use tsc3d_netlist::{Block, BlockShape, Net, PinRef};

    /// Four blocks in a chain; block powers chosen so that densities differ strongly.
    fn design() -> Design {
        let blocks = vec![
            Block::new("a", BlockShape::soft(1_000_000.0), 1.0),
            Block::new("b", BlockShape::soft(1_000_000.0), 1.1),
            Block::new("c", BlockShape::soft(1_000_000.0), 8.0),
            Block::new("d", BlockShape::soft(1_000_000.0), 1.05),
        ];
        let nets = vec![Net::new(
            "all",
            vec![
                PinRef::Block(BlockId(0)),
                PinRef::Block(BlockId(1)),
                PinRef::Block(BlockId(2)),
                PinRef::Block(BlockId(3)),
            ],
        )];
        Design::new(
            "chain",
            blocks,
            nets,
            vec![],
            Outline::new(2_000.0, 2_000.0),
        )
        .unwrap()
    }

    fn full_adjacency(n: usize) -> Vec<Vec<BlockId>> {
        (0..n)
            .map(|i| (0..n).filter(|&j| j != i).map(BlockId).collect())
            .collect()
    }

    #[test]
    fn feasible_sets_follow_slack() {
        let assigner = VoltageAssigner::new(AssignmentObjective::PowerAware);
        let sets = assigner.feasible_sets(&[1.0, 1.0, 1.0], &[1.0, 0.1, 0.0]);
        // Plenty of slack: all three levels.
        assert_eq!(sets[0].len(), 3);
        // 10% slack: only 1.0 V and 1.2 V.
        assert_eq!(sets[1], vec![VoltageLevel::V1_0, VoltageLevel::V1_2]);
        // No slack: 1.0 V and 1.2 V (1.0 V is always feasible with zero slack).
        assert!(sets[2].contains(&VoltageLevel::V1_0));
    }

    #[test]
    fn negative_slack_forces_highest_voltage() {
        let assigner = VoltageAssigner::new(AssignmentObjective::PowerAware);
        let sets = assigner.feasible_sets(&[1.0], &[-0.5]);
        assert_eq!(sets[0], vec![VoltageLevel::V1_2]);
    }

    #[test]
    fn power_aware_merges_into_few_volumes_at_low_voltage() {
        let d = design();
        let assigner = VoltageAssigner::new(AssignmentObjective::PowerAware);
        let n = d.blocks().len();
        // Everyone has generous slack.
        let assignment = assigner.assign(&d, &full_adjacency(n), &[1.0; 4], &[2.0; 4]);
        assert_eq!(assignment.volume_count(), 1);
        assert_eq!(assignment.level_of(BlockId(0)), VoltageLevel::V0_8);
        let scaling = VoltageScaling::paper_90nm();
        assert!(assignment.total_power(&d, &scaling) < d.total_power());
    }

    #[test]
    fn tsc_aware_separates_outlier_density_blocks() {
        let d = design();
        let assigner = VoltageAssigner::new(AssignmentObjective::tsc_default());
        let n = d.blocks().len();
        let assignment = assigner.assign(&d, &full_adjacency(n), &[1.0; 4], &[2.0; 4]);
        // Block c has ~8x the density of its neighbours and must not share their volume.
        let volume_of_c = assignment
            .volumes()
            .iter()
            .find(|v| v.blocks().contains(&BlockId(2)))
            .unwrap();
        assert_eq!(volume_of_c.len(), 1);
        assert!(assignment.volume_count() >= 2);
    }

    #[test]
    fn tsc_aware_produces_more_volumes_than_power_aware() {
        // This mirrors the paper's Table 2 trend of ~87% more voltage volumes for TSC-aware
        // floorplanning.
        let d = design();
        let n = d.blocks().len();
        let adjacency = full_adjacency(n);
        let pa = VoltageAssigner::new(AssignmentObjective::PowerAware)
            .assign(&d, &adjacency, &[1.0; 4], &[2.0; 4]);
        let tsc = VoltageAssigner::new(AssignmentObjective::tsc_default())
            .assign(&d, &adjacency, &[1.0; 4], &[2.0; 4]);
        assert!(tsc.volume_count() >= pa.volume_count());
    }

    #[test]
    fn disconnected_blocks_get_their_own_volumes() {
        let d = design();
        let assigner = VoltageAssigner::new(AssignmentObjective::PowerAware);
        let adjacency = vec![Vec::new(); 4];
        let assignment = assigner.assign(&d, &adjacency, &[1.0; 4], &[2.0; 4]);
        assert_eq!(assignment.volume_count(), 4);
    }

    #[test]
    fn timing_infeasible_neighbours_are_not_merged() {
        let d = design();
        let assigner = VoltageAssigner::new(AssignmentObjective::PowerAware);
        let n = d.blocks().len();
        // Block 2 has no slack at all and can only run at 1.2 V; block 0,1,3 have huge slack
        // but once merged with block 2 the common set would be {1.2V}∩{0.8..} — still
        // non-empty ({1.0,1.2}∩...), so craft slacks so feasible sets are disjoint:
        // blocks 0,1,3 feasible = {0.8,1.0,1.2}; block 2 nominal delay so large that only
        // 1.2 V meets it (negative slack).
        let slacks = [2.0, 2.0, -0.5, 2.0];
        let assignment = assigner.assign(&d, &full_adjacency(n), &[1.0; 4], &slacks);
        // Block 2 runs at 1.2 V; the others at 0.8 V in a merged volume.
        assert_eq!(assignment.level_of(BlockId(2)), VoltageLevel::V1_2);
        assert_eq!(assignment.level_of(BlockId(0)), VoltageLevel::V0_8);
    }

    #[test]
    fn assign_with_matches_assign_exactly() {
        let d = design();
        let n = d.blocks().len();
        let adjacency = full_adjacency(n);
        let sparse: Vec<Vec<BlockId>> = (0..n)
            .map(|i| {
                if i % 2 == 0 {
                    vec![BlockId((i + 1) % n)]
                } else {
                    Vec::new()
                }
            })
            .collect();
        for objective in [
            AssignmentObjective::PowerAware,
            AssignmentObjective::tsc_default(),
        ] {
            let assigner = VoltageAssigner::new(objective);
            let mut scratch = AssignScratch::new();
            for adj in [&adjacency, &sparse] {
                for slacks in [[2.0; 4], [0.1; 4], [2.0, 0.0, -0.5, 0.05]] {
                    let reference = assigner.assign(&d, adj, &[1.0; 4], &slacks);
                    let fast = assigner.assign_with(&d, adj, &[1.0; 4], &slacks, &mut scratch);
                    assert_eq!(fast, reference);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "adjacency")]
    fn wrong_adjacency_length_panics() {
        let d = design();
        let assigner = VoltageAssigner::new(AssignmentObjective::PowerAware);
        let _ = assigner.assign(&d, &[], &[1.0; 4], &[1.0; 4]);
    }
}

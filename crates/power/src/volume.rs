//! Voltage volumes: 3D voltage domains spanning (possibly) multiple dies.

use serde::{Deserialize, Serialize};
use tsc3d_netlist::{BlockId, Design};
use tsc3d_timing::{VoltageLevel, VoltageScaling};

/// A voltage volume: a set of modules sharing one supply voltage.
///
/// "Voltage volumes — the generalized 3D version of voltage domains spanning across multiple
/// dies." Every module of the volume must be able to run at the chosen voltage without
/// violating its timing budget; the feasible set records the voltages for which this holds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VoltageVolume {
    blocks: Vec<BlockId>,
    feasible: Vec<VoltageLevel>,
    level: VoltageLevel,
}

impl VoltageVolume {
    /// Creates a volume over `blocks` with the given feasible set, operating at `level`.
    ///
    /// # Panics
    ///
    /// Panics if `blocks` is empty, the feasible set is empty, or `level` is not in the
    /// feasible set.
    pub fn new(blocks: Vec<BlockId>, feasible: Vec<VoltageLevel>, level: VoltageLevel) -> Self {
        assert!(!blocks.is_empty(), "voltage volume cannot be empty");
        assert!(!feasible.is_empty(), "feasible voltage set cannot be empty");
        assert!(
            feasible.contains(&level),
            "selected level must be in the feasible set"
        );
        Self {
            blocks,
            feasible,
            level,
        }
    }

    /// The modules of the volume.
    pub fn blocks(&self) -> &[BlockId] {
        &self.blocks
    }

    /// The voltages every module of the volume could run at.
    pub fn feasible(&self) -> &[VoltageLevel] {
        &self.feasible
    }

    /// The voltage the volume operates at.
    pub fn level(&self) -> VoltageLevel {
        self.level
    }

    /// Number of modules in the volume.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the volume is empty (never true for constructed volumes).
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }
}

/// A complete voltage assignment: a partition of all modules into voltage volumes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VoltageAssignment {
    volumes: Vec<VoltageVolume>,
    /// Per block (by index), the volume it belongs to.
    block_volume: Vec<usize>,
}

impl VoltageAssignment {
    /// Builds an assignment from a set of volumes covering every block exactly once.
    ///
    /// # Panics
    ///
    /// Panics if a block is covered by zero or more than one volume.
    pub fn new(block_count: usize, volumes: Vec<VoltageVolume>) -> Self {
        let mut block_volume = vec![usize::MAX; block_count];
        for (v, volume) in volumes.iter().enumerate() {
            for b in volume.blocks() {
                assert!(
                    block_volume[b.index()] == usize::MAX,
                    "block {b} assigned to two volumes"
                );
                block_volume[b.index()] = v;
            }
        }
        assert!(
            block_volume.iter().all(|&v| v != usize::MAX),
            "every block must be covered by a volume"
        );
        Self {
            volumes,
            block_volume,
        }
    }

    /// A trivial assignment running every block at the nominal 1.0 V in its own volume.
    pub fn nominal(block_count: usize) -> Self {
        let volumes = (0..block_count)
            .map(|i| {
                VoltageVolume::new(
                    vec![BlockId(i)],
                    vec![VoltageLevel::V1_0],
                    VoltageLevel::V1_0,
                )
            })
            .collect();
        Self::new(block_count, volumes)
    }

    /// The voltage volumes.
    pub fn volumes(&self) -> &[VoltageVolume] {
        &self.volumes
    }

    /// Number of volumes.
    pub fn volume_count(&self) -> usize {
        self.volumes.len()
    }

    /// The operating voltage of a block.
    pub fn level_of(&self, block: BlockId) -> VoltageLevel {
        self.volumes[self.block_volume[block.index()]].level()
    }

    /// The voltage-scaled power of every block in watts.
    pub fn scaled_powers(&self, design: &Design, scaling: &VoltageScaling) -> Vec<f64> {
        design
            .iter_blocks()
            .map(|(id, b)| b.power() * scaling.power_factor(self.level_of(id)))
            .collect()
    }

    /// The voltage-scaled intrinsic delay of every block, given the nominal delays.
    pub fn scaled_delays(&self, nominal_delays: &[f64], scaling: &VoltageScaling) -> Vec<f64> {
        nominal_delays
            .iter()
            .enumerate()
            .map(|(i, &d)| d * scaling.delay_factor(self.level_of(BlockId(i))))
            .collect()
    }

    /// Writes the voltage-scaled power of every block into `out` (cleared first) — the
    /// allocation-free variant of [`VoltageAssignment::scaled_powers`], producing
    /// identical values.
    pub fn scaled_powers_into(
        &self,
        design: &Design,
        scaling: &VoltageScaling,
        out: &mut Vec<f64>,
    ) {
        out.clear();
        out.extend(
            design
                .iter_blocks()
                .map(|(id, b)| b.power() * scaling.power_factor(self.level_of(id))),
        );
    }

    /// Writes the voltage-scaled delay of every block into `out` (cleared first) — the
    /// allocation-free variant of [`VoltageAssignment::scaled_delays`], producing
    /// identical values.
    pub fn scaled_delays_into(
        &self,
        nominal_delays: &[f64],
        scaling: &VoltageScaling,
        out: &mut Vec<f64>,
    ) {
        out.clear();
        out.extend(
            nominal_delays
                .iter()
                .enumerate()
                .map(|(i, &d)| d * scaling.delay_factor(self.level_of(BlockId(i)))),
        );
    }

    /// Total voltage-scaled power of the design in watts.
    pub fn total_power(&self, design: &Design, scaling: &VoltageScaling) -> f64 {
        self.scaled_powers(design, scaling).iter().sum()
    }

    /// Standard deviation of per-block power *density* (W/µm²) within each volume, averaged
    /// over volumes. This is objective (i) of the TSC-aware voltage selection: "locally
    /// uniform power densities within volumes".
    pub fn intra_volume_density_std(&self, design: &Design, scaling: &VoltageScaling) -> f64 {
        let powers = self.scaled_powers(design, scaling);
        let mut total = 0.0;
        for volume in &self.volumes {
            let densities: Vec<f64> = volume
                .blocks()
                .iter()
                .map(|b| powers[b.index()] / design.block(*b).area())
                .collect();
            total += std_dev(&densities);
        }
        total / self.volumes.len() as f64
    }

    /// Standard deviation of the mean power density across volumes. This is objective (ii)
    /// of the TSC-aware voltage selection: "small power gradients across volumes".
    pub fn inter_volume_density_std(&self, design: &Design, scaling: &VoltageScaling) -> f64 {
        let powers = self.scaled_powers(design, scaling);
        let means: Vec<f64> = self
            .volumes
            .iter()
            .map(|v| {
                let p: f64 = v.blocks().iter().map(|b| powers[b.index()]).sum();
                let a: f64 = v.blocks().iter().map(|b| design.block(*b).area()).sum();
                p / a
            })
            .collect();
        std_dev(&means)
    }
}

fn std_dev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    (values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / values.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsc3d_geometry::Outline;
    use tsc3d_netlist::{Block, BlockShape};

    fn design() -> Design {
        let blocks = vec![
            Block::new("a", BlockShape::soft(100.0), 1.0),
            Block::new("b", BlockShape::soft(100.0), 2.0),
            Block::new("c", BlockShape::soft(200.0), 1.0),
        ];
        Design::new("d", blocks, vec![], vec![], Outline::new(100.0, 100.0)).unwrap()
    }

    #[test]
    fn nominal_assignment_runs_everything_at_one_volt() {
        let d = design();
        let a = VoltageAssignment::nominal(3);
        assert_eq!(a.volume_count(), 3);
        assert_eq!(a.level_of(BlockId(1)), VoltageLevel::V1_0);
        let scaling = VoltageScaling::paper_90nm();
        assert!((a.total_power(&d, &scaling) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn scaled_power_and_delay_follow_the_level() {
        let d = design();
        let scaling = VoltageScaling::paper_90nm();
        let volumes = vec![
            VoltageVolume::new(
                vec![BlockId(0), BlockId(2)],
                vec![VoltageLevel::V0_8, VoltageLevel::V1_0],
                VoltageLevel::V0_8,
            ),
            VoltageVolume::new(
                vec![BlockId(1)],
                vec![VoltageLevel::V1_2],
                VoltageLevel::V1_2,
            ),
        ];
        let a = VoltageAssignment::new(3, volumes);
        let powers = a.scaled_powers(&d, &scaling);
        assert!((powers[0] - 0.817).abs() < 1e-9);
        assert!((powers[1] - 2.0 * 1.496).abs() < 1e-9);
        let delays = a.scaled_delays(&[1.0, 1.0, 1.0], &scaling);
        assert!((delays[0] - 1.56).abs() < 1e-9);
        assert!((delays[1] - 0.83).abs() < 1e-9);
        assert_eq!(a.level_of(BlockId(2)), VoltageLevel::V0_8);
    }

    #[test]
    fn density_statistics() {
        let d = design();
        let scaling = VoltageScaling::paper_90nm();
        // One volume containing everything at 1.0 V.
        let all = VoltageAssignment::new(
            3,
            vec![VoltageVolume::new(
                vec![BlockId(0), BlockId(1), BlockId(2)],
                vec![VoltageLevel::V1_0],
                VoltageLevel::V1_0,
            )],
        );
        // Densities are 0.01, 0.02, 0.005 → nonzero intra std; only one volume → zero inter std.
        assert!(all.intra_volume_density_std(&d, &scaling) > 0.0);
        assert_eq!(all.inter_volume_density_std(&d, &scaling), 0.0);

        // Per-block volumes: zero intra std, nonzero inter std.
        let solo = VoltageAssignment::nominal(3);
        assert_eq!(solo.intra_volume_density_std(&d, &scaling), 0.0);
        assert!(solo.inter_volume_density_std(&d, &scaling) > 0.0);
    }

    #[test]
    #[should_panic(expected = "two volumes")]
    fn overlapping_volumes_rejected() {
        let v1 = VoltageVolume::new(
            vec![BlockId(0)],
            vec![VoltageLevel::V1_0],
            VoltageLevel::V1_0,
        );
        let v2 = VoltageVolume::new(
            vec![BlockId(0), BlockId(1)],
            vec![VoltageLevel::V1_0],
            VoltageLevel::V1_0,
        );
        let _ = VoltageAssignment::new(2, vec![v1, v2]);
    }

    #[test]
    #[should_panic(expected = "covered")]
    fn uncovered_block_rejected() {
        let v1 = VoltageVolume::new(
            vec![BlockId(0)],
            vec![VoltageLevel::V1_0],
            VoltageLevel::V1_0,
        );
        let _ = VoltageAssignment::new(2, vec![v1]);
    }

    #[test]
    #[should_panic(expected = "feasible")]
    fn level_outside_feasible_set_rejected() {
        let _ = VoltageVolume::new(
            vec![BlockId(0)],
            vec![VoltageLevel::V1_0],
            VoltageLevel::V0_8,
        );
    }
}

//! Power modelling and floorplanning-centric voltage assignment for 3D ICs.
//!
//! A key measure of the paper is "the management of global and local power distributions",
//! realized through voltage assignment during floorplanning (Section 6.1). This crate
//! provides that machinery:
//!
//! * [`ActivitySampler`] — Gaussian activity sampling of module powers (Section 6.2: nominal
//!   power as mean, 10 % standard deviation), used to impersonate an attacker triggering
//!   varying activity patterns.
//! * [`VoltageVolume`] / [`VoltageAssignment`] — voltage volumes, the 3D generalization of
//!   voltage domains: groups of (spatially adjacent) modules sharing one supply voltage.
//! * [`VoltageAssigner`] — the breadth-first merging procedure that grows volumes under
//!   timing feasibility and selects voltages under either the power-aware objective
//!   (minimize power and volume count) or the TSC-aware objective (minimize power
//!   non-uniformity within and across volumes).
//! * [`power_map_from_rects`] — rasterization of placed, voltage-scaled block powers into
//!   per-die power-density maps.
//!
//! # Example
//!
//! ```
//! use tsc3d_netlist::suite::{Benchmark, generate};
//! use tsc3d_power::{ActivitySampler};
//! use rand::SeedableRng;
//! use rand_chacha::ChaCha8Rng;
//!
//! let design = generate(Benchmark::N100, 1);
//! let sampler = ActivitySampler::paper_default(&design);
//! let mut rng = ChaCha8Rng::seed_from_u64(7);
//! let sample = sampler.sample(&mut rng);
//! assert_eq!(sample.len(), design.blocks().len());
//! ```

#![warn(missing_docs)]

mod activity;
mod assignment;
mod map;
mod volume;

pub use activity::ActivitySampler;
pub use assignment::{AssignScratch, AssignmentObjective, VoltageAssigner};
pub use map::power_map_from_rects;
pub use volume::{VoltageAssignment, VoltageVolume};

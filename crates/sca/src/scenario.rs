//! End-to-end trace-level attack scenarios on flow-produced floorplans.
//!
//! A scenario takes the outputs of the TSC-aware flow — the floorplan, the
//! voltage-scaled block powers and the final TSV plan — and evaluates the CPA attack
//! twice out of the same [`FlowResult`]: once against the unmitigated baseline (signal
//! TSVs only) and once against the decorrelated floorplan (signal *plus* dummy TSVs),
//! reporting the [`ScaVerdict`]: did the mitigation raise the attacker's
//! measurements-to-disclosure?

use crate::cpa::{run_cpa, CpaAccumulator, CpaResult, TraceConsumer, TraceSet};
use crate::sensor::SensorConfig;
use crate::workload::{derive_key, LeakageModel, Workload, WorkloadConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::{mpsc, Arc};
use tsc3d::FlowResult;
use tsc3d_exec::{chunk_ranges, CancelToken, Interrupt, Pool};
use tsc3d_floorplan::{plan_signal_tsvs, Floorplan, PowerStamps};
use tsc3d_geometry::{DieId, Grid, GridMap, GridPos};
use tsc3d_netlist::Design;
use tsc3d_thermal::{BatchTransientSolver, SolveError, ThermalConfig, TransientSolver, TsvField};

/// How the attacked module (the "crypto core") is chosen on the instrumented die.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TargetPolicy {
    /// The highest-powered block on the sensor die.
    HighestPower,
    /// The block nearest the die's power-density hotspot (argmax of the power map).
    Hotspot,
    /// The block nearest the flow's correlation-stability argmax — the most *stably*
    /// leaking location, i.e. the paper's own exploitability criterion (and the spot the
    /// dummy-TSV defense flattens first). Falls back to [`TargetPolicy::Hotspot`] when
    /// the flow ran without post-processing (no stability map).
    MostStable,
    /// An explicit module index (reproducing a known scenario).
    Block(usize),
}

impl TargetPolicy {
    /// Stable label used in records and submissions (`block:N` for explicit targets).
    pub fn label(self) -> String {
        match self {
            TargetPolicy::HighestPower => "highest-power".into(),
            TargetPolicy::Hotspot => "hotspot".into(),
            TargetPolicy::MostStable => "most-stable".into(),
            TargetPolicy::Block(index) => format!("block:{index}"),
        }
    }

    /// Parses [`TargetPolicy::label`].
    pub fn from_label(label: &str) -> Option<Self> {
        match label {
            "highest-power" => Some(TargetPolicy::HighestPower),
            "hotspot" => Some(TargetPolicy::Hotspot),
            "most-stable" => Some(TargetPolicy::MostStable),
            other => other
                .strip_prefix("block:")
                .and_then(|index| index.parse().ok())
                .map(TargetPolicy::Block),
        }
    }
}

/// The full configuration of one trace-level attack evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AttackConfig {
    /// Analysis-grid resolution (bins per axis) of the transient simulation.
    pub grid_bins: usize,
    /// Number of traces (encryptions) the attacker observes.
    pub traces: usize,
    /// How the attacked module is chosen.
    pub target: TargetPolicy,
    /// The key-dependent workload.
    pub workload: WorkloadConfig,
    /// The attacker's sensor array and acquisition chain.
    pub sensors: SensorConfig,
    /// Trace-count checkpoints at which disclosure is evaluated.
    pub mtd_checkpoints: usize,
}

impl AttackConfig {
    /// A fast configuration for tests and demos: a coarse grid, few traces, two key
    /// bytes.
    pub fn quick() -> Self {
        Self {
            grid_bins: 10,
            traces: 96,
            target: TargetPolicy::MostStable,
            workload: WorkloadConfig {
                key_bytes: 2,
                leakage: LeakageModel::HammingWeight,
                watts_per_hw: 0.08,
                background_sigma: 0.02,
            },
            sensors: SensorConfig {
                die: 0,
                sensors_per_axis: 3,
                samples_per_trace: 2,
                dwell_s: 0.01,
                sigma_k: 0.004,
                quantization_k: 0.002,
            },
            mtd_checkpoints: 12,
        }
    }

    /// The calibrated smoke configuration used by the campaign/serve sca smokes: a
    /// noise-limited sensing regime (long dwell into the conductance-dominated response,
    /// ~0.5 K sensor noise) with per-trace disclosure checkpoints, so the dummy-TSV
    /// mitigation's SNR reduction is resolvable as a strictly higher MTD.
    pub fn smoke() -> Self {
        Self {
            grid_bins: 10,
            traces: 192,
            target: TargetPolicy::MostStable,
            workload: WorkloadConfig {
                key_bytes: 2,
                leakage: LeakageModel::HammingWeight,
                watts_per_hw: 0.04,
                background_sigma: 0.02,
            },
            sensors: SensorConfig {
                die: 0,
                sensors_per_axis: 3,
                samples_per_trace: 1,
                dwell_s: 0.08,
                sigma_k: 0.5,
                quantization_k: 0.01,
            },
            mtd_checkpoints: 192,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ScaError::InvalidConfig`] describing the first problem.
    pub fn validate(&self) -> Result<(), ScaError> {
        let fail = |reason: String| Err(ScaError::InvalidConfig { reason });
        if self.grid_bins < 2 {
            return fail(format!("grid_bins must be >= 2, got {}", self.grid_bins));
        }
        if self.traces < 8 {
            return fail(format!("traces must be >= 8, got {}", self.traces));
        }
        if !(1..=16).contains(&self.workload.key_bytes) {
            return fail(format!(
                "key_bytes must be in 1..=16, got {}",
                self.workload.key_bytes
            ));
        }
        if !(self.workload.watts_per_hw > 0.0 && self.workload.watts_per_hw.is_finite()) {
            return fail(format!(
                "watts_per_hw must be positive and finite, got {}",
                self.workload.watts_per_hw
            ));
        }
        if self.workload.background_sigma < 0.0 {
            return fail("background_sigma must be non-negative".into());
        }
        if self.sensors.sensors_per_axis == 0 || self.sensors.samples_per_trace == 0 {
            return fail("the sensor array and sampling must be non-empty".into());
        }
        if !(self.sensors.dwell_s > 0.0 && self.sensors.dwell_s.is_finite()) {
            return fail(format!(
                "dwell_s must be positive and finite, got {}",
                self.sensors.dwell_s
            ));
        }
        if self.sensors.sigma_k < 0.0 || self.sensors.quantization_k < 0.0 {
            return fail("sensor sigma and quantization must be non-negative".into());
        }
        if self.mtd_checkpoints == 0 {
            return fail("mtd_checkpoints must be >= 1".into());
        }
        Ok(())
    }
}

/// Errors of a scenario run.
#[derive(Debug, Clone, PartialEq)]
pub enum ScaError {
    /// The attack configuration is invalid.
    InvalidConfig {
        /// What is wrong.
        reason: String,
    },
    /// The transient engine rejected its inputs.
    Solve(SolveError),
    /// The attacker's die hosts no modules (no target to monitor).
    NoTargetModule {
        /// The instrumented die.
        die: usize,
    },
    /// The attack was cancelled at a trace-batch checkpoint.
    Cancelled {
        /// Why the token fired.
        reason: tsc3d_exec::CancelReason,
    },
    /// The attack's deadline expired at a trace-batch checkpoint.
    DeadlineExceeded,
    /// A fault-injection hook fired at a checkpoint (chaos testing only).
    Fault {
        /// The fault site that fired.
        site: &'static str,
    },
}

impl std::fmt::Display for ScaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScaError::InvalidConfig { reason } => write!(f, "invalid sca config: {reason}"),
            ScaError::Solve(e) => write!(f, "transient setup failed: {e}"),
            ScaError::NoTargetModule { die } => {
                write!(f, "no module placed on the instrumented die {die}")
            }
            ScaError::Cancelled { reason } => write!(f, "sca attack cancelled ({reason})"),
            ScaError::DeadlineExceeded => write!(f, "sca attack deadline exceeded"),
            ScaError::Fault { site } => write!(f, "injected fault at {site}"),
        }
    }
}

impl std::error::Error for ScaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ScaError::Solve(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SolveError> for ScaError {
    fn from(e: SolveError) -> Self {
        match e {
            SolveError::Interrupted { interrupt, .. } => ScaError::from_interrupt(interrupt),
            other => ScaError::Solve(other),
        }
    }
}

impl ScaError {
    /// Stable variant tag for failure aggregation.
    ///
    /// Cancellation kinds match the flow's: `cancelled`, `shutdown`, `deadline`,
    /// `fault-injected`.
    pub fn kind(&self) -> &'static str {
        match self {
            ScaError::InvalidConfig { .. } => "sca-invalid-config",
            ScaError::Solve(_) => "sca-solve",
            ScaError::NoTargetModule { .. } => "sca-no-target",
            ScaError::Cancelled { reason } => reason.kind(),
            ScaError::DeadlineExceeded => "deadline",
            ScaError::Fault { .. } => "fault-injected",
        }
    }

    /// Maps a checkpoint [`Interrupt`] to the matching typed variant (deadline
    /// cancellations become [`ScaError::DeadlineExceeded`]).
    pub fn from_interrupt(interrupt: Interrupt) -> ScaError {
        match interrupt {
            Interrupt::Cancelled(tsc3d_exec::CancelReason::Deadline) => ScaError::DeadlineExceeded,
            Interrupt::Cancelled(reason) => ScaError::Cancelled { reason },
            Interrupt::Fault(fault) => ScaError::Fault { site: fault.site },
        }
    }
}

/// The outcome of one attack evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScaOutcome {
    /// The full CPA result.
    pub cpa: CpaResult,
    /// The module the workload keyed (index into the design's blocks).
    pub target_module: usize,
    /// Transient grid steps simulated (the hot-loop count behind traces/sec).
    pub transient_steps: u64,
}

impl ScaOutcome {
    /// Recovered key bytes.
    pub fn recovered_bytes(&self) -> usize {
        self.cpa.recovered_bytes()
    }

    /// Attacked key bytes.
    pub fn key_bytes(&self) -> usize {
        self.cpa.bytes.len()
    }

    /// Guessing entropy in bits.
    pub fn guessing_entropy_bits(&self) -> f64 {
        self.cpa.guessing_entropy_bits()
    }

    /// Measurements to full-key disclosure (`None` = key not recovered).
    pub fn mtd_traces(&self) -> Option<usize> {
        self.cpa.mtd_traces()
    }

    /// Best absolute correlation of any guess.
    pub fn best_correlation(&self) -> f64 {
        self.cpa.best_correlation()
    }
}

/// Whether to evaluate the attack against the mitigated or the unmitigated floorplan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Mitigation {
    /// Signal TSVs only — the floorplan before the decorrelation post-process.
    Baseline,
    /// Signal plus the flow's dummy thermal TSVs.
    DummyTsvs,
}

impl Mitigation {
    /// Stable label ("baseline" / "mitigated").
    pub fn label(self) -> &'static str {
        match self {
            Mitigation::Baseline => "baseline",
            Mitigation::DummyTsvs => "mitigated",
        }
    }

    /// Parses [`Mitigation::label`].
    pub fn from_label(label: &str) -> Option<Self> {
        match label {
            "baseline" => Some(Mitigation::Baseline),
            "mitigated" => Some(Mitigation::DummyTsvs),
            _ => None,
        }
    }
}

/// The side-by-side evaluation out of one [`FlowResult`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScaVerdict {
    /// The attack against the signal-TSV-only floorplan.
    pub baseline: ScaOutcome,
    /// The attack against the dummy-TSV-decorrelated floorplan.
    pub mitigated: ScaOutcome,
}

impl ScaVerdict {
    /// `true` when the mitigation measurably hurt the attacker: strictly higher MTD, or
    /// the key (or more of it) stays unrecovered.
    pub fn mitigation_effective(&self) -> bool {
        match (self.baseline.mtd_traces(), self.mitigated.mtd_traces()) {
            (Some(base), Some(mitigated)) => mitigated > base,
            (Some(_), None) => true,
            (None, None) => self.mitigated.recovered_bytes() < self.baseline.recovered_bytes(),
            (None, Some(_)) => false,
        }
    }

    /// The MTD gain factor (`mitigated / baseline`), `None` when either side lacks a
    /// finite MTD.
    pub fn mtd_gain(&self) -> Option<f64> {
        match (self.baseline.mtd_traces(), self.mitigated.mtd_traces()) {
            (Some(base), Some(mitigated)) if base > 0 => Some(mitigated as f64 / base as f64),
            _ => None,
        }
    }
}

/// The TSV fields the attack sees on its own analysis grid: the signal TSVs re-planned
/// for the grid, plus (for [`Mitigation::DummyTsvs`]) the flow's dummy sites re-splatted
/// onto it.
pub fn attack_tsv_fields(
    design: &Design,
    flow: &FlowResult,
    grid: Grid,
    mitigation: Mitigation,
) -> Vec<TsvField> {
    let mut plan = plan_signal_tsvs(design, flow.floorplan(), grid);
    if mitigation == Mitigation::DummyTsvs {
        for (interface, field) in flow.final_tsv_plan.dummy().iter().enumerate() {
            for site in field.sites() {
                plan.add_dummy(interface, *site);
            }
        }
    }
    plan.combined()
}

/// The block on `die` whose centre lies nearest `point` (ties towards the lowest id).
fn nearest_block_on_die(
    floorplan: &Floorplan,
    die: usize,
    point: tsc3d_geometry::Point,
) -> Option<usize> {
    let mut best: Option<(f64, usize)> = None;
    for placement in floorplan.placements() {
        if placement.die != DieId(die) {
            continue;
        }
        let index = placement.block.index();
        let distance = placement.rect.center().distance(point);
        let better = match best {
            None => true,
            Some((best_distance, _)) => distance < best_distance,
        };
        if better {
            best = Some((distance, index));
        }
    }
    best.map(|(_, index)| index)
}

/// Resolves the attacked module under a [`TargetPolicy`].
///
/// `grid` is the attack's analysis grid (hotspot policies), `stability` the flow's
/// correlation-stability map when available (its own grid may differ from `grid`).
///
/// # Errors
///
/// Returns [`ScaError::NoTargetModule`] when the die hosts no blocks, or
/// [`ScaError::InvalidConfig`] for an out-of-range explicit block.
pub fn resolve_target(
    policy: TargetPolicy,
    floorplan: &Floorplan,
    powers: &[f64],
    die: usize,
    grid: Grid,
    stability: Option<&tsc3d_leakage::StabilityMap>,
) -> Result<usize, ScaError> {
    match policy {
        TargetPolicy::Block(index) => {
            if index >= powers.len() {
                return Err(ScaError::InvalidConfig {
                    reason: format!(
                        "explicit target block {index} outside the {}-module design",
                        powers.len()
                    ),
                });
            }
            Ok(index)
        }
        TargetPolicy::HighestPower => {
            let mut best: Option<(f64, usize)> = None;
            for placement in floorplan.placements() {
                if placement.die != DieId(die) {
                    continue;
                }
                let index = placement.block.index();
                let power = powers[index];
                let better = match best {
                    None => true,
                    Some((best_power, _)) => power > best_power,
                };
                if better {
                    best = Some((power, index));
                }
            }
            best.map(|(_, index)| index)
                .ok_or(ScaError::NoTargetModule { die })
        }
        TargetPolicy::Hotspot => {
            let map = &floorplan.power_maps(grid, powers)[die];
            let centre = grid.bin_center(map.argmax());
            nearest_block_on_die(floorplan, die, centre).ok_or(ScaError::NoTargetModule { die })
        }
        TargetPolicy::MostStable => match stability {
            Some(stability) => {
                let (pos, _) = stability.most_stable();
                let centre = stability.map().grid().bin_center(pos);
                nearest_block_on_die(floorplan, die, centre).ok_or(ScaError::NoTargetModule { die })
            }
            None => resolve_target(TargetPolicy::Hotspot, floorplan, powers, die, grid, None),
        },
    }
}

/// Default number of traces stepped in lockstep by the batched engine: amortises the
/// per-node stepping overhead well while keeping the SoA field of a smoke-sized grid
/// inside the L1/L2 working set.
const DEFAULT_BATCH_TRACES: usize = 8;

/// Which trace-simulation engine evaluates the attack.
///
/// Both engines produce **bit-identical** [`ScaOutcome`]s for any batch size and worker
/// count (equivalence-tested); the batched engine is simply faster, so it is the
/// default everywhere. The reference engine is retained as the bit-tested baseline and
/// for the `bench` harness's batched-vs-reference traces/sec comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEngine {
    /// Lockstep SoA batching: `batch_traces` traces share one conductance network and
    /// advance through every Jacobi step together, with the CPA sums folded in
    /// streaming (traces never materialise).
    Batched {
        /// Traces per lockstep batch (at least 1).
        batch_traces: usize,
    },
    /// The scalar per-trace path: one [`TransientSolver`] state per trace, traces
    /// materialised into a [`TraceSet`] before CPA.
    Reference,
}

impl Default for TraceEngine {
    fn default() -> Self {
        TraceEngine::Batched {
            batch_traces: DEFAULT_BATCH_TRACES,
        }
    }
}

/// The immutable context shared by every trace simulation of one evaluation.
struct TraceContext {
    solver: TransientSolver,
    floorplan: Floorplan,
    workload: Workload,
    sensors: SensorConfig,
    positions: Vec<GridPos>,
    grid: Grid,
    seed: u64,
    sample_dt: f64,
}

/// One chunk's simulated traces, in trace order.
struct ChunkTraces {
    plaintexts: Vec<u8>,
    samples: Vec<f64>,
    steps: u64,
}

impl TraceContext {
    /// Simulates the traces `range.0..range.1`, each from its own seeded rng, resetting
    /// the (chunk-reused) state to ambient per trace.
    fn simulate(&self, range: (usize, usize)) -> ChunkTraces {
        let _span = tsc3d_obs::span!("trace_window");
        let (lo, hi) = range;
        let key_bytes = self.workload.config().key_bytes;
        let points = self.sensors.points();
        let mut out = ChunkTraces {
            plaintexts: Vec::with_capacity((hi - lo) * key_bytes),
            samples: Vec::with_capacity((hi - lo) * points),
            steps: 0,
        };
        let mut state = self.solver.state();
        let mut maps: Vec<GridMap> = Vec::new();
        for trace in lo..hi {
            let mut rng = ChaCha8Rng::seed_from_u64(trace_seed(self.seed, trace as u64));
            let activity = self.workload.draw_trace(&mut rng);
            self.floorplan
                .power_maps_into(self.grid, &activity.powers, &mut maps);
            self.solver.reset(&mut state);
            self.solver
                .set_power(&mut state, &maps)
                .expect("power maps are built on the solver grid");
            for _ in 0..self.sensors.samples_per_trace {
                out.steps += self.solver.advance(&mut state, self.sample_dt) as u64;
                for &pos in &self.positions {
                    let true_t = self.solver.temperature_at(&state, self.sensors.die, pos);
                    out.samples.push(self.sensors.acquire(true_t, &mut rng));
                }
            }
            out.plaintexts.extend_from_slice(&activity.plaintexts);
        }
        tsc3d_obs::add_to_span("traces", (hi - lo) as u64);
        tsc3d_obs::add_to_span("transient_steps", out.steps);
        out
    }
}

/// The per-trace seed: decorrelates consecutive trace indices (SplitMix64 finalizer).
fn trace_seed(seed: u64, trace: u64) -> u64 {
    let mut z = seed
        .wrapping_add(trace.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The immutable context of the lockstep batched engine: one shared
/// [`BatchTransientSolver`] (network and capacities built once per mitigation state) and
/// the floorplan's precomputed [`PowerStamps`].
struct BatchContext {
    solver: BatchTransientSolver,
    stamps: PowerStamps,
    workload: Workload,
    sensors: SensorConfig,
    positions: Vec<GridPos>,
    seed: u64,
    sample_dt: f64,
}

impl BatchContext {
    /// Simulates the traces `range.0..range.1` in lockstep, one lane per trace.
    ///
    /// Each lane owns the rng stream of its trace (seeded exactly as the scalar path)
    /// and is stepped with the scalar per-node operation order, so every lane's samples
    /// are bit-identical to a scalar simulation of that trace.
    fn simulate(&self, range: (usize, usize)) -> ChunkTraces {
        let _span = tsc3d_obs::span!("trace_window");
        let (lo, hi) = range;
        let lanes = hi - lo;
        let key_bytes = self.workload.config().key_bytes;
        let points = self.sensors.points();
        let sensor_count = self.positions.len();
        let mut out = ChunkTraces {
            plaintexts: Vec::with_capacity(lanes * key_bytes),
            samples: vec![0.0; lanes * points],
            steps: 0,
        };
        let mut state = self.solver.state(lanes);
        let mut rngs: Vec<ChaCha8Rng> = Vec::with_capacity(lanes);
        let mut maps: Vec<GridMap> = Vec::new();
        for (lane, trace) in (lo..hi).enumerate() {
            let mut rng = ChaCha8Rng::seed_from_u64(trace_seed(self.seed, trace as u64));
            let activity = self.workload.draw_trace(&mut rng);
            self.stamps.power_maps_into(&activity.powers, &mut maps);
            self.solver
                .set_power(&mut state, lane, &maps)
                .expect("power stamps are built on the solver grid");
            out.plaintexts.extend_from_slice(&activity.plaintexts);
            rngs.push(rng);
        }
        for sample in 0..self.sensors.samples_per_trace {
            let steps = self.solver.advance(&mut state, self.sample_dt);
            out.steps += steps as u64 * lanes as u64;
            for (lane, rng) in rngs.iter_mut().enumerate() {
                for (s, &pos) in self.positions.iter().enumerate() {
                    let true_t = self
                        .solver
                        .temperature_at(&state, lane, self.sensors.die, pos);
                    out.samples[lane * points + sample * sensor_count + s] =
                        self.sensors.acquire(true_t, rng);
                }
            }
        }
        tsc3d_obs::add_to_span("traces", lanes as u64);
        tsc3d_obs::add_to_span("transient_steps", out.steps);
        out
    }
}

/// Feeds one chunk's traces into the consumer, in trace order.
fn consume_chunk<C: TraceConsumer + ?Sized>(
    consumer: &mut C,
    chunk: &ChunkTraces,
    key_bytes: usize,
    points: usize,
) {
    let traces = chunk.plaintexts.len() / key_bytes;
    for t in 0..traces {
        consumer.consume_trace(
            &chunk.plaintexts[t * key_bytes..(t + 1) * key_bytes],
            &chunk.samples[t * points..(t + 1) * points],
        );
    }
}

/// Streams batched trace chunks into `consumer` in strict trace order, returning the
/// total transient step count.
///
/// With a pool, chunks are dispatched as fire-and-forget producer tasks and drained
/// through a channel; out-of-order completions wait in a reorder buffer, so the consumer
/// always sees trace `t` before `t + 1` — results are bit-identical for any worker count
/// while memory stays `O(pending batches × batch × points)` instead of
/// `O(traces × points)`. The drain loop *helps execute* queued tasks while waiting, so
/// streaming from inside a pool task (the serve daemon's sca jobs) cannot deadlock.
///
/// `cancel` is polled at the `sca-batch` checkpoint once per consumed chunk — the hit
/// count of that fault site is therefore deterministic (exactly the chunk count on a
/// fault-free run) regardless of pool scheduling. An interrupt abandons the remaining
/// chunks; in-flight producers finish into a dropped channel and are discarded.
fn stream_batches<C: TraceConsumer>(
    context: Arc<BatchContext>,
    chunks: Vec<(usize, usize)>,
    pool: Option<&Pool>,
    consumer: &mut C,
    key_bytes: usize,
    points: usize,
    cancel: &CancelToken,
) -> Result<u64, ScaError> {
    let mut steps = 0u64;
    match pool {
        Some(pool) if pool.threads() > 0 => {
            let total = chunks.len();
            let (tx, rx) = mpsc::channel::<(usize, ChunkTraces)>();
            // Reorder buffer: chunks complete in any order, the consumer sees them in
            // trace order.
            let mut pending: BTreeMap<usize, ChunkTraces> = BTreeMap::new();
            let mut delivered = 0usize;
            for (index, range) in chunks.into_iter().enumerate() {
                let tx = tx.clone();
                let producer = Arc::clone(&context);
                let submitted = pool.submit(move || {
                    // A dropped receiver means the streaming side panicked; nothing
                    // left to do with the chunk then.
                    let _ = tx.send((index, producer.simulate(range)));
                });
                if submitted.is_err() {
                    // Draining pool: refuse-new-work mode. The chunk must still be
                    // simulated — run it inline, parked in the reorder buffer so
                    // ordering against still-in-flight earlier chunks is preserved.
                    pending.insert(index, context.simulate(range));
                    delivered += 1;
                }
            }
            drop(tx);
            let mut next = 0usize;
            while delivered < total {
                let message = match rx.try_recv() {
                    Ok(message) => Some(message),
                    // Help the pool along instead of blocking: keeps a fully busy pool
                    // from deadlocking on its own sub-tasks (streaming from inside a
                    // pool task) and puts the waiting thread to work.
                    Err(mpsc::TryRecvError::Empty) if pool.try_help() => None,
                    Err(mpsc::TryRecvError::Empty) => {
                        match rx.recv_timeout(std::time::Duration::from_millis(1)) {
                            Ok(message) => Some(message),
                            Err(mpsc::RecvTimeoutError::Timeout) => None,
                            Err(mpsc::RecvTimeoutError::Disconnected) => {
                                panic!("a trace batch producer died before delivering")
                            }
                        }
                    }
                    Err(mpsc::TryRecvError::Disconnected) => {
                        panic!("a trace batch producer died before delivering")
                    }
                };
                if let Some((index, chunk)) = message {
                    delivered += 1;
                    pending.insert(index, chunk);
                }
                while let Some(chunk) = pending.remove(&next) {
                    tsc3d_exec::checkpoint("sca-batch", cancel)
                        .map_err(ScaError::from_interrupt)?;
                    steps += chunk.steps;
                    consume_chunk(consumer, &chunk, key_bytes, points);
                    next += 1;
                }
            }
            while let Some(chunk) = pending.remove(&next) {
                tsc3d_exec::checkpoint("sca-batch", cancel).map_err(ScaError::from_interrupt)?;
                steps += chunk.steps;
                consume_chunk(consumer, &chunk, key_bytes, points);
                next += 1;
            }
            assert_eq!(next, total, "every chunk consumed exactly once");
        }
        _ => {
            // Serial: simulate and fold one batch at a time — memory O(batch × points).
            for range in chunks {
                tsc3d_exec::checkpoint("sca-batch", cancel).map_err(ScaError::from_interrupt)?;
                let chunk = context.simulate(range);
                steps += chunk.steps;
                consume_chunk(consumer, &chunk, key_bytes, points);
            }
        }
    }
    Ok(steps)
}

/// Runs one attack evaluation against explicit TSV fields.
///
/// `nominal_powers` are the per-block baseline powers (voltage-scaled); `stability` is
/// the flow's correlation-stability map when available (the
/// [`TargetPolicy::MostStable`] input); `seed` drives the traces (plaintexts, background
/// traffic, sensor noise) and `key_seed` the secret key. With a pool, trace simulation
/// fans out over the workers; the per-trace seeding makes the result **bit-identical**
/// for any worker count (including none).
///
/// # Errors
///
/// Returns a [`ScaError`] for invalid configurations, mismatched TSV fields, or a die
/// without modules.
#[allow(clippy::too_many_arguments)]
pub fn run_attack(
    floorplan: &Floorplan,
    nominal_powers: &[f64],
    tsv_fields: &[TsvField],
    stability: Option<&tsc3d_leakage::StabilityMap>,
    config: &AttackConfig,
    seed: u64,
    key_seed: u64,
    pool: Option<&Pool>,
) -> Result<ScaOutcome, ScaError> {
    run_attack_with(
        floorplan,
        nominal_powers,
        tsv_fields,
        stability,
        config,
        seed,
        key_seed,
        TraceEngine::default(),
        pool,
    )
}

/// The validated, target-resolved inputs shared by both trace engines.
struct AttackSetup {
    grid: Grid,
    solver: TransientSolver,
    target: usize,
    key: Vec<u8>,
    workload: Workload,
    positions: Vec<GridPos>,
    sample_dt: f64,
}

/// Validates the configuration and resolves everything both engines share: the grid,
/// the (expensive, once-per-mitigation-state) transient network, the attacked module,
/// the key and the sensor positions.
fn prepare_attack(
    floorplan: &Floorplan,
    nominal_powers: &[f64],
    tsv_fields: &[TsvField],
    stability: Option<&tsc3d_leakage::StabilityMap>,
    config: &AttackConfig,
    key_seed: u64,
) -> Result<AttackSetup, ScaError> {
    config.validate()?;
    if config.sensors.die >= floorplan.stack().dies() {
        return Err(ScaError::InvalidConfig {
            reason: format!(
                "sensor die {} outside the {}-die stack",
                config.sensors.die,
                floorplan.stack().dies()
            ),
        });
    }
    let grid = floorplan.analysis_grid(config.grid_bins);
    let thermal_config = ThermalConfig::default_for(floorplan.stack());
    let solver = TransientSolver::new(&thermal_config, grid, tsv_fields)?;
    let target = resolve_target(
        config.target,
        floorplan,
        nominal_powers,
        config.sensors.die,
        grid,
        stability,
    )?;
    let key = derive_key(key_seed, config.workload.key_bytes);
    let workload = Workload::new(
        config.workload,
        key.clone(),
        nominal_powers.to_vec(),
        target,
    );
    let positions = config.sensors.positions(grid);
    Ok(AttackSetup {
        grid,
        solver,
        target,
        key,
        workload,
        positions,
        sample_dt: config.sensors.dwell_s / config.sensors.samples_per_trace as f64,
    })
}

/// [`run_attack`] with an explicit [`TraceEngine`] — the extension point the bench
/// harness and the equivalence tests use to pin batch sizes or select the scalar
/// reference path. Both engines are bit-identical for any batch size and worker count.
///
/// # Errors
///
/// See [`run_attack`]; additionally rejects a zero batch size.
#[allow(clippy::too_many_arguments)]
pub fn run_attack_with(
    floorplan: &Floorplan,
    nominal_powers: &[f64],
    tsv_fields: &[TsvField],
    stability: Option<&tsc3d_leakage::StabilityMap>,
    config: &AttackConfig,
    seed: u64,
    key_seed: u64,
    engine: TraceEngine,
    pool: Option<&Pool>,
) -> Result<ScaOutcome, ScaError> {
    run_attack_impl(
        floorplan,
        nominal_powers,
        tsv_fields,
        stability,
        config,
        seed,
        key_seed,
        engine,
        pool,
        &CancelToken::new(),
    )
}

/// The cancellable core behind every attack entry point: polls `cancel` at the
/// `sca-batch` checkpoint once per consumed trace chunk.
#[allow(clippy::too_many_arguments)]
fn run_attack_impl(
    floorplan: &Floorplan,
    nominal_powers: &[f64],
    tsv_fields: &[TsvField],
    stability: Option<&tsc3d_leakage::StabilityMap>,
    config: &AttackConfig,
    seed: u64,
    key_seed: u64,
    engine: TraceEngine,
    pool: Option<&Pool>,
    cancel: &CancelToken,
) -> Result<ScaOutcome, ScaError> {
    let _span = tsc3d_obs::span!("sca_attack");
    if let TraceEngine::Batched { batch_traces: 0 } = engine {
        return Err(ScaError::InvalidConfig {
            reason: "batch_traces must be >= 1".into(),
        });
    }
    let setup = prepare_attack(
        floorplan,
        nominal_powers,
        tsv_fields,
        stability,
        config,
        key_seed,
    )?;
    let points = config.sensors.points();
    let result = match engine {
        TraceEngine::Batched { batch_traces } => {
            let context = Arc::new(BatchContext {
                stamps: floorplan.power_stamps(setup.grid),
                solver: BatchTransientSolver::new(Arc::new(setup.solver)),
                workload: setup.workload,
                sensors: config.sensors,
                positions: setup.positions,
                seed,
                sample_dt: setup.sample_dt,
            });
            // Fixed-size lockstep batches (the last one may be short); the batch
            // boundary only affects scheduling and SoA lane width, never values.
            // (Manual ceiling division keeps the crate on the workspace's MSRV.)
            let mut chunks = Vec::with_capacity((config.traces + batch_traces - 1) / batch_traces);
            let mut lo = 0;
            while lo < config.traces {
                let hi = (lo + batch_traces).min(config.traces);
                chunks.push((lo, hi));
                lo = hi;
            }
            let mut cpa_sums = CpaAccumulator::new(
                &setup.key,
                config.workload.leakage,
                points,
                config.traces,
                config.mtd_checkpoints,
            );
            let transient_steps = stream_batches(
                context,
                chunks,
                pool,
                &mut cpa_sums,
                config.workload.key_bytes,
                points,
                cancel,
            )?;
            Ok(ScaOutcome {
                cpa: cpa_sums.finish(),
                target_module: setup.target,
                transient_steps,
            })
        }
        TraceEngine::Reference => {
            let context = Arc::new(TraceContext {
                solver: setup.solver,
                floorplan: floorplan.clone(),
                workload: setup.workload,
                sensors: config.sensors,
                positions: setup.positions,
                grid: setup.grid,
                seed,
                sample_dt: setup.sample_dt,
            });
            // Chunk the traces; the partition only affects scheduling, never values
            // (each trace owns a seeded rng and starts from a reset state).
            let workers = pool.map(Pool::threads).unwrap_or(0);
            let chunks = chunk_ranges(config.traces, (workers * 3).max(1));
            let results: Vec<ChunkTraces> = match pool {
                Some(pool) if pool.threads() > 0 => {
                    let context = Arc::clone(&context);
                    pool.run_batch(chunks, move |_, range| context.simulate(range))
                }
                _ => chunks
                    .into_iter()
                    .map(|range| context.simulate(range))
                    .collect(),
            };

            let mut set = TraceSet::new(config.workload.key_bytes, points);
            let mut transient_steps = 0u64;
            for chunk in &results {
                tsc3d_exec::checkpoint("sca-batch", cancel).map_err(ScaError::from_interrupt)?;
                transient_steps += chunk.steps;
                consume_chunk(&mut set, chunk, config.workload.key_bytes, points);
            }

            let cpa = run_cpa(
                &set,
                &setup.key,
                config.workload.leakage,
                config.mtd_checkpoints,
            );
            Ok(ScaOutcome {
                cpa,
                target_module: setup.target,
                transient_steps,
            })
        }
    };
    if let Ok(outcome) = &result {
        let metrics = crate::obs_metrics::get();
        metrics.attacks.inc();
        metrics.traces.add(config.traces as u64);
        metrics.transient_steps.add(outcome.transient_steps);
        tsc3d_obs::add_to_span("traces", config.traces as u64);
        tsc3d_obs::add_to_span("transient_steps", outcome.transient_steps);
    }
    result
}

/// Runs one attack evaluation out of a [`FlowResult`], against the chosen mitigation
/// state of the *same* floorplan.
///
/// # Errors
///
/// See [`run_attack`].
pub fn run_on_flow(
    design: &Design,
    flow: &FlowResult,
    config: &AttackConfig,
    seed: u64,
    key_seed: u64,
    mitigation: Mitigation,
    pool: Option<&Pool>,
) -> Result<ScaOutcome, ScaError> {
    run_on_flow_with(
        design,
        flow,
        config,
        seed,
        key_seed,
        mitigation,
        TraceEngine::default(),
        pool,
    )
}

/// [`run_on_flow`] with an explicit [`TraceEngine`] (see [`run_attack_with`]).
///
/// # Errors
///
/// See [`run_attack`].
#[allow(clippy::too_many_arguments)]
pub fn run_on_flow_with(
    design: &Design,
    flow: &FlowResult,
    config: &AttackConfig,
    seed: u64,
    key_seed: u64,
    mitigation: Mitigation,
    engine: TraceEngine,
    pool: Option<&Pool>,
) -> Result<ScaOutcome, ScaError> {
    run_on_flow_impl(
        design,
        flow,
        config,
        seed,
        key_seed,
        mitigation,
        engine,
        pool,
        &CancelToken::new(),
    )
}

/// [`run_on_flow`] polling `cancel` at the `sca-batch` checkpoint (once per consumed
/// trace chunk), so a running attack can be stopped — or bounded by a deadline — within
/// one chunk's worth of work. A run that completes is bit-identical to an uncancelled
/// [`run_on_flow`].
///
/// # Errors
///
/// See [`run_attack`], plus [`ScaError::Cancelled`]/[`ScaError::DeadlineExceeded`] when
/// the token fires mid-attack.
#[allow(clippy::too_many_arguments)]
pub fn run_on_flow_with_cancel(
    design: &Design,
    flow: &FlowResult,
    config: &AttackConfig,
    seed: u64,
    key_seed: u64,
    mitigation: Mitigation,
    pool: Option<&Pool>,
    cancel: &CancelToken,
) -> Result<ScaOutcome, ScaError> {
    run_on_flow_impl(
        design,
        flow,
        config,
        seed,
        key_seed,
        mitigation,
        TraceEngine::default(),
        pool,
        cancel,
    )
}

#[allow(clippy::too_many_arguments)]
fn run_on_flow_impl(
    design: &Design,
    flow: &FlowResult,
    config: &AttackConfig,
    seed: u64,
    key_seed: u64,
    mitigation: Mitigation,
    engine: TraceEngine,
    pool: Option<&Pool>,
    cancel: &CancelToken,
) -> Result<ScaOutcome, ScaError> {
    config.validate()?;
    let grid = flow.floorplan().analysis_grid(config.grid_bins);
    let fields = attack_tsv_fields(design, flow, grid, mitigation);
    run_attack_impl(
        flow.floorplan(),
        &flow.scaled_powers,
        &fields,
        flow.post_process.as_ref().map(|pp| &pp.stability),
        config,
        seed,
        key_seed,
        engine,
        pool,
        cancel,
    )
}

/// Evaluates the attack against both mitigation states of one [`FlowResult`] — identical
/// traces (same seeds), identical sensors, only the dummy TSVs differ — and returns the
/// [`ScaVerdict`].
///
/// # Errors
///
/// See [`run_attack`].
pub fn run_verdict(
    design: &Design,
    flow: &FlowResult,
    config: &AttackConfig,
    seed: u64,
    key_seed: u64,
    pool: Option<&Pool>,
) -> Result<ScaVerdict, ScaError> {
    run_verdict_with_cancel(
        design,
        flow,
        config,
        seed,
        key_seed,
        pool,
        &CancelToken::new(),
    )
}

/// [`run_verdict`] polling `cancel` at the `sca-batch` checkpoint (once per consumed
/// trace chunk of either mitigation state) — the serve daemon's cancellation and
/// deadline path.
///
/// A run that completes is bit-identical to an uncancelled [`run_verdict`]: the token is
/// only *read* at checkpoints and never touches the seeded trace streams.
///
/// # Errors
///
/// See [`run_attack`]; additionally [`ScaError::Cancelled`],
/// [`ScaError::DeadlineExceeded`] or [`ScaError::Fault`] when the token (or an armed
/// fault plan) fires mid-attack.
pub fn run_verdict_with_cancel(
    design: &Design,
    flow: &FlowResult,
    config: &AttackConfig,
    seed: u64,
    key_seed: u64,
    pool: Option<&Pool>,
    cancel: &CancelToken,
) -> Result<ScaVerdict, ScaError> {
    let baseline = run_on_flow_impl(
        design,
        flow,
        config,
        seed,
        key_seed,
        Mitigation::Baseline,
        TraceEngine::default(),
        pool,
        cancel,
    )?;
    let mitigated = run_on_flow_impl(
        design,
        flow,
        config,
        seed,
        key_seed,
        Mitigation::DummyTsvs,
        TraceEngine::default(),
        pool,
        cancel,
    )?;
    Ok(ScaVerdict {
        baseline,
        mitigated,
    })
}

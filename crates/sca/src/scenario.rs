//! End-to-end trace-level attack scenarios on flow-produced floorplans.
//!
//! A scenario takes the outputs of the TSC-aware flow — the floorplan, the
//! voltage-scaled block powers and the final TSV plan — and evaluates the CPA attack
//! twice out of the same [`FlowResult`]: once against the unmitigated baseline (signal
//! TSVs only) and once against the decorrelated floorplan (signal *plus* dummy TSVs),
//! reporting the [`ScaVerdict`]: did the mitigation raise the attacker's
//! measurements-to-disclosure?

use crate::cpa::{run_cpa, CpaResult, TraceSet};
use crate::sensor::SensorConfig;
use crate::workload::{derive_key, LeakageModel, Workload, WorkloadConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use tsc3d::FlowResult;
use tsc3d_exec::Pool;
use tsc3d_floorplan::{plan_signal_tsvs, Floorplan};
use tsc3d_geometry::{DieId, Grid, GridMap, GridPos};
use tsc3d_netlist::Design;
use tsc3d_thermal::{SolveError, ThermalConfig, TransientSolver, TsvField};

/// How the attacked module (the "crypto core") is chosen on the instrumented die.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TargetPolicy {
    /// The highest-powered block on the sensor die.
    HighestPower,
    /// The block nearest the die's power-density hotspot (argmax of the power map).
    Hotspot,
    /// The block nearest the flow's correlation-stability argmax — the most *stably*
    /// leaking location, i.e. the paper's own exploitability criterion (and the spot the
    /// dummy-TSV defense flattens first). Falls back to [`TargetPolicy::Hotspot`] when
    /// the flow ran without post-processing (no stability map).
    MostStable,
    /// An explicit module index (reproducing a known scenario).
    Block(usize),
}

impl TargetPolicy {
    /// Stable label used in records and submissions (`block:N` for explicit targets).
    pub fn label(self) -> String {
        match self {
            TargetPolicy::HighestPower => "highest-power".into(),
            TargetPolicy::Hotspot => "hotspot".into(),
            TargetPolicy::MostStable => "most-stable".into(),
            TargetPolicy::Block(index) => format!("block:{index}"),
        }
    }

    /// Parses [`TargetPolicy::label`].
    pub fn from_label(label: &str) -> Option<Self> {
        match label {
            "highest-power" => Some(TargetPolicy::HighestPower),
            "hotspot" => Some(TargetPolicy::Hotspot),
            "most-stable" => Some(TargetPolicy::MostStable),
            other => other
                .strip_prefix("block:")
                .and_then(|index| index.parse().ok())
                .map(TargetPolicy::Block),
        }
    }
}

/// The full configuration of one trace-level attack evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AttackConfig {
    /// Analysis-grid resolution (bins per axis) of the transient simulation.
    pub grid_bins: usize,
    /// Number of traces (encryptions) the attacker observes.
    pub traces: usize,
    /// How the attacked module is chosen.
    pub target: TargetPolicy,
    /// The key-dependent workload.
    pub workload: WorkloadConfig,
    /// The attacker's sensor array and acquisition chain.
    pub sensors: SensorConfig,
    /// Trace-count checkpoints at which disclosure is evaluated.
    pub mtd_checkpoints: usize,
}

impl AttackConfig {
    /// A fast configuration for tests and demos: a coarse grid, few traces, two key
    /// bytes.
    pub fn quick() -> Self {
        Self {
            grid_bins: 10,
            traces: 96,
            target: TargetPolicy::MostStable,
            workload: WorkloadConfig {
                key_bytes: 2,
                leakage: LeakageModel::HammingWeight,
                watts_per_hw: 0.08,
                background_sigma: 0.02,
            },
            sensors: SensorConfig {
                die: 0,
                sensors_per_axis: 3,
                samples_per_trace: 2,
                dwell_s: 0.01,
                sigma_k: 0.004,
                quantization_k: 0.002,
            },
            mtd_checkpoints: 12,
        }
    }

    /// The calibrated smoke configuration used by the campaign/serve sca smokes: a
    /// noise-limited sensing regime (long dwell into the conductance-dominated response,
    /// ~0.5 K sensor noise) with per-trace disclosure checkpoints, so the dummy-TSV
    /// mitigation's SNR reduction is resolvable as a strictly higher MTD.
    pub fn smoke() -> Self {
        Self {
            grid_bins: 10,
            traces: 192,
            target: TargetPolicy::MostStable,
            workload: WorkloadConfig {
                key_bytes: 2,
                leakage: LeakageModel::HammingWeight,
                watts_per_hw: 0.04,
                background_sigma: 0.02,
            },
            sensors: SensorConfig {
                die: 0,
                sensors_per_axis: 3,
                samples_per_trace: 1,
                dwell_s: 0.08,
                sigma_k: 0.5,
                quantization_k: 0.01,
            },
            mtd_checkpoints: 192,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ScaError::InvalidConfig`] describing the first problem.
    pub fn validate(&self) -> Result<(), ScaError> {
        let fail = |reason: String| Err(ScaError::InvalidConfig { reason });
        if self.grid_bins < 2 {
            return fail(format!("grid_bins must be >= 2, got {}", self.grid_bins));
        }
        if self.traces < 8 {
            return fail(format!("traces must be >= 8, got {}", self.traces));
        }
        if !(1..=16).contains(&self.workload.key_bytes) {
            return fail(format!(
                "key_bytes must be in 1..=16, got {}",
                self.workload.key_bytes
            ));
        }
        if !(self.workload.watts_per_hw > 0.0 && self.workload.watts_per_hw.is_finite()) {
            return fail(format!(
                "watts_per_hw must be positive and finite, got {}",
                self.workload.watts_per_hw
            ));
        }
        if self.workload.background_sigma < 0.0 {
            return fail("background_sigma must be non-negative".into());
        }
        if self.sensors.sensors_per_axis == 0 || self.sensors.samples_per_trace == 0 {
            return fail("the sensor array and sampling must be non-empty".into());
        }
        if !(self.sensors.dwell_s > 0.0 && self.sensors.dwell_s.is_finite()) {
            return fail(format!(
                "dwell_s must be positive and finite, got {}",
                self.sensors.dwell_s
            ));
        }
        if self.sensors.sigma_k < 0.0 || self.sensors.quantization_k < 0.0 {
            return fail("sensor sigma and quantization must be non-negative".into());
        }
        if self.mtd_checkpoints == 0 {
            return fail("mtd_checkpoints must be >= 1".into());
        }
        Ok(())
    }
}

/// Errors of a scenario run.
#[derive(Debug, Clone, PartialEq)]
pub enum ScaError {
    /// The attack configuration is invalid.
    InvalidConfig {
        /// What is wrong.
        reason: String,
    },
    /// The transient engine rejected its inputs.
    Solve(SolveError),
    /// The attacker's die hosts no modules (no target to monitor).
    NoTargetModule {
        /// The instrumented die.
        die: usize,
    },
}

impl std::fmt::Display for ScaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScaError::InvalidConfig { reason } => write!(f, "invalid sca config: {reason}"),
            ScaError::Solve(e) => write!(f, "transient setup failed: {e}"),
            ScaError::NoTargetModule { die } => {
                write!(f, "no module placed on the instrumented die {die}")
            }
        }
    }
}

impl std::error::Error for ScaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ScaError::Solve(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SolveError> for ScaError {
    fn from(e: SolveError) -> Self {
        ScaError::Solve(e)
    }
}

impl ScaError {
    /// Stable variant tag for failure aggregation.
    pub fn kind(&self) -> &'static str {
        match self {
            ScaError::InvalidConfig { .. } => "sca-invalid-config",
            ScaError::Solve(_) => "sca-solve",
            ScaError::NoTargetModule { .. } => "sca-no-target",
        }
    }
}

/// The outcome of one attack evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScaOutcome {
    /// The full CPA result.
    pub cpa: CpaResult,
    /// The module the workload keyed (index into the design's blocks).
    pub target_module: usize,
    /// Transient grid steps simulated (the hot-loop count behind traces/sec).
    pub transient_steps: u64,
}

impl ScaOutcome {
    /// Recovered key bytes.
    pub fn recovered_bytes(&self) -> usize {
        self.cpa.recovered_bytes()
    }

    /// Attacked key bytes.
    pub fn key_bytes(&self) -> usize {
        self.cpa.bytes.len()
    }

    /// Guessing entropy in bits.
    pub fn guessing_entropy_bits(&self) -> f64 {
        self.cpa.guessing_entropy_bits()
    }

    /// Measurements to full-key disclosure (`None` = key not recovered).
    pub fn mtd_traces(&self) -> Option<usize> {
        self.cpa.mtd_traces()
    }

    /// Best absolute correlation of any guess.
    pub fn best_correlation(&self) -> f64 {
        self.cpa.best_correlation()
    }
}

/// Whether to evaluate the attack against the mitigated or the unmitigated floorplan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Mitigation {
    /// Signal TSVs only — the floorplan before the decorrelation post-process.
    Baseline,
    /// Signal plus the flow's dummy thermal TSVs.
    DummyTsvs,
}

impl Mitigation {
    /// Stable label ("baseline" / "mitigated").
    pub fn label(self) -> &'static str {
        match self {
            Mitigation::Baseline => "baseline",
            Mitigation::DummyTsvs => "mitigated",
        }
    }

    /// Parses [`Mitigation::label`].
    pub fn from_label(label: &str) -> Option<Self> {
        match label {
            "baseline" => Some(Mitigation::Baseline),
            "mitigated" => Some(Mitigation::DummyTsvs),
            _ => None,
        }
    }
}

/// The side-by-side evaluation out of one [`FlowResult`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScaVerdict {
    /// The attack against the signal-TSV-only floorplan.
    pub baseline: ScaOutcome,
    /// The attack against the dummy-TSV-decorrelated floorplan.
    pub mitigated: ScaOutcome,
}

impl ScaVerdict {
    /// `true` when the mitigation measurably hurt the attacker: strictly higher MTD, or
    /// the key (or more of it) stays unrecovered.
    pub fn mitigation_effective(&self) -> bool {
        match (self.baseline.mtd_traces(), self.mitigated.mtd_traces()) {
            (Some(base), Some(mitigated)) => mitigated > base,
            (Some(_), None) => true,
            (None, None) => self.mitigated.recovered_bytes() < self.baseline.recovered_bytes(),
            (None, Some(_)) => false,
        }
    }

    /// The MTD gain factor (`mitigated / baseline`), `None` when either side lacks a
    /// finite MTD.
    pub fn mtd_gain(&self) -> Option<f64> {
        match (self.baseline.mtd_traces(), self.mitigated.mtd_traces()) {
            (Some(base), Some(mitigated)) if base > 0 => Some(mitigated as f64 / base as f64),
            _ => None,
        }
    }
}

/// The TSV fields the attack sees on its own analysis grid: the signal TSVs re-planned
/// for the grid, plus (for [`Mitigation::DummyTsvs`]) the flow's dummy sites re-splatted
/// onto it.
pub fn attack_tsv_fields(
    design: &Design,
    flow: &FlowResult,
    grid: Grid,
    mitigation: Mitigation,
) -> Vec<TsvField> {
    let mut plan = plan_signal_tsvs(design, flow.floorplan(), grid);
    if mitigation == Mitigation::DummyTsvs {
        for (interface, field) in flow.final_tsv_plan.dummy().iter().enumerate() {
            for site in field.sites() {
                plan.add_dummy(interface, *site);
            }
        }
    }
    plan.combined()
}

/// The block on `die` whose centre lies nearest `point` (ties towards the lowest id).
fn nearest_block_on_die(
    floorplan: &Floorplan,
    die: usize,
    point: tsc3d_geometry::Point,
) -> Option<usize> {
    let mut best: Option<(f64, usize)> = None;
    for placement in floorplan.placements() {
        if placement.die != DieId(die) {
            continue;
        }
        let index = placement.block.index();
        let distance = placement.rect.center().distance(point);
        let better = match best {
            None => true,
            Some((best_distance, _)) => distance < best_distance,
        };
        if better {
            best = Some((distance, index));
        }
    }
    best.map(|(_, index)| index)
}

/// Resolves the attacked module under a [`TargetPolicy`].
///
/// `grid` is the attack's analysis grid (hotspot policies), `stability` the flow's
/// correlation-stability map when available (its own grid may differ from `grid`).
///
/// # Errors
///
/// Returns [`ScaError::NoTargetModule`] when the die hosts no blocks, or
/// [`ScaError::InvalidConfig`] for an out-of-range explicit block.
pub fn resolve_target(
    policy: TargetPolicy,
    floorplan: &Floorplan,
    powers: &[f64],
    die: usize,
    grid: Grid,
    stability: Option<&tsc3d_leakage::StabilityMap>,
) -> Result<usize, ScaError> {
    match policy {
        TargetPolicy::Block(index) => {
            if index >= powers.len() {
                return Err(ScaError::InvalidConfig {
                    reason: format!(
                        "explicit target block {index} outside the {}-module design",
                        powers.len()
                    ),
                });
            }
            Ok(index)
        }
        TargetPolicy::HighestPower => {
            let mut best: Option<(f64, usize)> = None;
            for placement in floorplan.placements() {
                if placement.die != DieId(die) {
                    continue;
                }
                let index = placement.block.index();
                let power = powers[index];
                let better = match best {
                    None => true,
                    Some((best_power, _)) => power > best_power,
                };
                if better {
                    best = Some((power, index));
                }
            }
            best.map(|(_, index)| index)
                .ok_or(ScaError::NoTargetModule { die })
        }
        TargetPolicy::Hotspot => {
            let map = &floorplan.power_maps(grid, powers)[die];
            let centre = grid.bin_center(map.argmax());
            nearest_block_on_die(floorplan, die, centre).ok_or(ScaError::NoTargetModule { die })
        }
        TargetPolicy::MostStable => match stability {
            Some(stability) => {
                let (pos, _) = stability.most_stable();
                let centre = stability.map().grid().bin_center(pos);
                nearest_block_on_die(floorplan, die, centre).ok_or(ScaError::NoTargetModule { die })
            }
            None => resolve_target(TargetPolicy::Hotspot, floorplan, powers, die, grid, None),
        },
    }
}

/// The immutable context shared by every trace simulation of one evaluation.
struct TraceContext {
    solver: TransientSolver,
    floorplan: Floorplan,
    workload: Workload,
    sensors: SensorConfig,
    positions: Vec<GridPos>,
    grid: Grid,
    seed: u64,
    sample_dt: f64,
}

/// One chunk's simulated traces, in trace order.
struct ChunkTraces {
    plaintexts: Vec<u8>,
    samples: Vec<f64>,
    steps: u64,
}

impl TraceContext {
    /// Simulates the traces `range.0..range.1`, each from its own seeded rng, resetting
    /// the (chunk-reused) state to ambient per trace.
    fn simulate(&self, range: (usize, usize)) -> ChunkTraces {
        let (lo, hi) = range;
        let key_bytes = self.workload.config().key_bytes;
        let points = self.sensors.points();
        let mut out = ChunkTraces {
            plaintexts: Vec::with_capacity((hi - lo) * key_bytes),
            samples: Vec::with_capacity((hi - lo) * points),
            steps: 0,
        };
        let mut state = self.solver.state();
        let mut maps: Vec<GridMap> = Vec::new();
        for trace in lo..hi {
            let mut rng = ChaCha8Rng::seed_from_u64(trace_seed(self.seed, trace as u64));
            let activity = self.workload.draw_trace(&mut rng);
            self.floorplan
                .power_maps_into(self.grid, &activity.powers, &mut maps);
            self.solver.reset(&mut state);
            self.solver
                .set_power(&mut state, &maps)
                .expect("power maps are built on the solver grid");
            for _ in 0..self.sensors.samples_per_trace {
                out.steps += self.solver.advance(&mut state, self.sample_dt) as u64;
                for &pos in &self.positions {
                    let true_t = self.solver.temperature_at(&state, self.sensors.die, pos);
                    out.samples.push(self.sensors.acquire(true_t, &mut rng));
                }
            }
            out.plaintexts.extend_from_slice(&activity.plaintexts);
        }
        out
    }
}

/// The per-trace seed: decorrelates consecutive trace indices (SplitMix64 finalizer).
fn trace_seed(seed: u64, trace: u64) -> u64 {
    let mut z = seed
        .wrapping_add(trace.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs one attack evaluation against explicit TSV fields.
///
/// `nominal_powers` are the per-block baseline powers (voltage-scaled); `stability` is
/// the flow's correlation-stability map when available (the
/// [`TargetPolicy::MostStable`] input); `seed` drives the traces (plaintexts, background
/// traffic, sensor noise) and `key_seed` the secret key. With a pool, trace simulation
/// fans out over the workers; the per-trace seeding makes the result **bit-identical**
/// for any worker count (including none).
///
/// # Errors
///
/// Returns a [`ScaError`] for invalid configurations, mismatched TSV fields, or a die
/// without modules.
#[allow(clippy::too_many_arguments)]
pub fn run_attack(
    floorplan: &Floorplan,
    nominal_powers: &[f64],
    tsv_fields: &[TsvField],
    stability: Option<&tsc3d_leakage::StabilityMap>,
    config: &AttackConfig,
    seed: u64,
    key_seed: u64,
    pool: Option<&Pool>,
) -> Result<ScaOutcome, ScaError> {
    config.validate()?;
    if config.sensors.die >= floorplan.stack().dies() {
        return Err(ScaError::InvalidConfig {
            reason: format!(
                "sensor die {} outside the {}-die stack",
                config.sensors.die,
                floorplan.stack().dies()
            ),
        });
    }
    let grid = floorplan.analysis_grid(config.grid_bins);
    let thermal_config = ThermalConfig::default_for(floorplan.stack());
    let solver = TransientSolver::new(&thermal_config, grid, tsv_fields)?;
    let target = resolve_target(
        config.target,
        floorplan,
        nominal_powers,
        config.sensors.die,
        grid,
        stability,
    )?;
    let key = derive_key(key_seed, config.workload.key_bytes);
    let workload = Workload::new(
        config.workload,
        key.clone(),
        nominal_powers.to_vec(),
        target,
    );
    let positions = config.sensors.positions(grid);

    let context = Arc::new(TraceContext {
        solver,
        floorplan: floorplan.clone(),
        workload,
        sensors: config.sensors,
        positions,
        grid,
        seed,
        sample_dt: config.sensors.dwell_s / config.sensors.samples_per_trace as f64,
    });

    // Chunk the traces; the partition only affects scheduling, never values (each trace
    // owns a seeded rng and starts from a reset state).
    let workers = pool.map(Pool::threads).unwrap_or(0);
    let chunk_count = (workers * 3).clamp(1, config.traces);
    let mut chunks = Vec::with_capacity(chunk_count);
    for c in 0..chunk_count {
        let lo = c * config.traces / chunk_count;
        let hi = (c + 1) * config.traces / chunk_count;
        if lo < hi {
            chunks.push((lo, hi));
        }
    }
    let results: Vec<ChunkTraces> = match pool {
        Some(pool) if pool.threads() > 0 => {
            let context = Arc::clone(&context);
            pool.run_batch(chunks, move |_, range| context.simulate(range))
        }
        _ => chunks
            .into_iter()
            .map(|range| context.simulate(range))
            .collect(),
    };

    let points = config.sensors.points();
    let mut set = TraceSet::new(config.workload.key_bytes, points);
    let mut transient_steps = 0u64;
    for chunk in &results {
        transient_steps += chunk.steps;
        let traces = chunk.plaintexts.len() / config.workload.key_bytes;
        for t in 0..traces {
            set.push_trace(
                &chunk.plaintexts
                    [t * config.workload.key_bytes..(t + 1) * config.workload.key_bytes],
                &chunk.samples[t * points..(t + 1) * points],
            );
        }
    }

    let cpa = run_cpa(&set, &key, config.workload.leakage, config.mtd_checkpoints);
    Ok(ScaOutcome {
        cpa,
        target_module: target,
        transient_steps,
    })
}

/// Runs one attack evaluation out of a [`FlowResult`], against the chosen mitigation
/// state of the *same* floorplan.
///
/// # Errors
///
/// See [`run_attack`].
pub fn run_on_flow(
    design: &Design,
    flow: &FlowResult,
    config: &AttackConfig,
    seed: u64,
    key_seed: u64,
    mitigation: Mitigation,
    pool: Option<&Pool>,
) -> Result<ScaOutcome, ScaError> {
    config.validate()?;
    let grid = flow.floorplan().analysis_grid(config.grid_bins);
    let fields = attack_tsv_fields(design, flow, grid, mitigation);
    run_attack(
        flow.floorplan(),
        &flow.scaled_powers,
        &fields,
        flow.post_process.as_ref().map(|pp| &pp.stability),
        config,
        seed,
        key_seed,
        pool,
    )
}

/// Evaluates the attack against both mitigation states of one [`FlowResult`] — identical
/// traces (same seeds), identical sensors, only the dummy TSVs differ — and returns the
/// [`ScaVerdict`].
///
/// # Errors
///
/// See [`run_attack`].
pub fn run_verdict(
    design: &Design,
    flow: &FlowResult,
    config: &AttackConfig,
    seed: u64,
    key_seed: u64,
    pool: Option<&Pool>,
) -> Result<ScaVerdict, ScaError> {
    let baseline = run_on_flow(
        design,
        flow,
        config,
        seed,
        key_seed,
        Mitigation::Baseline,
        pool,
    )?;
    let mitigated = run_on_flow(
        design,
        flow,
        config,
        seed,
        key_seed,
        Mitigation::DummyTsvs,
        pool,
    )?;
    Ok(ScaVerdict {
        baseline,
        mitigated,
    })
}

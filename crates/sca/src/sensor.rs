//! The attacker's sensor model: what a trace-level adversary actually reads.
//!
//! Unlike the steady-state oracles of `tsc3d-attack` (full noise-free maps, the paper's
//! worst case for the defender), a trace-level attacker samples a *finite sensor array*
//! at a *finite rate* through an *ADC*: placement on the exposed die, a sampling period,
//! quantization, and Gaussian noise. The noise convention (seeded ChaCha8 + Box–Muller)
//! is shared with [`tsc3d_attack::NoisyOracle`] via [`tsc3d_attack::standard_normal`].

use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use tsc3d_attack::standard_normal;
use tsc3d_geometry::{Grid, GridPos};

/// Configuration of the attacker's sensor array and acquisition chain.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SensorConfig {
    /// The die the attacker instruments (0 = bottom die, the package-exposed side of the
    /// default stack).
    pub die: usize,
    /// Sensors per axis: an `s × s` array spread uniformly over the die outline.
    pub sensors_per_axis: usize,
    /// Temporal samples taken per trace, spread evenly over the dwell.
    pub samples_per_trace: usize,
    /// Observed dwell per trace in seconds (the window the crypto core repeats the
    /// encryption of one plaintext — thermal integration time).
    pub dwell_s: f64,
    /// Gaussian sensor noise (standard deviation) in kelvin.
    pub sigma_k: f64,
    /// ADC quantization step in kelvin; `0` models an ideal readout.
    pub quantization_k: f64,
}

impl SensorConfig {
    /// Number of observation points per trace (`sensors × temporal samples`).
    pub fn points(&self) -> usize {
        self.sensors_per_axis * self.sensors_per_axis * self.samples_per_trace
    }

    /// The grid bins the sensor array lands on: an `s × s` array at the centres of a
    /// uniform partition of the die outline.
    pub fn positions(&self, grid: Grid) -> Vec<GridPos> {
        let s = self.sensors_per_axis;
        let mut out = Vec::with_capacity(s * s);
        for row in 0..s {
            for col in 0..s {
                // Centre of cell (col, row) of an s×s partition, mapped to a grid bin.
                let c = ((2 * col + 1) * grid.cols()) / (2 * s);
                let r = ((2 * row + 1) * grid.rows()) / (2 * s);
                out.push(GridPos::new(c.min(grid.cols() - 1), r.min(grid.rows() - 1)));
            }
        }
        out
    }

    /// Applies the acquisition chain to one true temperature: noise, then quantization.
    #[inline]
    pub fn acquire(&self, true_temperature: f64, rng: &mut ChaCha8Rng) -> f64 {
        let noisy = true_temperature + self.sigma_k * standard_normal(rng);
        if self.quantization_k > 0.0 {
            (noisy / self.quantization_k).round() * self.quantization_k
        } else {
            noisy
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use tsc3d_geometry::Rect;

    fn config(sigma: f64, quant: f64) -> SensorConfig {
        SensorConfig {
            die: 0,
            sensors_per_axis: 3,
            samples_per_trace: 2,
            dwell_s: 0.01,
            sigma_k: sigma,
            quantization_k: quant,
        }
    }

    #[test]
    fn positions_cover_the_die_without_duplicates() {
        let grid = Grid::square(Rect::from_size(1000.0, 1000.0), 12);
        let positions = config(0.0, 0.0).positions(grid);
        assert_eq!(positions.len(), 9);
        let mut unique = positions.clone();
        unique.sort_by_key(|p| (p.row, p.col));
        unique.dedup();
        assert_eq!(
            unique.len(),
            9,
            "sensor bins must be distinct on a 12-bin grid"
        );
        // The centre sensor sits at the grid centre.
        assert_eq!(positions[4], GridPos::new(6, 6));
        assert!(positions.iter().all(|p| p.col < 12 && p.row < 12));
    }

    #[test]
    fn points_counts_sensors_times_samples() {
        assert_eq!(config(0.0, 0.0).points(), 18);
    }

    #[test]
    fn ideal_acquisition_is_transparent() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let c = config(0.0, 0.0);
        assert_eq!(c.acquire(300.25, &mut rng), 300.25);
    }

    #[test]
    fn quantization_snaps_to_the_lsb() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let c = config(0.0, 0.125);
        let q = c.acquire(300.30, &mut rng);
        assert_eq!(q, 300.25);
    }

    #[test]
    fn noise_is_seed_deterministic() {
        let c = config(0.5, 0.0);
        let a = c.acquire(300.0, &mut ChaCha8Rng::seed_from_u64(9));
        let b = c.acquire(300.0, &mut ChaCha8Rng::seed_from_u64(9));
        assert_eq!(a, b);
        assert_ne!(a, 300.0);
    }
}

//! Key-dependent workload generation: the toy AES-128 first-round S-box target and its
//! Hamming-weight/Hamming-distance power models, plus Gaussian background traffic layered
//! on the `tsc3d_power::activity` conventions.

use rand::Rng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use tsc3d_power::ActivitySampler;

/// The AES S-box (the first-round SubBytes table).
pub const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

/// How the target's power depends on the processed data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LeakageModel {
    /// Hamming weight of the S-box output — the classic CPA model for precharged buses.
    HammingWeight,
    /// Hamming distance between the S-box input and output — the register-overwrite model.
    HammingDistance,
}

impl LeakageModel {
    /// The leakage (in abstract "bit-flip" units) of one S-box evaluation with plaintext
    /// byte `plaintext` under key byte `key`.
    #[inline]
    pub fn leakage(self, plaintext: u8, key: u8) -> u32 {
        let out = SBOX[(plaintext ^ key) as usize];
        match self {
            LeakageModel::HammingWeight => out.count_ones(),
            LeakageModel::HammingDistance => (out ^ plaintext).count_ones(),
        }
    }

    /// Stable label used in records and submissions.
    pub fn label(self) -> &'static str {
        match self {
            LeakageModel::HammingWeight => "hw",
            LeakageModel::HammingDistance => "hd",
        }
    }

    /// Parses [`LeakageModel::label`].
    pub fn from_label(label: &str) -> Option<Self> {
        match label {
            "hw" => Some(LeakageModel::HammingWeight),
            "hd" => Some(LeakageModel::HammingDistance),
            _ => None,
        }
    }
}

/// Configuration of the key-dependent workload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Number of key bytes the crypto core processes (and the attack targets), `1..=16`.
    pub key_bytes: usize,
    /// The data-dependent power model.
    pub leakage: LeakageModel,
    /// Extra target-module power per leakage unit, in watts. The data-dependent part of
    /// the trace: one encryption dwells on its inputs long enough for the thermal response
    /// to integrate this power delta (the repeated-input attacker of Gu et al.).
    pub watts_per_hw: f64,
    /// Relative sigma of the Gaussian background traffic on *all* modules (the
    /// `tsc3d_power::ActivitySampler` convention) — algorithmic noise for the attacker.
    pub background_sigma: f64,
}

/// Derives a deterministic AES key from a seed (one byte per attacked S-box).
pub fn derive_key(key_seed: u64, key_bytes: usize) -> Vec<u8> {
    use rand::SeedableRng;
    let mut rng = ChaCha8Rng::seed_from_u64(key_seed);
    (0..key_bytes).map(|_| rng.gen_range(0..=255u8)).collect()
}

/// One trace's activity: the plaintext bytes fed to the crypto core and the resulting
/// per-module power vector.
#[derive(Debug, Clone)]
pub struct TraceActivity {
    /// Plaintext byte per attacked S-box.
    pub plaintexts: Vec<u8>,
    /// Per-module power in watts (background traffic plus the key-dependent delta on the
    /// target module).
    pub powers: Vec<f64>,
    /// Total leakage units of this encryption (for diagnostics).
    pub leakage_units: u32,
}

/// The key-dependent workload of one scenario: a secret key inside a target module, plus
/// background traffic on every module.
#[derive(Debug, Clone)]
pub struct Workload {
    config: WorkloadConfig,
    key: Vec<u8>,
    background: ActivitySampler,
    target: usize,
}

impl Workload {
    /// Creates a workload.
    ///
    /// `nominal_powers` are the per-module baseline powers (typically the voltage-scaled
    /// powers of a finished flow); `target` is the module index hosting the crypto core.
    ///
    /// # Panics
    ///
    /// Panics if `key.len() != config.key_bytes`, `key_bytes` is outside `1..=16`, or
    /// `target` is out of range.
    pub fn new(
        config: WorkloadConfig,
        key: Vec<u8>,
        nominal_powers: Vec<f64>,
        target: usize,
    ) -> Self {
        assert!(
            (1..=16).contains(&config.key_bytes),
            "key_bytes must be in 1..=16"
        );
        assert_eq!(key.len(), config.key_bytes, "one key byte per S-box");
        assert!(target < nominal_powers.len(), "target module out of range");
        Self {
            config,
            key,
            background: ActivitySampler::with_means(nominal_powers, config.background_sigma),
            target,
        }
    }

    /// The secret key.
    pub fn key(&self) -> &[u8] {
        &self.key
    }

    /// The target module index.
    pub fn target(&self) -> usize {
        self.target
    }

    /// The workload configuration.
    pub fn config(&self) -> WorkloadConfig {
        self.config
    }

    /// Draws one trace: random plaintext bytes, background traffic, and the
    /// key-dependent power delta on the target module.
    ///
    /// The rng stream is consumed in a fixed order (plaintexts, then background), so a
    /// per-trace-seeded rng makes traces independent of execution order.
    pub fn draw_trace(&self, rng: &mut ChaCha8Rng) -> TraceActivity {
        let plaintexts: Vec<u8> = (0..self.config.key_bytes)
            .map(|_| rng.gen_range(0..=255u8))
            .collect();
        let leakage_units: u32 = plaintexts
            .iter()
            .zip(&self.key)
            .map(|(&p, &k)| self.config.leakage.leakage(p, k))
            .sum();
        let mut powers = self.background.sample(rng);
        powers[self.target] += self.config.watts_per_hw * leakage_units as f64;
        TraceActivity {
            plaintexts,
            powers,
            leakage_units,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn sbox_is_a_permutation() {
        let mut seen = [false; 256];
        for &v in SBOX.iter() {
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
        // Spot checks against FIPS-197.
        assert_eq!(SBOX[0x00], 0x63);
        assert_eq!(SBOX[0x53], 0xed);
        assert_eq!(SBOX[0xff], 0x16);
    }

    #[test]
    fn leakage_models_differ_and_stay_in_range() {
        for p in [0u8, 1, 0x53, 0xff] {
            for k in [0u8, 0xa5, 0x3c] {
                let hw = LeakageModel::HammingWeight.leakage(p, k);
                let hd = LeakageModel::HammingDistance.leakage(p, k);
                assert!(hw <= 8 && hd <= 8);
            }
        }
        // HW of SBOX[0] = HW(0x63) = 4.
        assert_eq!(LeakageModel::HammingWeight.leakage(0, 0), 4);
        assert_eq!(
            LeakageModel::from_label("hw"),
            Some(LeakageModel::HammingWeight)
        );
        assert_eq!(
            LeakageModel::from_label("hd"),
            Some(LeakageModel::HammingDistance)
        );
        assert_eq!(LeakageModel::from_label("xx"), None);
        assert_eq!(LeakageModel::HammingWeight.label(), "hw");
    }

    #[test]
    fn derived_keys_are_deterministic_and_seed_dependent() {
        assert_eq!(derive_key(7, 4), derive_key(7, 4));
        assert_ne!(derive_key(7, 4), derive_key(8, 4));
        assert_eq!(derive_key(7, 16).len(), 16);
    }

    #[test]
    fn traces_add_leakage_power_to_the_target_only() {
        let config = WorkloadConfig {
            key_bytes: 2,
            leakage: LeakageModel::HammingWeight,
            watts_per_hw: 0.1,
            background_sigma: 0.0,
        };
        let nominal = vec![1.0, 2.0, 0.5];
        let workload = Workload::new(config, derive_key(1, 2), nominal.clone(), 1);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let trace = workload.draw_trace(&mut rng);
        assert_eq!(trace.plaintexts.len(), 2);
        assert_eq!(trace.powers.len(), 3);
        // Zero background sigma: non-target modules sit exactly at nominal.
        assert_eq!(trace.powers[0], 1.0);
        assert_eq!(trace.powers[2], 0.5);
        let delta = trace.powers[1] - 2.0;
        assert!((delta - 0.1 * trace.leakage_units as f64).abs() < 1e-12);
    }

    #[test]
    fn per_trace_seeding_makes_traces_order_independent() {
        let config = WorkloadConfig {
            key_bytes: 1,
            leakage: LeakageModel::HammingDistance,
            watts_per_hw: 0.05,
            background_sigma: 0.1,
        };
        let workload = Workload::new(config, derive_key(2, 1), vec![1.0, 1.0], 0);
        let a = workload.draw_trace(&mut ChaCha8Rng::seed_from_u64(11));
        let b = workload.draw_trace(&mut ChaCha8Rng::seed_from_u64(11));
        assert_eq!(a.plaintexts, b.plaintexts);
        assert_eq!(a.powers, b.powers);
    }

    #[test]
    #[should_panic(expected = "key_bytes")]
    fn zero_key_bytes_rejected() {
        let config = WorkloadConfig {
            key_bytes: 0,
            leakage: LeakageModel::HammingWeight,
            watts_per_hw: 0.1,
            background_sigma: 0.0,
        };
        let _ = Workload::new(config, vec![], vec![1.0], 0);
    }
}

//! Trace-level thermal side-channel analysis (`tsc3d-sca`).
//!
//! The rest of the workspace scores *steady-state* thermal maps with correlation and
//! entropy statistics — defender-side metrics. This crate states the mitigation's value
//! in the **attacker's own currency**: it simulates a key-dependent workload over time,
//! reads the stack through a realistic sensor model, mounts a CPA attack, and reports
//! **measurements-to-disclosure (MTD)** — how many traces until the key falls — for the
//! dummy-TSV-decorrelated floorplan vs. the unmitigated baseline, both derived from the
//! *same* [`tsc3d::FlowResult`]. The approach follows the trace-based thermal attacks of
//! Gu et al. ("Thermal-Aware 3D Design for Side-Channel Information Leakage") layered on
//! this repo's flow.
//!
//! The pipeline has four layers:
//!
//! 1. **Workload** ([`workload`]): a toy AES-128 first-round S-box target. Each trace is
//!    one encryption of a random plaintext dwelt on long enough for the thermal response
//!    to integrate the data-dependent power (Hamming-weight or Hamming-distance model),
//!    plus Gaussian background traffic on every module (the
//!    [`tsc3d_power::ActivitySampler`] convention).
//! 2. **Transient thermal simulation**: the spatial engine
//!    [`tsc3d_thermal::TransientSolver`] steps the flow's floorplan (power maps, signal
//!    and dummy TSVs) through each trace's dwell.
//! 3. **Sensors** ([`sensor`]): an `s × s` array on the exposed die, sampled at a finite
//!    period, quantized and noisy (the [`tsc3d_attack::NoisyOracle`] noise conventions).
//! 4. **CPA + MTD** ([`cpa`]): Pearson correlation of hypothetical leakage against the
//!    sensor traces per key-byte guess — recovered bytes, guessing entropy and MTD, with
//!    disclosure evaluated at checkpoints so MTD is a first-class number.
//!
//! [`scenario::run_verdict`] ties it together: identical traces against both mitigation
//! states of one flow, returning a [`ScaVerdict`]. Every stage is deterministic under a
//! seed, with per-trace rng streams, so results are bit-identical for any
//! [`tsc3d_exec::Pool`] worker count — the property the campaign layer's resumable,
//! sharded sca jobs rely on.
//!
//! # Example
//!
//! ```no_run
//! use tsc3d::{FlowConfig, Setup, TscFlow};
//! use tsc3d_netlist::suite::{generate, Benchmark};
//! use tsc3d_sca::{run_verdict, AttackConfig};
//!
//! let design = generate(Benchmark::N100, 1);
//! let flow = TscFlow::new(FlowConfig::quick(Setup::TscAware))
//!     .run(&design, 3)
//!     .unwrap();
//! let verdict = run_verdict(&design, &flow, &AttackConfig::quick(), 7, 11, None).unwrap();
//! println!(
//!     "baseline MTD {:?}, mitigated MTD {:?}",
//!     verdict.baseline.mtd_traces(),
//!     verdict.mitigated.mtd_traces()
//! );
//! ```

#![warn(missing_docs)]

pub mod cpa;
pub mod scenario;
pub mod sensor;
pub mod workload;

/// Cached handles into the global registry for the `tsc3d_sca_*` metric family
/// (shared by the scenario engine and the CPA accumulator).
pub(crate) mod obs_metrics {
    pub(crate) struct ScaMetrics {
        /// Attack evaluations completed (one per mitigation state).
        pub attacks: tsc3d_obs::Counter,
        /// Simulated traces (observed encryptions) across all attacks.
        pub traces: tsc3d_obs::Counter,
        /// Explicit-Euler transient steps across all attacks.
        pub transient_steps: tsc3d_obs::Counter,
        /// CPA disclosure checkpoints evaluated.
        pub cpa_checkpoints: tsc3d_obs::Counter,
    }

    pub(crate) fn get() -> &'static ScaMetrics {
        static METRICS: std::sync::OnceLock<ScaMetrics> = std::sync::OnceLock::new();
        METRICS.get_or_init(|| {
            let registry = tsc3d_obs::global();
            ScaMetrics {
                attacks: registry.counter(
                    "tsc3d_sca_attacks_total",
                    "Trace-level attack evaluations completed",
                ),
                traces: registry.counter(
                    "tsc3d_sca_traces_total",
                    "Thermal traces simulated (one per observed encryption)",
                ),
                transient_steps: registry.counter(
                    "tsc3d_sca_transient_steps_total",
                    "Explicit-Euler transient steps performed by trace simulations",
                ),
                cpa_checkpoints: registry.counter(
                    "tsc3d_sca_cpa_checkpoints_total",
                    "CPA disclosure checkpoints evaluated",
                ),
            }
        })
    }
}

pub use cpa::{run_cpa, ByteResult, CpaAccumulator, CpaResult, TraceConsumer, TraceSet};
pub use scenario::{
    attack_tsv_fields, resolve_target, run_attack, run_attack_with, run_on_flow, run_on_flow_with,
    run_on_flow_with_cancel, run_verdict, run_verdict_with_cancel, AttackConfig, Mitigation,
    ScaError, ScaOutcome, ScaVerdict, TargetPolicy, TraceEngine,
};
pub use sensor::SensorConfig;
pub use workload::{derive_key, LeakageModel, TraceActivity, Workload, WorkloadConfig, SBOX};

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;
    use tsc3d::{FlowConfig, FlowResult, Setup, TscFlow};
    use tsc3d_exec::Pool;
    use tsc3d_netlist::suite::{generate, Benchmark};
    use tsc3d_netlist::Design;

    /// One shared quick flow for every end-to-end test (the flow is the expensive part).
    fn flow_fixture() -> &'static (Design, FlowResult) {
        static FIXTURE: OnceLock<(Design, FlowResult)> = OnceLock::new();
        FIXTURE.get_or_init(|| {
            let design = generate(Benchmark::N100, 1);
            let mut config = FlowConfig::quick(Setup::TscAware);
            config.schedule.stages = 6;
            config.schedule.moves_per_stage = 10;
            config.schedule.grid_bins = 12;
            config.verification_bins = 12;
            let flow = TscFlow::new(config)
                .run(&design, 3)
                .expect("quick flow converges");
            (design, flow)
        })
    }

    fn test_config() -> AttackConfig {
        let mut config = AttackConfig::quick();
        config.grid_bins = 8;
        config.traces = 64;
        config.sensors.samples_per_trace = 1;
        config.sensors.dwell_s = 0.008;
        config.mtd_checkpoints = 8;
        config
    }

    #[test]
    fn cpa_recovers_the_key_at_zero_noise() {
        let (design, flow) = flow_fixture();
        let mut config = test_config();
        config.sensors.sigma_k = 0.0;
        config.sensors.quantization_k = 0.0;
        config.workload.background_sigma = 0.0;
        let outcome =
            run_on_flow(design, flow, &config, 5, 11, Mitigation::Baseline, None).unwrap();
        assert_eq!(
            outcome.recovered_bytes(),
            outcome.key_bytes(),
            "noise-free traces must disclose the key (entropy {})",
            outcome.guessing_entropy_bits()
        );
        assert!(outcome.mtd_traces().is_some());
        assert!(outcome.best_correlation() > 0.5);
        assert!(outcome.transient_steps > 0);
    }

    #[test]
    fn cpa_fails_at_saturating_noise() {
        let (design, flow) = flow_fixture();
        let mut config = test_config();
        config.sensors.sigma_k = 1e4;
        let outcome =
            run_on_flow(design, flow, &config, 5, 11, Mitigation::Baseline, None).unwrap();
        assert!(
            outcome.recovered_bytes() < outcome.key_bytes(),
            "saturating sensor noise must defeat the attack"
        );
        assert!(outcome.mtd_traces().is_none());
    }

    #[test]
    fn attack_is_bit_identical_across_worker_counts() {
        let (design, flow) = flow_fixture();
        let config = test_config();
        let serial = run_on_flow(design, flow, &config, 5, 11, Mitigation::Baseline, None).unwrap();
        for workers in [2usize, 5] {
            let pool = Pool::new(workers);
            let pooled = run_on_flow(
                design,
                flow,
                &config,
                5,
                11,
                Mitigation::Baseline,
                Some(&pool),
            )
            .unwrap();
            assert_eq!(pooled, serial, "{workers} workers");
            pool.shutdown();
        }
    }

    #[test]
    fn batched_engine_is_bit_identical_to_the_reference_engine() {
        let (design, flow) = flow_fixture();
        let config = test_config();
        for mitigation in [Mitigation::Baseline, Mitigation::DummyTsvs] {
            let reference = run_on_flow_with(
                design,
                flow,
                &config,
                5,
                11,
                mitigation,
                TraceEngine::Reference,
                None,
            )
            .unwrap();
            for batch in [1usize, 3, 8] {
                let engine = TraceEngine::Batched {
                    batch_traces: batch,
                };
                let serial =
                    run_on_flow_with(design, flow, &config, 5, 11, mitigation, engine, None)
                        .unwrap();
                assert_eq!(serial, reference, "batch {batch}, serial, {:?}", mitigation);
                for workers in [1usize, 4] {
                    let pool = Pool::new(workers);
                    let pooled = run_on_flow_with(
                        design,
                        flow,
                        &config,
                        5,
                        11,
                        mitigation,
                        engine,
                        Some(&pool),
                    )
                    .unwrap();
                    assert_eq!(
                        pooled, reference,
                        "batch {batch}, {workers} workers, {:?}",
                        mitigation
                    );
                    pool.shutdown();
                }
            }
        }
    }

    #[test]
    fn zero_batch_size_is_rejected_typed() {
        let (design, flow) = flow_fixture();
        let config = test_config();
        let err = run_on_flow_with(
            design,
            flow,
            &config,
            5,
            11,
            Mitigation::Baseline,
            TraceEngine::Batched { batch_traces: 0 },
            None,
        )
        .unwrap_err();
        assert!(matches!(err, ScaError::InvalidConfig { .. }));
    }

    #[test]
    fn verdict_compares_the_same_floorplan_with_and_without_dummy_tsvs() {
        let (design, flow) = flow_fixture();
        let config = test_config();
        let verdict = run_verdict(design, flow, &config, 5, 11, None).unwrap();
        // Same target module, same key, same trace count on both sides.
        assert_eq!(
            verdict.baseline.target_module,
            verdict.mitigated.target_module
        );
        assert_eq!(verdict.baseline.cpa.traces, verdict.mitigated.cpa.traces);
        // The dummy TSVs change the thermal response, so the attacks must not be
        // literally identical (the flow inserted at least one dummy TSV).
        if flow.dummy_tsvs() > 0 {
            assert_ne!(verdict.baseline, verdict.mitigated);
        }
    }

    #[test]
    fn invalid_configs_fail_typed() {
        let (design, flow) = flow_fixture();
        let mut config = test_config();
        config.traces = 2;
        let err =
            run_on_flow(design, flow, &config, 5, 11, Mitigation::Baseline, None).unwrap_err();
        assert!(matches!(err, ScaError::InvalidConfig { .. }));
        assert_eq!(err.kind(), "sca-invalid-config");

        let mut config = test_config();
        config.sensors.die = 9;
        let err =
            run_on_flow(design, flow, &config, 5, 11, Mitigation::Baseline, None).unwrap_err();
        assert!(matches!(err, ScaError::InvalidConfig { .. }));
    }

    #[test]
    fn cancelled_and_expired_tokens_interrupt_the_attack_typed() {
        let (design, flow) = flow_fixture();
        let config = test_config();

        let cancel = tsc3d_exec::CancelToken::new();
        cancel.cancel(tsc3d_exec::CancelReason::User);
        let err = run_verdict_with_cancel(design, flow, &config, 5, 11, None, &cancel).unwrap_err();
        assert!(matches!(
            err,
            ScaError::Cancelled {
                reason: tsc3d_exec::CancelReason::User
            }
        ));
        assert_eq!(err.kind(), "cancelled");

        let expired = tsc3d_exec::CancelToken::new().with_deadline(std::time::Duration::ZERO);
        let err =
            run_verdict_with_cancel(design, flow, &config, 5, 11, None, &expired).unwrap_err();
        assert!(matches!(err, ScaError::DeadlineExceeded));
        assert_eq!(err.kind(), "deadline");
    }
}

//! Correlation power analysis (CPA) against sensor trace sets.
//!
//! For every key-byte guess the attack predicts the leakage of each trace's plaintext
//! under that guess and Pearson-correlates the prediction with every observation point
//! (sensor × temporal sample). The guess with the strongest absolute correlation wins;
//! the **measurements-to-disclosure** (MTD) of a byte is the smallest trace count from
//! which the true byte leads *and keeps leading* — the attacker's own currency, and the
//! metric this subsystem reports for mitigated vs. unmitigated floorplans.

use crate::workload::LeakageModel;
use serde::{Deserialize, Serialize};

/// The observations of one attack run: per trace, the plaintext bytes fed to the target
/// and the acquired sensor samples. Rows are appended in trace order, so a set assembled
/// from parallel chunks is identical to a serial one.
#[derive(Debug, Clone)]
pub struct TraceSet {
    key_bytes: usize,
    points: usize,
    /// `traces × key_bytes`, row-major.
    plaintexts: Vec<u8>,
    /// `traces × points`, row-major.
    samples: Vec<f64>,
}

impl TraceSet {
    /// Creates an empty set for `key_bytes` S-boxes and `points` observation points.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(key_bytes: usize, points: usize) -> Self {
        assert!(
            key_bytes > 0 && points > 0,
            "trace dimensions must be positive"
        );
        Self {
            key_bytes,
            points,
            plaintexts: Vec::new(),
            samples: Vec::new(),
        }
    }

    /// Appends one trace.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatches.
    pub fn push_trace(&mut self, plaintexts: &[u8], samples: &[f64]) {
        assert_eq!(
            plaintexts.len(),
            self.key_bytes,
            "one plaintext byte per S-box"
        );
        assert_eq!(
            samples.len(),
            self.points,
            "one sample per observation point"
        );
        self.plaintexts.extend_from_slice(plaintexts);
        self.samples.extend_from_slice(samples);
    }

    /// Number of traces collected.
    pub fn traces(&self) -> usize {
        self.plaintexts.len() / self.key_bytes
    }

    /// Observation points per trace.
    pub fn points(&self) -> usize {
        self.points
    }

    /// Attacked key bytes.
    pub fn key_bytes(&self) -> usize {
        self.key_bytes
    }

    fn plaintext_row(&self, trace: usize) -> &[u8] {
        &self.plaintexts[trace * self.key_bytes..(trace + 1) * self.key_bytes]
    }

    fn sample_row(&self, trace: usize) -> &[f64] {
        &self.samples[trace * self.points..(trace + 1) * self.points]
    }
}

/// The attack outcome for one key byte.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ByteResult {
    /// Index of the byte within the key.
    pub byte: usize,
    /// The true key byte (known to the evaluation, not the attacker).
    pub true_byte: u8,
    /// The attacker's best guess after all traces.
    pub best_guess: u8,
    /// Rank of the true byte among all 256 guesses (1 = recovered).
    pub rank: usize,
    /// The best absolute correlation achieved by the true byte's hypothesis.
    pub true_correlation: f64,
    /// The best absolute correlation achieved by any guess.
    pub best_correlation: f64,
    /// Measurements-to-disclosure: the smallest evaluated trace count from which the
    /// true byte leads at every later checkpoint; `None` if never (byte not recovered).
    pub mtd_traces: Option<usize>,
}

impl ByteResult {
    /// Whether the attack recovered this byte.
    pub fn recovered(&self) -> bool {
        self.rank == 1
    }
}

/// The full CPA outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpaResult {
    /// Per-byte outcomes, in key order.
    pub bytes: Vec<ByteResult>,
    /// Traces used.
    pub traces: usize,
    /// The trace-count checkpoints at which disclosure was evaluated (ascending; the
    /// last one equals [`CpaResult::traces`]).
    pub checkpoints: Vec<usize>,
}

impl CpaResult {
    /// Number of recovered bytes (rank 1).
    pub fn recovered_bytes(&self) -> usize {
        self.bytes.iter().filter(|b| b.recovered()).count()
    }

    /// Guessing entropy in bits: `Σ log2(rank)` over the key bytes (0 = full recovery).
    pub fn guessing_entropy_bits(&self) -> f64 {
        self.bytes.iter().map(|b| (b.rank as f64).log2()).sum()
    }

    /// Measurements to *full-key* disclosure: the largest per-byte MTD, or `None` when
    /// any byte stays unrecovered.
    pub fn mtd_traces(&self) -> Option<usize> {
        let mut worst = 0usize;
        for byte in &self.bytes {
            worst = worst.max(byte.mtd_traces?);
        }
        Some(worst)
    }

    /// The strongest absolute correlation any guess of any byte achieved.
    pub fn best_correlation(&self) -> f64 {
        self.bytes
            .iter()
            .map(|b| b.best_correlation)
            .fold(0.0, f64::max)
    }
}

/// Incremental per-guess accumulators of one key byte.
struct ByteAccumulator {
    /// `Σ h` per guess.
    sh: Vec<f64>,
    /// `Σ h²` per guess.
    sh2: Vec<f64>,
    /// `Σ h·o` per `(guess, point)`.
    sho: Vec<f64>,
    /// Best guess observed at each checkpoint.
    best_at_checkpoint: Vec<u8>,
}

/// A sink for simulated traces, delivered one at a time **in trace order**.
///
/// The streaming counterpart of assembling a [`TraceSet`]: the batched scenario engine
/// feeds each trace's plaintexts and samples into a consumer the moment they exist, so
/// whole trace sets never materialise. [`TraceSet`] implements the trait (materialise
/// everything) and [`CpaAccumulator`] implements it by folding the trace into the CPA
/// running sums — memory `O(points)` per trace instead of `O(traces × points)` total.
pub trait TraceConsumer {
    /// Consumes the next trace: one plaintext byte per attacked S-box, one sample per
    /// observation point.
    fn consume_trace(&mut self, plaintexts: &[u8], samples: &[f64]);
}

impl TraceConsumer for TraceSet {
    fn consume_trace(&mut self, plaintexts: &[u8], samples: &[f64]) {
        self.push_trace(plaintexts, samples);
    }
}

/// The streaming form of [`run_cpa`]: CPA running sums folded over traces as they
/// arrive, producing the **identical** [`CpaResult`] (same loop body, same operand
/// order) without ever materialising the trace set.
///
/// The total trace count is declared up front (it fixes the disclosure checkpoints);
/// feed exactly that many traces via [`TraceConsumer::consume_trace`] (or
/// [`CpaAccumulator::push`]), then call [`CpaAccumulator::finish`].
pub struct CpaAccumulator {
    key: Vec<u8>,
    model: LeakageModel,
    points: usize,
    traces: usize,
    marks: Vec<usize>,
    bytes: Vec<ByteAccumulator>,
    /// `Σ o` per point.
    so: Vec<f64>,
    /// `Σ o²` per point.
    so2: Vec<f64>,
    /// Final-checkpoint metric per (byte, guess), filled at the last mark.
    final_metric: Vec<Vec<f64>>,
    next_mark: usize,
    seen: usize,
}

impl CpaAccumulator {
    /// Creates the accumulator for an attack of `traces` traces against `key`, with
    /// `points` observation points per trace and disclosure evaluated at `checkpoints`
    /// evenly spaced trace counts (the last one being the full set).
    ///
    /// # Panics
    ///
    /// Panics if `key` is empty or any count is zero.
    pub fn new(
        key: &[u8],
        model: LeakageModel,
        points: usize,
        traces: usize,
        checkpoints: usize,
    ) -> Self {
        assert!(!key.is_empty(), "at least one key byte required");
        assert!(points > 0, "at least one observation point required");
        assert!(traces > 0, "CPA needs at least one trace");
        assert!(checkpoints > 0, "at least one checkpoint required");
        // Evenly spaced checkpoint trace counts, deduplicated, ending at the full set.
        // (Manual ceiling division keeps the crate on the workspace's 1.70 MSRV.)
        let mut marks: Vec<usize> = (1..=checkpoints)
            .map(|i| (i * traces + checkpoints - 1) / checkpoints)
            .collect();
        marks.dedup();
        let bytes = (0..key.len())
            .map(|_| ByteAccumulator {
                sh: vec![0.0; 256],
                sh2: vec![0.0; 256],
                sho: vec![0.0; 256 * points],
                best_at_checkpoint: Vec::with_capacity(marks.len()),
            })
            .collect();
        Self {
            key: key.to_vec(),
            model,
            points,
            traces,
            final_metric: vec![vec![0.0f64; 256]; key.len()],
            marks,
            bytes,
            so: vec![0.0; points],
            so2: vec![0.0; points],
            next_mark: 0,
            seen: 0,
        }
    }

    /// Traces consumed so far.
    pub fn seen(&self) -> usize {
        self.seen
    }

    /// Folds one trace into the running sums, evaluating a disclosure checkpoint when
    /// this trace completes one.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatches or when more than the declared number of traces is
    /// pushed.
    pub fn push(&mut self, plaintexts: &[u8], samples: &[f64]) {
        assert_eq!(
            plaintexts.len(),
            self.key.len(),
            "one plaintext byte per S-box"
        );
        assert_eq!(
            samples.len(),
            self.points,
            "one sample per observation point"
        );
        assert!(
            self.seen < self.traces,
            "more traces pushed than the declared {}",
            self.traces
        );
        let points = self.points;
        for (p, &o) in samples.iter().enumerate() {
            self.so[p] += o;
            self.so2[p] += o * o;
        }
        for (acc, &plaintext) in self.bytes.iter_mut().zip(plaintexts) {
            for guess in 0..256usize {
                let h = self.model.leakage(plaintext, guess as u8) as f64;
                acc.sh[guess] += h;
                acc.sh2[guess] += h * h;
                let sho = &mut acc.sho[guess * points..(guess + 1) * points];
                for (p, &o) in samples.iter().enumerate() {
                    sho[p] += h * o;
                }
            }
        }
        self.seen += 1;

        if self.next_mark < self.marks.len() && self.seen == self.marks[self.next_mark] {
            let n = self.seen as f64;
            let last = self.next_mark + 1 == self.marks.len();
            for (acc, metrics_row) in self.bytes.iter_mut().zip(self.final_metric.iter_mut()) {
                let mut best_guess = 0u8;
                let mut best_metric = f64::NEG_INFINITY;
                for (guess, slot) in metrics_row.iter_mut().enumerate() {
                    let metric = best_abs_correlation(n, acc, guess, points, &self.so, &self.so2);
                    if metric > best_metric {
                        best_metric = metric;
                        best_guess = guess as u8;
                    }
                    if last {
                        *slot = metric;
                    }
                }
                acc.best_at_checkpoint.push(best_guess);
            }
            self.next_mark += 1;
            tsc3d_obs::add_to_span("cpa_checkpoints", 1);
            crate::obs_metrics::get().cpa_checkpoints.inc();
            let seen = self.seen as u64;
            tsc3d_obs::emit(|| tsc3d_obs::EventKind::Checkpoint {
                name: "cpa_traces",
                value: seen,
            });
        }
    }

    /// Finalises the attack after every declared trace arrived.
    ///
    /// # Panics
    ///
    /// Panics if fewer traces were pushed than declared.
    pub fn finish(self) -> CpaResult {
        let _span = tsc3d_obs::span!("cpa_finish");
        assert_eq!(
            self.seen, self.traces,
            "finish called after {} of {} traces",
            self.seen, self.traces
        );
        let marks = self.marks;
        let results = self
            .bytes
            .iter()
            .enumerate()
            .map(|(b, acc)| {
                let true_byte = self.key[b];
                let metrics = &self.final_metric[b];
                let true_metric = metrics[true_byte as usize];
                // Deterministic rank: guesses strictly better, plus equal-metric guesses
                // with a smaller index (the argmax tie-break).
                let rank = 1 + metrics
                    .iter()
                    .enumerate()
                    .filter(|&(g, &m)| {
                        g != true_byte as usize
                            && (m > true_metric || (m == true_metric && g < true_byte as usize))
                    })
                    .count();
                let (best_guess, best_metric) = metrics.iter().enumerate().fold(
                    (0usize, f64::NEG_INFINITY),
                    |(bg, bm), (g, &m)| {
                        if m > bm {
                            (g, m)
                        } else {
                            (bg, bm)
                        }
                    },
                );
                // Disclosure: the first checkpoint from which the best guess stays
                // correct.
                let stable_from = acc
                    .best_at_checkpoint
                    .iter()
                    .rposition(|&g| g != true_byte)
                    .map(|wrong| wrong + 1)
                    .unwrap_or(0);
                let mtd_traces = (stable_from < marks.len()).then(|| marks[stable_from]);
                ByteResult {
                    byte: b,
                    true_byte,
                    best_guess: best_guess as u8,
                    rank,
                    true_correlation: true_metric.max(0.0),
                    best_correlation: best_metric.max(0.0),
                    mtd_traces,
                }
            })
            .collect();

        CpaResult {
            bytes: results,
            traces: self.traces,
            checkpoints: marks,
        }
    }
}

impl TraceConsumer for CpaAccumulator {
    fn consume_trace(&mut self, plaintexts: &[u8], samples: &[f64]) {
        self.push(plaintexts, samples);
    }
}

/// Runs CPA over a trace set against the known key, evaluating disclosure at
/// `checkpoints` evenly spaced trace counts (the last one being the full set).
///
/// The accumulation order is the trace order, so the result is a pure function of the
/// set — independent of how the traces were simulated or scheduled. Implemented on top
/// of [`CpaAccumulator`], so the materialised and the streaming paths are the same code.
///
/// # Panics
///
/// Panics if `key.len()` differs from the set's `key_bytes`, the set is empty, or
/// `checkpoints` is zero.
pub fn run_cpa(set: &TraceSet, key: &[u8], model: LeakageModel, checkpoints: usize) -> CpaResult {
    assert_eq!(
        key.len(),
        set.key_bytes(),
        "one key byte per attacked S-box"
    );
    assert!(set.traces() > 0, "CPA needs at least one trace");
    let mut acc = CpaAccumulator::new(key, model, set.points(), set.traces(), checkpoints);
    for trace in 0..set.traces() {
        acc.push(set.plaintext_row(trace), set.sample_row(trace));
    }
    acc.finish()
}

/// The best absolute Pearson correlation of one guess's hypothesis over all points,
/// computed from the running sums (`0` for degenerate variance).
#[inline]
fn best_abs_correlation(
    n: f64,
    acc: &ByteAccumulator,
    guess: usize,
    points: usize,
    so: &[f64],
    so2: &[f64],
) -> f64 {
    let sh = acc.sh[guess];
    let sh2 = acc.sh2[guess];
    let var_h = n * sh2 - sh * sh;
    if var_h <= 0.0 {
        return 0.0;
    }
    let sho = &acc.sho[guess * points..(guess + 1) * points];
    let mut best = 0.0f64;
    for p in 0..points {
        let var_o = n * so2[p] - so[p] * so[p];
        if var_o <= 0.0 {
            continue;
        }
        let cov = n * sho[p] - sh * so[p];
        let r = cov / (var_h * var_o).sqrt();
        best = best.max(r.abs());
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{derive_key, LeakageModel, SBOX};
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    /// Builds a synthetic set whose single point leaks `scale * HW(SBOX[p ^ key])` plus
    /// seeded Gaussian-ish noise of amplitude `noise`.
    fn synthetic(key: &[u8], traces: usize, scale: f64, noise: f64, seed: u64) -> TraceSet {
        let mut set = TraceSet::new(key.len(), 2);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for _ in 0..traces {
            let plaintexts: Vec<u8> = (0..key.len()).map(|_| rng.gen_range(0..=255u8)).collect();
            let leak: f64 = plaintexts
                .iter()
                .zip(key)
                .map(|(&p, &k)| SBOX[(p ^ k) as usize].count_ones() as f64)
                .sum();
            let jitter = tsc3d_attack::standard_normal(&mut rng);
            // Point 0 carries the signal, point 1 is pure noise.
            set.push_trace(
                &plaintexts,
                &[
                    293.0 + scale * leak + noise * jitter,
                    293.0 + noise * jitter,
                ],
            );
        }
        set
    }

    #[test]
    fn cpa_recovers_the_key_from_clean_traces() {
        let key = derive_key(42, 2);
        let set = synthetic(&key, 160, 0.05, 0.0, 1);
        let result = run_cpa(&set, &key, LeakageModel::HammingWeight, 8);
        assert_eq!(result.recovered_bytes(), 2);
        assert_eq!(result.guessing_entropy_bits(), 0.0);
        let mtd = result.mtd_traces().expect("key disclosed");
        assert!(mtd <= 160);
        assert!(result.best_correlation() > 0.5);
        for byte in &result.bytes {
            assert_eq!(byte.best_guess, byte.true_byte);
            assert!(byte.recovered());
            assert_eq!(byte.true_correlation, byte.best_correlation);
        }
    }

    #[test]
    fn cpa_fails_under_saturating_noise() {
        let key = derive_key(42, 2);
        let set = synthetic(&key, 160, 0.05, 1e6, 2);
        let result = run_cpa(&set, &key, LeakageModel::HammingWeight, 8);
        assert!(
            result.recovered_bytes() < 2,
            "noise should defeat the attack"
        );
        assert!(result.mtd_traces().is_none());
        assert!(result.guessing_entropy_bits() > 0.0);
    }

    #[test]
    fn mtd_shrinks_with_cleaner_traces() {
        let key = derive_key(9, 1);
        let clean = run_cpa(
            &synthetic(&key, 256, 0.05, 0.001, 3),
            &key,
            LeakageModel::HammingWeight,
            16,
        );
        let noisy = run_cpa(
            &synthetic(&key, 256, 0.05, 0.35, 3),
            &key,
            LeakageModel::HammingWeight,
            16,
        );
        let clean_mtd = clean.mtd_traces().expect("clean traces disclose");
        // A `None` (undisclosed) noisy MTD is even better for the defender.
        if let Some(noisy_mtd) = noisy.mtd_traces() {
            assert!(
                noisy_mtd > clean_mtd,
                "noisy {noisy_mtd} vs clean {clean_mtd}"
            );
        }
    }

    #[test]
    fn checkpoints_end_at_the_full_set_and_are_monotone() {
        let key = derive_key(1, 1);
        let set = synthetic(&key, 100, 0.05, 0.0, 4);
        let result = run_cpa(&set, &key, LeakageModel::HammingWeight, 7);
        assert_eq!(*result.checkpoints.last().unwrap(), 100);
        assert!(result.checkpoints.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn hamming_distance_model_recovers_a_hd_leaker() {
        let key = derive_key(5, 1);
        let mut set = TraceSet::new(1, 1);
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        for _ in 0..200 {
            let p: u8 = rng.gen_range(0..=255);
            let leak = (SBOX[(p ^ key[0]) as usize] ^ p).count_ones() as f64;
            set.push_trace(&[p], &[300.0 + 0.1 * leak]);
        }
        let result = run_cpa(&set, &key, LeakageModel::HammingDistance, 4);
        assert_eq!(result.recovered_bytes(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one trace")]
    fn empty_sets_are_rejected() {
        let set = TraceSet::new(1, 1);
        let _ = run_cpa(&set, &[0], LeakageModel::HammingWeight, 4);
    }

    #[test]
    fn streaming_accumulator_equals_the_materialised_attack() {
        let key = derive_key(27, 3);
        for (noise, checkpoints) in [(0.0, 8), (0.2, 16), (50.0, 5)] {
            let set = synthetic(&key, 120, 0.05, noise, 11);
            let materialised = run_cpa(&set, &key, LeakageModel::HammingWeight, checkpoints);
            let mut acc = CpaAccumulator::new(
                &key,
                LeakageModel::HammingWeight,
                set.points(),
                set.traces(),
                checkpoints,
            );
            for trace in 0..set.traces() {
                acc.consume_trace(set.plaintext_row(trace), set.sample_row(trace));
            }
            assert_eq!(acc.seen(), set.traces());
            let streamed = acc.finish();
            assert_eq!(streamed, materialised, "noise {noise}");
        }
    }

    #[test]
    #[should_panic(expected = "more traces pushed")]
    fn overfeeding_the_accumulator_panics() {
        let mut acc = CpaAccumulator::new(&[7], LeakageModel::HammingWeight, 1, 1, 1);
        acc.push(&[1], &[300.0]);
        acc.push(&[2], &[300.0]);
    }

    #[test]
    #[should_panic(expected = "finish called after")]
    fn underfeeding_the_accumulator_panics() {
        let acc = CpaAccumulator::new(&[7], LeakageModel::HammingWeight, 1, 2, 1);
        let _ = acc.finish();
    }
}

//! The attacker's view of the device: steady-state thermal readings for chosen activities.

use rand::Rng;
use rand_chacha::ChaCha8Rng;
use std::cell::RefCell;
use tsc3d_geometry::GridMap;

/// Anything that can report the steady-state thermal maps of the stack for a given
/// per-module power (activity) vector.
///
/// The paper's attacker assumptions map onto this interface directly: the attacker "may
/// await the thermal steady-state response after applying any input" and "has unlimited
/// access to all thermal sensors, spread across the 3D IC" — i.e. the oracle returns a full
/// thermal map per die, not a handful of noisy point sensors.
pub trait ThermalOracle {
    /// Number of dies whose sensors the attacker can read.
    fn dies(&self) -> usize;

    /// Steady-state thermal maps (bottom die first) for the given per-module powers in
    /// watts.
    fn observe(&self, module_powers: &[f64]) -> Vec<GridMap>;
}

/// Wraps an oracle and adds zero-mean Gaussian sensor noise to every reading.
///
/// Useful for studying how much the attacks of this crate degrade under realistic sensing
/// noise (the paper assumes noise-free steady-state readings as the worst case for the
/// defender).
pub struct NoisyOracle<O> {
    inner: O,
    sigma: f64,
    rng: RefCell<ChaCha8Rng>,
}

impl<O: ThermalOracle> NoisyOracle<O> {
    /// Wraps `inner`, adding Gaussian noise with standard deviation `sigma` kelvin.
    pub fn new(inner: O, sigma: f64, rng: ChaCha8Rng) -> Self {
        Self {
            inner,
            sigma,
            rng: RefCell::new(rng),
        }
    }

    /// The wrapped oracle.
    pub fn inner(&self) -> &O {
        &self.inner
    }
}

impl<O: ThermalOracle> ThermalOracle for NoisyOracle<O> {
    fn dies(&self) -> usize {
        self.inner.dies()
    }

    fn observe(&self, module_powers: &[f64]) -> Vec<GridMap> {
        let mut rng = self.rng.borrow_mut();
        self.inner
            .observe(module_powers)
            .into_iter()
            .map(|m| {
                let noisy: Vec<f64> = m
                    .values()
                    .iter()
                    .map(|&t| t + self.sigma * standard_normal(&mut rng))
                    .collect();
                GridMap::from_values(m.grid(), noisy)
            })
            .collect()
    }
}

/// Standard normal variate via the Box–Muller transform — the noise convention every
/// sensor/noise model of the attack stack (and `tsc3d-sca`'s sensor layer) shares, so
/// seeded noise streams are reproducible across crates.
pub fn standard_normal(rng: &mut ChaCha8Rng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use tsc3d_geometry::{Grid, Rect};

    struct Flat;
    impl ThermalOracle for Flat {
        fn dies(&self) -> usize {
            1
        }
        fn observe(&self, _p: &[f64]) -> Vec<GridMap> {
            vec![GridMap::constant(
                Grid::square(Rect::from_size(10.0, 10.0), 4),
                300.0,
            )]
        }
    }

    #[test]
    fn noisy_oracle_perturbs_readings() {
        let noisy = NoisyOracle::new(Flat, 0.5, ChaCha8Rng::seed_from_u64(1));
        let maps = noisy.observe(&[1.0]);
        assert_eq!(noisy.dies(), 1);
        assert!(maps[0].std_dev() > 0.0);
        assert!((maps[0].mean() - 300.0).abs() < 0.5);
        assert_eq!(noisy.inner().dies(), 1);
    }

    #[test]
    fn zero_sigma_is_transparent() {
        let noisy = NoisyOracle::new(Flat, 0.0, ChaCha8Rng::seed_from_u64(2));
        let maps = noisy.observe(&[1.0]);
        assert_eq!(maps[0].std_dev(), 0.0);
        assert_eq!(maps[0].mean(), 300.0);
    }
}

//! Attack 1: thermal characterization of the 3D IC.

use crate::ThermalOracle;
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use tsc3d_geometry::GridMap;

/// The differential thermal signature of one module, as learnt by the attacker.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModuleSignature {
    /// Index of the module (the attacker's numbering follows the inputs he crafts).
    pub module: usize,
    /// Per-die temperature difference maps (probed minus baseline), in kelvin.
    pub delta: Vec<GridMap>,
    /// Die on which the strongest response was observed.
    pub dominant_die: usize,
    /// Contrast of the signature: peak response divided by the mean response on the
    /// dominant die. A value near 1 means the module's activity merely warms the whole die
    /// uniformly (hard to pinpoint); large values mean a sharp, easily attributable hotspot.
    pub contrast: f64,
}

/// Result of the characterization attack.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CharacterizationResult {
    /// One learnt signature per module.
    pub signatures: Vec<ModuleSignature>,
    /// Baseline thermal maps at nominal activity.
    pub baseline: Vec<GridMap>,
}

impl CharacterizationResult {
    /// Average signature contrast over all modules — the headline "how well did the
    /// attacker characterize the chip" number (higher is better for the attacker).
    pub fn mean_contrast(&self) -> f64 {
        if self.signatures.is_empty() {
            return 0.0;
        }
        self.signatures.iter().map(|s| s.contrast).sum::<f64>() / self.signatures.len() as f64
    }

    /// The signature of one module.
    pub fn signature(&self, module: usize) -> &ModuleSignature {
        &self.signatures[module]
    }
}

/// The exploratory characterization attack: "step by step, the attacker will apply a broad
/// and varied range of input patterns in order to trigger as many activity patterns as
/// possible. By monitoring the TSC, he/she can then build a model for the thermal behaviour
/// of the 3D IC."
///
/// The implementation uses differential probing, the strongest practical realization of
/// that description under the paper's attacker model: the attacker first records the
/// steady-state baseline at nominal activity, then — module by module — crafts inputs that
/// boost a single module's activity and records the differential response.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CharacterizationAttack {
    /// Relative activity boost applied to the probed module (e.g. 1.0 = +100 %).
    pub boost: f64,
    /// Relative jitter applied to all other modules while probing (models imperfect input
    /// crafting; 0 = perfectly clean probes).
    pub background_jitter: f64,
}

impl CharacterizationAttack {
    /// Creates an attack with the given probe boost and background jitter.
    pub fn new(boost: f64, background_jitter: f64) -> Self {
        Self {
            boost,
            background_jitter,
        }
    }

    /// A clean, worst-case-for-the-defender attack: +100 % probe boost, no jitter.
    pub fn ideal() -> Self {
        Self::new(1.0, 0.0)
    }

    /// Runs the attack against an oracle.
    ///
    /// `nominal_powers[m]` is the module's power draw under nominal activity (the attacker
    /// controls relative activity, not absolute watts; the oracle translates).
    pub fn run(
        &self,
        oracle: &dyn ThermalOracle,
        nominal_powers: &[f64],
        rng: &mut ChaCha8Rng,
    ) -> CharacterizationResult {
        let baseline = oracle.observe(nominal_powers);
        let signatures = (0..nominal_powers.len())
            .map(|module| {
                let mut probe = nominal_powers.to_vec();
                for (i, p) in probe.iter_mut().enumerate() {
                    if i == module {
                        *p *= 1.0 + self.boost;
                    } else if self.background_jitter > 0.0 {
                        let jitter: f64 =
                            rng.gen_range(-self.background_jitter..self.background_jitter);
                        *p *= (1.0 + jitter).max(0.0);
                    }
                }
                let probed = oracle.observe(&probe);
                let delta: Vec<GridMap> = probed
                    .iter()
                    .zip(&baseline)
                    .map(|(p, b)| {
                        GridMap::from_values(
                            p.grid(),
                            p.values()
                                .iter()
                                .zip(b.values())
                                .map(|(a, b)| a - b)
                                .collect(),
                        )
                    })
                    .collect();
                let (dominant_die, contrast) = dominant_and_contrast(&delta);
                ModuleSignature {
                    module,
                    delta,
                    dominant_die,
                    contrast,
                }
            })
            .collect();
        CharacterizationResult {
            signatures,
            baseline,
        }
    }
}

/// Picks the die with the largest peak response and reports the peak-to-mean ratio there.
fn dominant_and_contrast(delta: &[GridMap]) -> (usize, f64) {
    let mut best_die = 0;
    let mut best_peak = f64::NEG_INFINITY;
    for (die, map) in delta.iter().enumerate() {
        let peak = map.max();
        if peak > best_peak {
            best_peak = peak;
            best_die = die;
        }
    }
    let mean = delta[best_die].mean();
    let contrast = if mean > 1e-12 { best_peak / mean } else { 0.0 };
    (best_die, contrast.max(0.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use tsc3d_geometry::{Grid, Rect};

    /// Two modules, each heating its own half of a single die; module 1 couples weakly into
    /// module 0's half.
    struct TwoModuleOracle {
        grid: Grid,
        leak: f64,
    }

    impl ThermalOracle for TwoModuleOracle {
        fn dies(&self) -> usize {
            1
        }
        fn observe(&self, powers: &[f64]) -> Vec<GridMap> {
            let p0 = powers.first().copied().unwrap_or(0.0);
            let p1 = powers.get(1).copied().unwrap_or(0.0);
            let mut map = GridMap::zeros(self.grid);
            map.splat_power(&Rect::new(0.0, 0.0, 50.0, 100.0), p0 + self.leak * p1);
            map.splat_power(&Rect::new(50.0, 0.0, 50.0, 100.0), p1 + self.leak * p0);
            vec![map.map(|p| 293.0 + 4.0 * p)]
        }
    }

    fn oracle(leak: f64) -> TwoModuleOracle {
        TwoModuleOracle {
            grid: Grid::square(Rect::from_size(100.0, 100.0), 10),
            leak,
        }
    }

    #[test]
    fn signatures_locate_each_module_half() {
        let attack = CharacterizationAttack::ideal();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let result = attack.run(&oracle(0.0), &[0.5, 0.5], &mut rng);
        assert_eq!(result.signatures.len(), 2);
        // Module 0 heats the left half → peak of its signature lies in columns 0..5.
        let pos0 = result.signature(0).delta[0].argmax();
        assert!(pos0.col < 5);
        let pos1 = result.signature(1).delta[0].argmax();
        assert!(pos1.col >= 5);
        assert!(result.mean_contrast() > 0.5);
    }

    #[test]
    fn thermal_mixing_lowers_contrast() {
        // When modules' heat responses blur into each other the signatures flatten.
        let attack = CharacterizationAttack::ideal();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let sharp = attack.run(&oracle(0.0), &[0.5, 0.5], &mut rng);
        let blurred = attack.run(&oracle(0.9), &[0.5, 0.5], &mut rng);
        assert!(blurred.mean_contrast() < sharp.mean_contrast());
    }

    #[test]
    fn background_jitter_is_reproducible_per_seed() {
        let attack = CharacterizationAttack::new(1.0, 0.2);
        let a = attack.run(&oracle(0.1), &[0.5, 0.5], &mut ChaCha8Rng::seed_from_u64(5));
        let b = attack.run(&oracle(0.1), &[0.5, 0.5], &mut ChaCha8Rng::seed_from_u64(5));
        assert_eq!(a.signatures[0].delta[0], b.signatures[0].delta[0]);
    }

    #[test]
    fn empty_module_list_yields_empty_result() {
        let attack = CharacterizationAttack::ideal();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let result = attack.run(&oracle(0.0), &[], &mut rng);
        assert!(result.signatures.is_empty());
        assert_eq!(result.mean_contrast(), 0.0);
    }
}

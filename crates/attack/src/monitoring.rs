//! Attack 2b: runtime monitoring of a localized module.

use crate::{standard_normal, ThermalOracle};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use tsc3d_geometry::Point;
use tsc3d_leakage::pearson;

/// Result of the monitoring attack against one or more target modules.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MonitoringResult {
    /// Per target: the Pearson correlation between the module's true activity and the
    /// temperature the attacker observes at the monitored location.
    pub activity_correlations: Vec<f64>,
    /// Number of activity samples used per target.
    pub samples: usize,
}

impl MonitoringResult {
    /// Average activity correlation over all targets (higher = more leakage to exploit).
    pub fn mean_correlation(&self) -> f64 {
        if self.activity_correlations.is_empty() {
            return 0.0;
        }
        self.activity_correlations.iter().sum::<f64>() / self.activity_correlations.len() as f64
    }
}

/// The monitoring attack: "once the thermal response is confined to particular regions,
/// i.e., modules of interest are localized with some confidence, [...] an attacker may now
/// observe the sensitive activity/computation of particular modules by monitoring them
/// during runtime."
///
/// The attacker reads the sensor closest to the location where a module was (believed to
/// be) localized, while the device runs `samples` different activity sets; the attack
/// reports how strongly the observed temperature correlates with the module's true activity
/// — effectively a single-bin instance of Eq. 2 of the paper, evaluated from the attacker's
/// side.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MonitoringAttack {
    /// Number of activity sets the attacker observes.
    pub samples: usize,
    /// Relative standard deviation of the (secret) runtime activity the device exhibits.
    pub activity_sigma: f64,
}

impl MonitoringAttack {
    /// Creates a monitoring attack.
    ///
    /// # Panics
    ///
    /// Panics if `samples < 3` (no meaningful correlation can be estimated).
    pub fn new(samples: usize, activity_sigma: f64) -> Self {
        assert!(samples >= 3, "monitoring needs at least three samples");
        Self {
            samples,
            activity_sigma,
        }
    }

    /// The paper-style configuration: 100 sampled activity sets at 10 % sigma.
    pub fn paper_default() -> Self {
        Self::new(100, 0.10)
    }

    /// Runs the attack.
    ///
    /// `targets[k]` is `(module index, die, monitored location)` — typically the output of a
    /// localization attack. `nominal_powers` are the modules' nominal power draws.
    pub fn run(
        &self,
        oracle: &dyn ThermalOracle,
        nominal_powers: &[f64],
        targets: &[(usize, usize, Point)],
        rng: &mut ChaCha8Rng,
    ) -> MonitoringResult {
        let mut activities: Vec<Vec<f64>> = vec![Vec::with_capacity(self.samples); targets.len()];
        let mut readings: Vec<Vec<f64>> = vec![Vec::with_capacity(self.samples); targets.len()];

        for _ in 0..self.samples {
            // The device runs a random (secret) activity set.
            let powers: Vec<f64> = nominal_powers
                .iter()
                .map(|&p| (p * (1.0 + self.activity_sigma * standard_normal(rng))).max(0.0))
                .collect();
            let maps = oracle.observe(&powers);
            for (k, &(module, die, location)) in targets.iter().enumerate() {
                activities[k].push(powers[module]);
                let map = &maps[die.min(maps.len() - 1)];
                let reading = map
                    .grid()
                    .bin_of(location)
                    .map(|pos| map.get(pos))
                    .unwrap_or_else(|| map.mean());
                readings[k].push(reading);
            }
        }

        let activity_correlations = activities
            .iter()
            .zip(&readings)
            .map(|(a, r)| pearson(a, r).unwrap_or(0.0))
            .collect();
        MonitoringResult {
            activity_correlations,
            samples: self.samples,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use tsc3d_geometry::{Grid, GridMap, Rect};

    /// Module 0 heats the left half, module 1 the right half of one die.
    struct HalfOracle {
        grid: Grid,
    }

    impl ThermalOracle for HalfOracle {
        fn dies(&self) -> usize {
            1
        }
        fn observe(&self, powers: &[f64]) -> Vec<GridMap> {
            let mut map = GridMap::zeros(self.grid);
            map.splat_power(&Rect::new(0.0, 0.0, 50.0, 100.0), powers[0]);
            map.splat_power(&Rect::new(50.0, 0.0, 50.0, 100.0), powers[1]);
            vec![map.map(|p| 293.0 + 6.0 * p)]
        }
    }

    fn oracle() -> HalfOracle {
        HalfOracle {
            grid: Grid::square(Rect::from_size(100.0, 100.0), 10),
        }
    }

    #[test]
    fn monitoring_the_right_spot_reveals_activity() {
        let attack = MonitoringAttack::new(60, 0.10);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let result = attack.run(
            &oracle(),
            &[0.5, 0.5],
            &[(0, 0, Point::new(25.0, 50.0))],
            &mut rng,
        );
        assert_eq!(result.samples, 60);
        assert!(
            result.mean_correlation() > 0.9,
            "corr {}",
            result.mean_correlation()
        );
    }

    #[test]
    fn monitoring_the_wrong_spot_reveals_little() {
        let attack = MonitoringAttack::new(60, 0.10);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        // Watching the right half while targeting module 0's activity: the reading tracks
        // module 1 instead, so the correlation with module 0 must be much weaker.
        let wrong = attack.run(
            &oracle(),
            &[0.5, 0.5],
            &[(0, 0, Point::new(75.0, 50.0))],
            &mut rng,
        );
        assert!(
            wrong.mean_correlation() < 0.5,
            "corr {}",
            wrong.mean_correlation()
        );
    }

    #[test]
    fn multiple_targets_are_scored_independently() {
        let attack = MonitoringAttack::new(50, 0.10);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let result = attack.run(
            &oracle(),
            &[0.5, 0.5],
            &[
                (0, 0, Point::new(25.0, 50.0)),
                (1, 0, Point::new(75.0, 50.0)),
            ],
            &mut rng,
        );
        assert_eq!(result.activity_correlations.len(), 2);
        assert!(result.activity_correlations.iter().all(|&c| c > 0.8));
    }

    #[test]
    #[should_panic(expected = "three samples")]
    fn too_few_samples_rejected() {
        let _ = MonitoringAttack::new(2, 0.1);
    }
}

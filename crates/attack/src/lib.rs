//! Thermal side-channel attacks on 3D ICs (Section 5 of the paper).
//!
//! The paper formulates two attacks an adversary with non-invasive, sensor-level access can
//! mount against a 3D IC, both enabled by the strong (but realistic) capabilities assumed in
//! Section 5 — crafted repetitive inputs, steady-state readouts, and unlimited access to all
//! on-chip thermal sensors:
//!
//! 1. **Thermal characterization** ([`CharacterizationAttack`]): by sweeping input patterns
//!    the attacker learns per-module thermal signatures of the stack.
//! 2. **Localization and monitoring of modules** ([`LocalizationAttack`],
//!    [`MonitoringAttack`]): crafted inputs trigger particular modules; the thermal response
//!    localizes them, after which their runtime activity can be monitored.
//!
//! The attacks are written against a [`ThermalOracle`] — anything that can answer "what do
//! the thermal sensors show for this activity vector". The `tsc3d` core crate implements
//! the oracle on top of a floorplan plus the detailed thermal solver, so the same attack
//! code evaluates power-aware and TSC-aware floorplans on equal footing.
//!
//! # Example
//!
//! ```
//! use tsc3d_attack::{ThermalOracle, CharacterizationAttack};
//! use tsc3d_geometry::{Grid, GridMap, Rect};
//! use rand::SeedableRng;
//! use rand_chacha::ChaCha8Rng;
//!
//! /// A toy oracle where each of two modules heats one half of a single die.
//! struct Toy {
//!     grid: Grid,
//! }
//! impl ThermalOracle for Toy {
//!     fn dies(&self) -> usize { 1 }
//!     fn observe(&self, powers: &[f64]) -> Vec<GridMap> {
//!         let mut map = GridMap::zeros(self.grid);
//!         map.splat_power(&Rect::new(0.0, 0.0, 50.0, 100.0), powers[0]);
//!         map.splat_power(&Rect::new(50.0, 0.0, 50.0, 100.0), powers[1]);
//!         vec![map.map(|p| 293.0 + 5.0 * p)]
//!     }
//! }
//!
//! let oracle = Toy { grid: Grid::square(Rect::from_size(100.0, 100.0), 8) };
//! let attack = CharacterizationAttack::new(1.0, 0.3);
//! let mut rng = ChaCha8Rng::seed_from_u64(1);
//! let result = attack.run(&oracle, &[0.5, 0.5], &mut rng);
//! assert_eq!(result.signatures.len(), 2);
//! ```

#![warn(missing_docs)]

mod characterization;
mod localization;
mod monitoring;
mod oracle;

pub use characterization::{CharacterizationAttack, CharacterizationResult, ModuleSignature};
pub use localization::{LocalizationAttack, LocalizationOutcome, LocalizationResult};
pub use monitoring::{MonitoringAttack, MonitoringResult};
pub use oracle::{standard_normal, NoisyOracle, ThermalOracle};

//! Attack 2a: localization of modules from their thermal signatures.

use crate::{CharacterizationAttack, CharacterizationResult, ThermalOracle};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use tsc3d_geometry::{DieId, Point, Rect};

/// Where the attacker believes one module sits, versus where it actually is.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LocalizationOutcome {
    /// Module index.
    pub module: usize,
    /// Die the attacker picked.
    pub guessed_die: DieId,
    /// Location (bin centre) the attacker picked.
    pub guessed_location: Point,
    /// Whether the attacker picked the correct die.
    pub die_correct: bool,
    /// Whether the guessed location falls inside the module's true footprint (and the die is
    /// correct).
    pub hit: bool,
    /// Distance from the guess to the module's true centre, in µm.
    pub error_um: f64,
}

/// Aggregate result of the localization attack.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LocalizationResult {
    /// Per-module outcomes.
    pub outcomes: Vec<LocalizationOutcome>,
}

impl LocalizationResult {
    /// Fraction of modules whose guessed location falls inside their true footprint.
    pub fn hit_rate(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.outcomes.iter().filter(|o| o.hit).count() as f64 / self.outcomes.len() as f64
    }

    /// Fraction of modules for which the attacker picked the correct die.
    pub fn die_accuracy(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.outcomes.iter().filter(|o| o.die_correct).count() as f64 / self.outcomes.len() as f64
    }

    /// Mean distance between guess and true module centre, in µm.
    pub fn mean_error_um(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.outcomes.iter().map(|o| o.error_um).sum::<f64>() / self.outcomes.len() as f64
    }
}

/// The localization attack: "the attacker targets particular modules by applying crafted
/// input patterns; the objective is to trigger these modules and observe thermal variations
/// exclusively or at least predominantly within these modules."
///
/// The attack first runs a [`CharacterizationAttack`] (or reuses an existing result) and
/// then, per module, guesses the module's die and location as the argmax of its differential
/// thermal signature. Success is scored against the true (secret) floorplan, which the
/// attack only uses for scoring — never for the guess itself.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LocalizationAttack {
    /// The characterization step driving the localization.
    pub characterization: CharacterizationAttack,
}

impl LocalizationAttack {
    /// Creates the attack with the given characterization settings.
    pub fn new(characterization: CharacterizationAttack) -> Self {
        Self { characterization }
    }

    /// An ideal (noise-free) localization attack.
    pub fn ideal() -> Self {
        Self::new(CharacterizationAttack::ideal())
    }

    /// Runs characterization followed by localization.
    ///
    /// `true_footprints[m]` is the secret placement of module `m` (die and rectangle), used
    /// only to score the attack.
    pub fn run(
        &self,
        oracle: &dyn ThermalOracle,
        nominal_powers: &[f64],
        true_footprints: &[(DieId, Rect)],
        rng: &mut ChaCha8Rng,
    ) -> LocalizationResult {
        let characterization = self.characterization.run(oracle, nominal_powers, rng);
        self.score(&characterization, true_footprints)
    }

    /// Scores an existing characterization result against the true floorplan.
    pub fn score(
        &self,
        characterization: &CharacterizationResult,
        true_footprints: &[(DieId, Rect)],
    ) -> LocalizationResult {
        let outcomes = characterization
            .signatures
            .iter()
            .map(|sig| {
                let die = sig.dominant_die;
                let map = &sig.delta[die];
                let guess_bin = map.argmax();
                let guessed_location = map.grid().bin_center(guess_bin);
                let (true_die, true_rect) = true_footprints[sig.module];
                let die_correct = true_die.index() == die;
                let hit = die_correct && true_rect.contains(guessed_location);
                let error_um = guessed_location.distance(true_rect.center());
                LocalizationOutcome {
                    module: sig.module,
                    guessed_die: DieId(die),
                    guessed_location,
                    die_correct,
                    hit,
                    error_um,
                }
            })
            .collect();
        LocalizationResult { outcomes }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ThermalOracle;
    use rand::SeedableRng;
    use tsc3d_geometry::{Grid, GridMap};

    /// Two dies, two modules per die, each heating its own quadrant-equivalent region.
    struct QuadOracle {
        grid: Grid,
        regions: Vec<(usize, Rect)>,
        blur: f64,
    }

    impl ThermalOracle for QuadOracle {
        fn dies(&self) -> usize {
            2
        }
        fn observe(&self, powers: &[f64]) -> Vec<GridMap> {
            let mut maps = vec![GridMap::zeros(self.grid), GridMap::zeros(self.grid)];
            for (m, (die, rect)) in self.regions.iter().enumerate() {
                maps[*die].splat_power(rect, powers[m]);
                // Optional blur: leak a fraction of the power uniformly over the die.
                if self.blur > 0.0 {
                    let whole = self.grid.region();
                    maps[*die].splat_power(&whole, powers[m] * self.blur);
                }
            }
            maps.into_iter()
                .map(|m| m.map(|p| 293.0 + 3.0 * p))
                .collect()
        }
    }

    fn regions() -> Vec<(usize, Rect)> {
        vec![
            (0, Rect::new(0.0, 0.0, 40.0, 40.0)),
            (0, Rect::new(60.0, 60.0, 40.0, 40.0)),
            (1, Rect::new(0.0, 60.0, 40.0, 40.0)),
            (1, Rect::new(60.0, 0.0, 40.0, 40.0)),
        ]
    }

    fn oracle(blur: f64) -> QuadOracle {
        QuadOracle {
            grid: Grid::square(Rect::from_size(100.0, 100.0), 10),
            regions: regions(),
            blur,
        }
    }

    fn footprints() -> Vec<(DieId, Rect)> {
        regions().into_iter().map(|(d, r)| (DieId(d), r)).collect()
    }

    #[test]
    fn clean_responses_are_localized_perfectly() {
        let attack = LocalizationAttack::ideal();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let result = attack.run(&oracle(0.0), &[0.5; 4], &footprints(), &mut rng);
        assert_eq!(result.outcomes.len(), 4);
        assert_eq!(result.hit_rate(), 1.0);
        assert_eq!(result.die_accuracy(), 1.0);
        assert!(result.mean_error_um() < 30.0);
    }

    #[test]
    fn heavy_blurring_degrades_localization() {
        let attack = LocalizationAttack::ideal();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let clean = attack.run(&oracle(0.0), &[0.5; 4], &footprints(), &mut rng);
        // With most of the heat spread uniformly the argmax is barely above the background;
        // the localization error must grow (hit rate may or may not collapse, the error is
        // the robust indicator).
        let blurred = attack.run(&oracle(25.0), &[0.5; 4], &footprints(), &mut rng);
        assert!(blurred.mean_error_um() >= clean.mean_error_um());
    }

    #[test]
    fn scoring_flags_wrong_die_guesses() {
        // Swap the claimed footprints of modules 0 and 2 (different dies): the attacker's
        // (correct) guesses now count as misses against the falsified ground truth.
        let attack = LocalizationAttack::ideal();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut fp = footprints();
        fp.swap(0, 2);
        let result = attack.run(&oracle(0.0), &[0.5; 4], &fp, &mut rng);
        assert!(result.die_accuracy() < 1.0);
        assert!(result.hit_rate() < 1.0);
    }

    #[test]
    fn empty_result_statistics_are_zero() {
        let r = LocalizationResult { outcomes: vec![] };
        assert_eq!(r.hit_rate(), 0.0);
        assert_eq!(r.die_accuracy(), 0.0);
        assert_eq!(r.mean_error_um(), 0.0);
    }
}

//! Mounting the Section 5 attacks against concrete floorplans.

use tsc3d_attack::ThermalOracle;
use tsc3d_floorplan::{Floorplan, TsvPlan};
use tsc3d_geometry::{DieId, Grid, GridMap, Rect};
use tsc3d_thermal::{fast::PowerBlurring, SteadyStateSolver, ThermalConfig};

use crate::postprocess::ThermalEngine;

/// A [`ThermalOracle`] backed by a floorplan, its TSV plan and one of the thermal engines.
///
/// The attacker chooses a per-module activity (power) vector; the oracle rasterizes it onto
/// the floorplan's dies and returns the steady-state thermal maps — exactly the view a
/// sensor-level attacker with steady-state access obtains.
pub struct FloorplanOracle {
    floorplan: Floorplan,
    grid: Grid,
    tsv_plan: TsvPlan,
    engine: ThermalEngine,
    config: ThermalConfig,
}

impl FloorplanOracle {
    /// Creates an oracle for a floorplan.
    pub fn new(floorplan: Floorplan, grid: Grid, tsv_plan: TsvPlan, engine: ThermalEngine) -> Self {
        let config = ThermalConfig::default_for(floorplan.stack());
        Self {
            floorplan,
            grid,
            tsv_plan,
            engine,
            config,
        }
    }

    /// The true module footprints `(die, rect)` — the secret ground truth used to score
    /// localization attacks.
    pub fn footprints(&self) -> Vec<(DieId, Rect)> {
        self.floorplan
            .placements()
            .iter()
            .map(|p| (p.die, p.rect))
            .collect()
    }

    /// The underlying floorplan.
    pub fn floorplan(&self) -> &Floorplan {
        &self.floorplan
    }

    /// The analysis grid the sensors are assumed to cover.
    pub fn grid(&self) -> Grid {
        self.grid
    }
}

impl ThermalOracle for FloorplanOracle {
    fn dies(&self) -> usize {
        self.floorplan.stack().dies()
    }

    fn observe(&self, module_powers: &[f64]) -> Vec<GridMap> {
        let power_maps = self.floorplan.power_maps(self.grid, module_powers);
        match self.engine {
            ThermalEngine::Fast => {
                PowerBlurring::new(&self.config).estimate(&power_maps, &self.tsv_plan.combined())
            }
            ThermalEngine::Detailed => {
                let solver = SteadyStateSolver::new(self.config.clone())
                    .with_tolerance(1e-4)
                    .with_max_iterations(4_000);
                match solver.solve(&power_maps, &self.tsv_plan.combined()) {
                    Ok(result) => result.die_temperatures().to_vec(),
                    Err(_) => PowerBlurring::new(&self.config)
                        .estimate(&power_maps, &self.tsv_plan.combined()),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use tsc3d_attack::{CharacterizationAttack, LocalizationAttack, MonitoringAttack};
    use tsc3d_floorplan::{plan_signal_tsvs, SequencePair3d};
    use tsc3d_geometry::Stack;
    use tsc3d_netlist::suite::{generate, Benchmark};

    fn oracle() -> (FloorplanOracle, Vec<f64>) {
        let design = generate(Benchmark::N100, 1);
        let stack = Stack::two_die(design.outline());
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let fp = SequencePair3d::initial(&design, stack, &mut rng).pack(&design);
        let grid = fp.analysis_grid(16);
        let plan = plan_signal_tsvs(&design, &fp, grid);
        let powers: Vec<f64> = design.blocks().iter().map(|b| b.power()).collect();
        (
            FloorplanOracle::new(fp, grid, plan, ThermalEngine::Fast),
            powers,
        )
    }

    #[test]
    fn oracle_reports_two_dies_and_plausible_maps() {
        let (oracle, powers) = oracle();
        assert_eq!(oracle.dies(), 2);
        let maps = oracle.observe(&powers);
        assert_eq!(maps.len(), 2);
        assert!(maps[0].max() > 293.0);
        assert_eq!(oracle.footprints().len(), powers.len());
    }

    #[test]
    fn characterization_attack_runs_against_the_oracle() {
        let (oracle, powers) = oracle();
        // Characterize only a handful of modules to keep the test fast.
        let few: Vec<f64> = powers.iter().copied().take(8).collect();
        let mut padded = powers.clone();
        padded.truncate(powers.len());
        let attack = CharacterizationAttack::ideal();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        // Note: run over the full module vector (the attack probes each module in turn), but
        // we only assert on the first few signatures.
        let result = attack.run(&oracle, &padded, &mut rng);
        assert_eq!(result.signatures.len(), powers.len());
        assert!(result.mean_contrast() >= 1.0);
        let _ = few;
    }

    #[test]
    fn localization_and_monitoring_compose_with_the_oracle() {
        let (oracle, powers) = oracle();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let localization =
            LocalizationAttack::ideal().run(&oracle, &powers, &oracle.footprints(), &mut rng);
        assert_eq!(localization.outcomes.len(), powers.len());
        assert!(localization.hit_rate() >= 0.0 && localization.hit_rate() <= 1.0);

        // Monitor the first three localized modules.
        let targets: Vec<(usize, usize, tsc3d_geometry::Point)> = localization
            .outcomes
            .iter()
            .take(3)
            .map(|o| (o.module, o.guessed_die.index(), o.guessed_location))
            .collect();
        let monitoring = MonitoringAttack::new(10, 0.10).run(&oracle, &powers, &targets, &mut rng);
        assert_eq!(monitoring.activity_correlations.len(), 3);
        assert!(monitoring.mean_correlation().abs() <= 1.0);
    }
}

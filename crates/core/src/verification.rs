//! Detailed thermal verification of a floorplan's leakage (Figure 3, right-hand side).
//!
//! The paper notes that Corblivar's fast thermal analysis is "inferior to the detailed
//! analysis of HotSpot, especially for diverse arrangements of TSVs", and therefore verifies
//! the final correlation after floorplanning with the detailed engine. This module does the
//! same with our finite-volume solver.

use serde::{Deserialize, Serialize};
use tsc3d_floorplan::{Floorplan, TsvPlan};
use tsc3d_geometry::{Grid, GridMap};
use tsc3d_leakage::map_correlation;
use tsc3d_thermal::{SolveError, SteadyStateSolver, ThermalConfig, ThermalResult};

/// Result of a detailed verification pass.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VerificationReport {
    /// Power maps used (watts per bin, per die).
    pub power_maps: Vec<GridMap>,
    /// Detailed thermal maps per die.
    pub thermal_maps: Vec<GridMap>,
    /// Pearson correlation per die (Eq. 1), evaluated on the detailed maps.
    pub correlations: Vec<f64>,
    /// Peak temperature over all dies in kelvin.
    pub peak_temperature: f64,
}

impl VerificationReport {
    /// Average correlation over the dies.
    pub fn avg_correlation(&self) -> f64 {
        if self.correlations.is_empty() {
            0.0
        } else {
            self.correlations.iter().sum::<f64>() / self.correlations.len() as f64
        }
    }
}

/// Runs the detailed solver for a floorplan and reports the per-die correlations.
///
/// * `block_powers[b]` — the (voltage-scaled) power of block `b` in watts,
/// * `tsv_plan` — signal plus dummy TSVs of the floorplan,
/// * `grid` — analysis grid shared by the power and thermal maps,
/// * `solver` — a configured steady-state solver (its stack must match the floorplan's).
///
/// # Errors
///
/// Propagates [`SolveError`] from the detailed solver.
pub fn verify(
    floorplan: &Floorplan,
    block_powers: &[f64],
    tsv_plan: &TsvPlan,
    grid: Grid,
    solver: &SteadyStateSolver,
) -> Result<VerificationReport, SolveError> {
    verify_cancellable(
        floorplan,
        block_powers,
        tsv_plan,
        grid,
        solver,
        &tsc3d_exec::CancelToken::new(),
    )
}

/// [`verify`] polling `cancel` at the solver's sweep-window checkpoints.
///
/// # Errors
///
/// Propagates [`SolveError`] from the detailed solver, including
/// [`SolveError::Interrupted`] when the token fires mid-solve.
pub fn verify_cancellable(
    floorplan: &Floorplan,
    block_powers: &[f64],
    tsv_plan: &TsvPlan,
    grid: Grid,
    solver: &SteadyStateSolver,
    cancel: &tsc3d_exec::CancelToken,
) -> Result<VerificationReport, SolveError> {
    let power_maps = floorplan.power_maps(grid, block_powers);
    let result: ThermalResult =
        solver.solve_cancellable(&power_maps, &tsv_plan.combined(), cancel)?;
    let thermal_maps: Vec<GridMap> = result.die_temperatures().to_vec();
    let correlations = power_maps
        .iter()
        .zip(&thermal_maps)
        .map(|(p, t)| map_correlation(p, t).unwrap_or(0.0))
        .collect();
    Ok(VerificationReport {
        power_maps,
        thermal_maps,
        correlations,
        peak_temperature: result.peak_temperature(),
    })
}

/// Builds the default detailed solver for a floorplan's stack.
pub fn default_solver(floorplan: &Floorplan) -> SteadyStateSolver {
    SteadyStateSolver::new(ThermalConfig::default_for(floorplan.stack()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use tsc3d_floorplan::{plan_signal_tsvs, SequencePair3d};
    use tsc3d_geometry::Stack;
    use tsc3d_netlist::suite::{generate, Benchmark};

    #[test]
    fn verification_produces_defined_correlations() {
        let design = generate(Benchmark::N100, 1);
        let stack = Stack::two_die(design.outline());
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let fp = SequencePair3d::initial(&design, stack, &mut rng).pack(&design);
        let grid = fp.analysis_grid(12);
        let powers: Vec<f64> = design.blocks().iter().map(|b| b.power()).collect();
        let plan = plan_signal_tsvs(&design, &fp, grid);
        let solver = default_solver(&fp);
        let report = verify(&fp, &powers, &plan, grid, &solver).unwrap();
        assert_eq!(report.correlations.len(), 2);
        assert!(report.correlations.iter().all(|c| c.abs() <= 1.0));
        assert!(report.peak_temperature > 293.0);
        assert!(report.avg_correlation().abs() <= 1.0);
        // Power landing on the grid never exceeds the design's total power; an initial
        // (unoptimized) floorplan may hang blocks outside the fixed outline, whose share is
        // clipped, so the captured fraction can be below 1 but must stay substantial.
        let total: f64 = report.power_maps.iter().map(|m| m.sum()).sum();
        assert!(total <= design.total_power() * 1.001);
        assert!(total > 0.3 * design.total_power());
    }
}

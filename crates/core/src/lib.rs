//! # TSC-3D: thermal-side-channel-aware 3D floorplanning
//!
//! This crate is the top of the TSC-3D workspace and implements the contribution of
//! *"On Mitigation of Side-Channel Attacks in 3D ICs: Decorrelating Thermal Patterns from
//! Power and Activity"* (Knechtel & Sinanoglu, DAC 2017): a floorplanning methodology that
//! treats thermal-side-channel leakage as a first-class design criterion and decorrelates
//! the thermal behaviour of a two-die 3D IC from its power and activity patterns.
//!
//! The crate wires the substrates (netlist/benchmarks, thermal solvers, leakage metrics,
//! timing, voltage assignment, the annealing floorplanner, and the attacker models) into the
//! complete flow of the paper's Figure 3:
//!
//! 1. **Floorplanning** with either the power-aware or the TSC-aware objective
//!    ([`FlowConfig`] / [`TscFlow`]), using the fast thermal analysis, the leakage metrics
//!    and the leakage-aware voltage assignment inside the loop.
//! 2. **Verification** of the final correlation with the detailed thermal solver
//!    ([`verification`]).
//! 3. **Activity sampling and post-processing** ([`postprocess`]): Gaussian activity
//!    sampling, per-bin correlation stability, and the correlation-stability-guided
//!    insertion of dummy thermal TSVs up to the "sweet spot" where the average correlation
//!    stops improving.
//! 4. **Attacks** ([`oracle`]): the characterization / localization / monitoring attacks of
//!    Section 5, mounted against the produced floorplans on equal footing.
//! 5. **Experiments** ([`exploration`], [`experiment`]): the exploratory power/TSV study of
//!    Figure 2 and the PA-vs-TSC comparison of Figure 5 / Table 2.
//!
//! # Quick start
//!
//! ```no_run
//! use tsc3d::{FlowConfig, TscFlow, Setup};
//! use tsc3d_netlist::suite::{Benchmark, generate};
//!
//! let design = generate(Benchmark::N100, 1);
//! let flow = TscFlow::new(FlowConfig::quick(Setup::TscAware));
//! let result = flow.run(&design, 42).expect("flow converges");
//! println!(
//!     "verified bottom-die correlation: {:.3} (was {:.3} before dummy TSVs)",
//!     result.final_correlations[0], result.verified_correlations[0]
//! );
//! ```

#![warn(missing_docs)]

pub mod error;
pub use tsc3d_exec as exec;
pub mod experiment;
pub mod exploration;
mod flow;
pub mod oracle;
pub mod postprocess;
pub mod verification;

pub use error::{
    display_chain, FlowError, FlowStage, RetryPolicy, SolveQuality, SolverSettings, StageTimings,
};
pub use flow::{FlowConfig, FlowResult, OutlinePolicy, OutlineRepair, Setup, TscFlow};

//! The exploratory power/TSV study of Section 3 and Figure 2.
//!
//! The paper investigates all 30 combinations of 5 power distributions and 6 TSV
//! distributions on a two-die stack and reports how strongly each die's thermal map
//! correlates with its power map. This module reproduces that study with synthetic power
//! maps and the detailed thermal solver.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use tsc3d_geometry::{Grid, GridMap, Outline, Rect, Stack};
use tsc3d_leakage::map_correlation;
use tsc3d_thermal::{SteadyStateSolver, ThermalConfig, TsvField, TsvPattern};

/// The five power-distribution archetypes of the exploratory study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PowerPattern {
    /// Artificially unified power for all modules (globally uniform).
    GloballyUniform,
    /// Groups of locally similar power regimes.
    LocallyUniform,
    /// Smooth, small power gradients.
    SmallGradients,
    /// Medium power gradients.
    MediumGradients,
    /// Large power gradients (strong hotspots).
    LargeGradients,
}

impl PowerPattern {
    /// All five patterns.
    pub const ALL: [PowerPattern; 5] = [
        PowerPattern::GloballyUniform,
        PowerPattern::LocallyUniform,
        PowerPattern::SmallGradients,
        PowerPattern::MediumGradients,
        PowerPattern::LargeGradients,
    ];

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            PowerPattern::GloballyUniform => "globally uniform",
            PowerPattern::LocallyUniform => "locally uniform",
            PowerPattern::SmallGradients => "small gradients",
            PowerPattern::MediumGradients => "medium gradients",
            PowerPattern::LargeGradients => "large gradients",
        }
    }
}

/// One evaluated combination of the study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExplorationCase {
    /// The power-distribution archetype.
    pub power: PowerPattern,
    /// The TSV-distribution archetype.
    pub tsv: TsvPattern,
    /// Power–temperature correlation per die (bottom first).
    pub correlations: Vec<f64>,
    /// Peak temperature in kelvin.
    pub peak_temperature: f64,
}

impl ExplorationCase {
    /// Average correlation over both dies.
    pub fn avg_correlation(&self) -> f64 {
        self.correlations.iter().sum::<f64>() / self.correlations.len() as f64
    }
}

/// Synthesizes one die's power map for a pattern, normalized to `total_power` watts.
pub fn synthesize_power_map(
    grid: Grid,
    pattern: PowerPattern,
    total_power: f64,
    rng: &mut ChaCha8Rng,
) -> GridMap {
    let mut map = match pattern {
        PowerPattern::GloballyUniform => GridMap::constant(grid, 1.0),
        PowerPattern::LocallyUniform => {
            // A handful of rectangular regions, each with its own uniform level.
            let mut m = GridMap::constant(grid, 0.4);
            let region = grid.region();
            for _ in 0..4 {
                let w = region.width * rng.gen_range(0.25..0.5);
                let h = region.height * rng.gen_range(0.25..0.5);
                let x = region.x + rng.gen_range(0.0..(region.width - w));
                let y = region.y + rng.gen_range(0.0..(region.height - h));
                let level: f64 = rng.gen_range(0.6..1.4);
                m.splat_rect(&Rect::new(x, y, w, h), level);
            }
            m
        }
        PowerPattern::SmallGradients => gradient_map(grid, 0.15, rng),
        PowerPattern::MediumGradients => gradient_map(grid, 0.5, rng),
        PowerPattern::LargeGradients => {
            // A cool background with a few intense hotspots.
            let mut m = GridMap::constant(grid, 0.15);
            let region = grid.region();
            for _ in 0..3 {
                let w = region.width * rng.gen_range(0.1..0.2);
                let h = region.height * rng.gen_range(0.1..0.2);
                let x = region.x + rng.gen_range(0.0..(region.width - w));
                let y = region.y + rng.gen_range(0.0..(region.height - h));
                m.splat_rect(&Rect::new(x, y, w, h), rng.gen_range(6.0..10.0));
            }
            m
        }
    };
    // Normalize to the requested total power.
    let sum = map.sum();
    if sum > 0.0 {
        map = map.scaled(total_power / sum);
    }
    map
}

/// A smooth sinusoidal gradient with the given relative amplitude around 1.
fn gradient_map(grid: Grid, amplitude: f64, rng: &mut ChaCha8Rng) -> GridMap {
    let phase_x: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
    let phase_y: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
    let values = grid
        .positions()
        .map(|pos| {
            let fx = pos.col as f64 / grid.cols() as f64;
            let fy = pos.row as f64 / grid.rows() as f64;
            1.0 + amplitude
                * ((std::f64::consts::TAU * fx + phase_x).sin()
                    + (std::f64::consts::TAU * fy + phase_y).cos())
                / 2.0
        })
        .collect();
    GridMap::from_values(grid, values)
}

/// Configuration of the exploratory study.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExplorationConfig {
    /// Die outline (shared by both dies).
    pub outline_mm2: f64,
    /// Analysis-grid resolution (bins per axis).
    pub grid_bins: usize,
    /// Total power per die in watts.
    pub power_per_die: f64,
    /// RNG seed for the synthetic patterns.
    pub seed: u64,
}

impl Default for ExplorationConfig {
    fn default() -> Self {
        Self {
            outline_mm2: 16.0,
            grid_bins: 16,
            power_per_die: 4.0,
            seed: 1,
        }
    }
}

/// Runs the full 5 × 6 study and returns the 30 cases in row-major order (power pattern
/// outer, TSV pattern inner) — the structure of Figure 2.
pub fn run_exploration(config: &ExplorationConfig) -> Vec<ExplorationCase> {
    run_exploration_impl(config, None)
}

/// [`run_exploration`] with the detailed solver's red-black sweeps distributed over a
/// worker pool ([`SteadyStateSolver::solve_on`]).
///
/// Produces exactly the cases of the serial study — the parallel sweep is bit-identical —
/// just faster on fine grids.
pub fn run_exploration_on(
    pool: &crate::exec::Pool,
    config: &ExplorationConfig,
) -> Vec<ExplorationCase> {
    run_exploration_impl(config, Some(pool))
}

fn run_exploration_impl(
    config: &ExplorationConfig,
    pool: Option<&crate::exec::Pool>,
) -> Vec<ExplorationCase> {
    let outline = Outline::square(config.outline_mm2 * 1e6);
    let stack = Stack::two_die(outline);
    let grid = Grid::square(outline.rect(), config.grid_bins);
    let solver = SteadyStateSolver::new(ThermalConfig::default_for(stack))
        .with_tolerance(1e-4)
        .with_max_iterations(5_000);

    let mut cases = Vec::with_capacity(PowerPattern::ALL.len() * TsvPattern::ALL.len());
    for (pi, &power_pattern) in PowerPattern::ALL.iter().enumerate() {
        // One power scenario per pattern, shared across the TSV variations so that only the
        // TSV arrangement changes within a row of Figure 2.
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed ^ (pi as u64) << 8);
        let power_maps = vec![
            synthesize_power_map(grid, power_pattern, config.power_per_die, &mut rng),
            synthesize_power_map(grid, power_pattern, config.power_per_die, &mut rng),
        ];
        for (ti, &tsv_pattern) in TsvPattern::ALL.iter().enumerate() {
            let tsvs = vec![TsvField::from_pattern(
                grid,
                tsv_pattern,
                config.seed ^ ti as u64,
            )];
            let result = match pool {
                Some(pool) => solver.solve_on(pool, &power_maps, &tsvs),
                None => solver.solve(&power_maps, &tsvs),
            }
            .expect("exploration solve converges");
            let correlations: Vec<f64> = power_maps
                .iter()
                .zip(result.die_temperatures())
                .map(|(p, t)| map_correlation(p, t).unwrap_or(0.0))
                .collect();
            cases.push(ExplorationCase {
                power: power_pattern,
                tsv: tsv_pattern,
                correlations,
                peak_temperature: result.peak_temperature(),
            });
        }
    }
    cases
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> ExplorationConfig {
        ExplorationConfig {
            outline_mm2: 4.0,
            grid_bins: 12,
            power_per_die: 2.0,
            seed: 3,
        }
    }

    fn find(cases: &[ExplorationCase], p: PowerPattern, t: TsvPattern) -> &ExplorationCase {
        cases
            .iter()
            .find(|c| c.power == p && c.tsv == t)
            .expect("case present")
    }

    #[test]
    fn study_covers_all_thirty_combinations() {
        let cases = run_exploration(&quick_config());
        assert_eq!(cases.len(), 30);
        for p in PowerPattern::ALL {
            for t in TsvPattern::ALL {
                assert!(cases.iter().any(|c| c.power == p && c.tsv == t));
            }
        }
    }

    #[test]
    fn key_findings_of_section_3_hold() {
        let cases = run_exploration(&quick_config());
        // (i) Globally uniform power shows the lowest correlation (degenerate: zero power
        //     variance ⇒ correlation reported as 0).
        let uniform = find(&cases, PowerPattern::GloballyUniform, TsvPattern::Irregular);
        assert!(uniform.correlations[0].abs() < 1e-9);
        // (ii) Non-uniform power correlates strongly on the bottom die for every TSV
        //      arrangement (large gradients leak regardless of the vertical interconnect).
        for t in TsvPattern::ALL {
            let case = find(&cases, PowerPattern::LargeGradients, t);
            assert!(
                case.correlations[0] > 0.3,
                "{t}: r1 = {}",
                case.correlations[0]
            );
        }
        // (iii) Regular TSV arrangements (homogeneous structure) preserve the correlation,
        //       irregular ones (heterogeneous vertical heat paths) destroy it — the
        //       Fig. 2(a–d) vs Fig. 2(e–h) comparison, most visible for smooth power.
        let smooth_regular = find(&cases, PowerPattern::SmallGradients, TsvPattern::MaxDensity);
        let smooth_irregular = find(&cases, PowerPattern::SmallGradients, TsvPattern::Irregular);
        let smooth_islands = find(&cases, PowerPattern::SmallGradients, TsvPattern::Islands);
        assert!(smooth_irregular.correlations[0] < smooth_regular.correlations[0]);
        assert!(smooth_islands.correlations[0] < smooth_regular.correlations[0]);
        // (iv) TSV islands (strongly heterogeneous vertical heat paths) weaken the
        //      correlation of gradient-style power relative to having no TSVs at all —
        //      the decorrelation effect the paper's post-processing exploits.
        //      (An earlier variant asserted locally-uniform power correlates no more than
        //      large gradients; that comparison is not robust at this test's coarse grid:
        //      after normalization the few-hotspot LargeGradients maps have *low* per-bin
        //      variance outside the hotspots and can correlate less than LocallyUniform
        //      regions, so the single-draw ordering depends on the RNG stream.)
        for p in [PowerPattern::SmallGradients, PowerPattern::MediumGradients] {
            let none = find(&cases, p, TsvPattern::None);
            let islands = find(&cases, p, TsvPattern::Islands);
            assert!(
                islands.correlations[0] < none.correlations[0],
                "{}: islands r1 = {} !< no-TSV r1 = {}",
                p.name(),
                islands.correlations[0],
                none.correlations[0]
            );
        }
    }

    #[test]
    fn pooled_exploration_matches_serial_exactly() {
        let config = ExplorationConfig {
            outline_mm2: 4.0,
            grid_bins: 8,
            power_per_die: 2.0,
            seed: 5,
        };
        let serial = run_exploration(&config);
        let pool = crate::exec::Pool::new(3);
        let pooled = run_exploration_on(&pool, &config);
        pool.shutdown();
        assert_eq!(serial, pooled);
    }

    #[test]
    fn power_maps_are_normalized() {
        let grid = Grid::square(Rect::from_size(1000.0, 1000.0), 10);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for p in PowerPattern::ALL {
            let map = synthesize_power_map(grid, p, 3.0, &mut rng);
            assert!((map.sum() - 3.0).abs() < 1e-9, "{}", p.name());
            assert!(map.min() >= 0.0);
        }
    }

    #[test]
    fn pattern_names_are_unique() {
        let names: Vec<&str> = PowerPattern::ALL.iter().map(|p| p.name()).collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(names.len(), dedup.len());
    }

    #[test]
    fn case_average_correlation_is_mean_of_dies() {
        let c = ExplorationCase {
            power: PowerPattern::SmallGradients,
            tsv: TsvPattern::None,
            correlations: vec![0.2, 0.6],
            peak_temperature: 300.0,
        };
        assert!((c.avg_correlation() - 0.4).abs() < 1e-12);
    }
}

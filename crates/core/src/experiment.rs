//! The paper's main evaluation: power-aware vs TSC-aware floorplanning over the benchmark
//! suite (Figure 5 and Table 2).

use serde::{Deserialize, Serialize};
use tsc3d_netlist::suite::{generate, Benchmark};

use crate::{FlowConfig, FlowError, FlowResult, Setup, TscFlow};

/// Configuration of one benchmark comparison.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Number of independent floorplanning runs per setup (the paper uses 50).
    pub runs: usize,
    /// Flow configuration template for the power-aware setup.
    pub power_aware: FlowConfig,
    /// Flow configuration template for the TSC-aware setup.
    pub tsc_aware: FlowConfig,
    /// Run the independent runs on worker threads.
    pub parallel: bool,
}

impl ExperimentConfig {
    /// A quick configuration (few runs, quick schedules) for tests and smoke experiments.
    pub fn quick(runs: usize) -> Self {
        Self {
            runs,
            power_aware: FlowConfig::quick(Setup::PowerAware),
            tsc_aware: FlowConfig::quick(Setup::TscAware),
            parallel: true,
        }
    }

    /// The paper-style configuration (50 runs, standard schedules).
    pub fn paper() -> Self {
        Self {
            runs: 50,
            power_aware: FlowConfig::paper(Setup::PowerAware),
            tsc_aware: FlowConfig::paper(Setup::TscAware),
            parallel: true,
        }
    }
}

/// Averages of one setup over all runs — one half of a Table 2 column pair.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SetupAverages {
    /// Average spatial entropy of the bottom die (S1).
    pub s1: f64,
    /// Average spatial entropy of the top die (S2).
    pub s2: f64,
    /// Average power–temperature correlation of the bottom die (r1), detailed verification.
    pub r1: f64,
    /// Average correlation of the top die (r2).
    pub r2: f64,
    /// Average overall (voltage-scaled) power in watts.
    pub power_w: f64,
    /// Average critical delay in ns.
    pub critical_delay_ns: f64,
    /// Average total wirelength in metres.
    pub wirelength_m: f64,
    /// Average peak temperature (detailed verification) in kelvin.
    pub peak_temperature_k: f64,
    /// Average number of signal TSVs.
    pub signal_tsvs: f64,
    /// Average number of dummy thermal TSVs.
    pub dummy_tsvs: f64,
    /// Average number of voltage volumes.
    pub voltage_volumes: f64,
    /// Average flow runtime in seconds.
    pub runtime_s: f64,
}

impl SetupAverages {
    /// Accumulates one flow result (call [`SetupAverages::finalize`] after the last one).
    pub fn accumulate(&mut self, result: &FlowResult) {
        self.s1 += result.spatial_entropies.first().copied().unwrap_or(0.0);
        self.s2 += result.spatial_entropies.get(1).copied().unwrap_or(0.0);
        self.r1 += result.final_correlations.first().copied().unwrap_or(0.0);
        self.r2 += result.final_correlations.get(1).copied().unwrap_or(0.0);
        self.power_w += result.scaled_powers.iter().sum::<f64>();
        self.critical_delay_ns += result.sa.breakdown.critical_delay;
        self.wirelength_m += result.sa.breakdown.wirelength * 1e-6;
        self.peak_temperature_k += result.verification.peak_temperature;
        self.signal_tsvs += result.signal_tsvs() as f64;
        self.dummy_tsvs += result.dummy_tsvs() as f64;
        self.voltage_volumes += result.assignment.volume_count() as f64;
        self.runtime_s += result.runtime_seconds;
    }

    /// Divides every accumulated sum by the run count.
    pub fn finalize(&mut self, runs: usize) {
        let n = runs.max(1) as f64;
        self.s1 /= n;
        self.s2 /= n;
        self.r1 /= n;
        self.r2 /= n;
        self.power_w /= n;
        self.critical_delay_ns /= n;
        self.wirelength_m /= n;
        self.peak_temperature_k /= n;
        self.signal_tsvs /= n;
        self.dummy_tsvs /= n;
        self.voltage_volumes /= n;
        self.runtime_s /= n;
    }
}

/// A full PA-vs-TSC comparison for one benchmark: one row group of Table 2 / Figure 5.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BenchmarkComparison {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// Number of runs averaged per setup.
    pub runs: usize,
    /// Averages of the power-aware setup.
    pub power_aware: SetupAverages,
    /// Averages of the TSC-aware setup.
    pub tsc_aware: SetupAverages,
}

impl BenchmarkComparison {
    /// Relative reduction of the bottom-die correlation achieved by the TSC-aware setup, in
    /// percent (the paper reports 16.79 % for n300, 15.25 % for ibm03, 7.71 % on average).
    pub fn r1_reduction_percent(&self) -> f64 {
        if self.power_aware.r1.abs() < 1e-12 {
            0.0
        } else {
            (self.power_aware.r1 - self.tsc_aware.r1) / self.power_aware.r1.abs() * 100.0
        }
    }

    /// Relative increase of overall power of the TSC-aware setup, in percent (paper: 5.38 %
    /// on average).
    pub fn power_increase_percent(&self) -> f64 {
        if self.power_aware.power_w.abs() < 1e-12 {
            0.0
        } else {
            (self.tsc_aware.power_w - self.power_aware.power_w) / self.power_aware.power_w * 100.0
        }
    }

    /// Relative reduction of the peak temperature rise above the 293 K ambient, in percent
    /// (paper: 13.22 % on average).
    pub fn peak_temperature_reduction_percent(&self) -> f64 {
        let ambient = 293.0;
        let pa = self.power_aware.peak_temperature_k - ambient;
        let tsc = self.tsc_aware.peak_temperature_k - ambient;
        if pa.abs() < 1e-12 {
            0.0
        } else {
            (pa - tsc) / pa * 100.0
        }
    }

    /// Relative increase of the voltage-volume count, in percent (paper: 87.17 % on
    /// average).
    pub fn voltage_volume_increase_percent(&self) -> f64 {
        if self.power_aware.voltage_volumes.abs() < 1e-12 {
            0.0
        } else {
            (self.tsc_aware.voltage_volumes - self.power_aware.voltage_volumes)
                / self.power_aware.voltage_volumes
                * 100.0
        }
    }
}

/// Runs the PA-vs-TSC comparison for one benchmark.
///
/// Run `i` of either setup floorplans the same generated design instance (`seed + i`), so
/// the two setups are compared on identical inputs.
///
/// # Errors
///
/// Propagates the first [`FlowError`] of any run (either setup): a comparison built from
/// partially failed runs would silently skew the reported averages.
pub fn run_benchmark(
    benchmark: Benchmark,
    config: &ExperimentConfig,
    seed: u64,
) -> Result<BenchmarkComparison, FlowError> {
    let mut pa = SetupAverages::default();
    let mut tsc = SetupAverages::default();

    fn run_one(
        benchmark: Benchmark,
        config: &ExperimentConfig,
        seed: u64,
        run: usize,
    ) -> Result<(FlowResult, FlowResult), FlowError> {
        let design = generate(benchmark, seed.wrapping_add(run as u64));
        let run_seed = seed.wrapping_add(1_000 + run as u64);
        let pa_result = TscFlow::new(config.power_aware).run(&design, run_seed)?;
        let tsc_result = TscFlow::new(config.tsc_aware).run(&design, run_seed)?;
        Ok((pa_result, tsc_result))
    }

    // The parallel path executes on the same long-lived work-stealing pool the campaign
    // engine (`tsc3d-campaign`) and the serve daemon use, so every batch path shares one
    // execution core. Results come back in run order regardless of worker count, keeping
    // the averages deterministic. The sequential path keeps its short-circuit: the first
    // failed run aborts the comparison without paying for the remaining runs.
    let results: Vec<Result<(FlowResult, FlowResult), FlowError>> = if config.parallel {
        let runs: Vec<usize> = (0..config.runs).collect();
        let config = *config;
        crate::exec::run_jobs(runs, default_workers(), move |_, run| {
            run_one(benchmark, &config, seed, run)
        })
    } else {
        let mut results = Vec::with_capacity(config.runs);
        for run in 0..config.runs {
            let result = run_one(benchmark, config, seed, run);
            let failed = result.is_err();
            results.push(result);
            if failed {
                break;
            }
        }
        results
    };
    for result in results {
        let (pa_result, tsc_result) = result?;
        pa.accumulate(&pa_result);
        tsc.accumulate(&tsc_result);
    }

    pa.finalize(config.runs);
    tsc.finalize(config.runs);
    Ok(BenchmarkComparison {
        benchmark,
        runs: config.runs,
        power_aware: pa,
        tsc_aware: tsc,
    })
}

/// Worker count used by parallel experiment runs: the machine's available parallelism.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs the comparison over a set of benchmarks, returning one comparison per benchmark.
///
/// # Errors
///
/// Propagates the first [`FlowError`] of any benchmark's runs.
pub fn run_suite(
    benchmarks: &[Benchmark],
    config: &ExperimentConfig,
    seed: u64,
) -> Result<Vec<BenchmarkComparison>, FlowError> {
    benchmarks
        .iter()
        .map(|&b| run_benchmark(b, config, seed))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsc3d_floorplan::SaSchedule;

    fn tiny_config() -> ExperimentConfig {
        let mut config = ExperimentConfig::quick(2);
        let schedule = SaSchedule {
            stages: 4,
            moves_per_stage: 8,
            cooling: 0.8,
            initial_acceptance: 0.8,
            grid_bins: 10,
        };
        config.power_aware.schedule = schedule;
        config.tsc_aware.schedule = schedule;
        config.power_aware.verification_bins = 10;
        config.tsc_aware.verification_bins = 10;
        config
    }

    #[test]
    fn benchmark_comparison_produces_both_setups() {
        let comparison =
            run_benchmark(Benchmark::N100, &tiny_config(), 9).expect("tiny comparison runs");
        assert_eq!(comparison.runs, 2);
        assert!(comparison.power_aware.power_w > 0.0);
        assert!(comparison.tsc_aware.power_w > 0.0);
        assert!(comparison.power_aware.r1.abs() <= 1.0);
        assert!(comparison.tsc_aware.r1.abs() <= 1.0);
        assert!(comparison.power_aware.signal_tsvs > 0.0);
        // Only the TSC-aware setup may insert dummy TSVs.
        assert_eq!(comparison.power_aware.dummy_tsvs, 0.0);
        // Derived percentages are finite.
        assert!(comparison.r1_reduction_percent().is_finite());
        assert!(comparison.power_increase_percent().is_finite());
        assert!(comparison.peak_temperature_reduction_percent().is_finite());
        assert!(comparison.voltage_volume_increase_percent().is_finite());
    }

    #[test]
    fn sequential_and_parallel_execution_agree() {
        let mut config = tiny_config();
        config.runs = 1;
        config.parallel = false;
        let sequential = run_benchmark(Benchmark::N100, &config, 4).expect("sequential run");
        config.parallel = true;
        let parallel = run_benchmark(Benchmark::N100, &config, 4).expect("parallel run");
        assert!((sequential.power_aware.r1 - parallel.power_aware.r1).abs() < 1e-12);
        assert!((sequential.tsc_aware.power_w - parallel.tsc_aware.power_w).abs() < 1e-12);
    }

    #[test]
    fn averages_accumulate_and_finalize() {
        let mut avg = SetupAverages {
            s1: 4.0,
            power_w: 10.0,
            ..SetupAverages::default()
        };
        avg.finalize(2);
        assert_eq!(avg.s1, 2.0);
        assert_eq!(avg.power_w, 5.0);
    }
}

//! The shared batch-execution core: a small work-stealing thread pool on
//! [`std::thread::scope`].
//!
//! Both the paper's Figure-5/Table-2 experiment loop ([`crate::experiment`]) and the
//! campaign subsystem (`tsc3d-campaign`) execute their independent flow runs through
//! [`run_jobs`], so the two paths share one scheduler: a shared injector queue feeding
//! per-worker deques, with idle workers stealing from the front of their peers' deques.
//! Jobs are independent and results are written into per-job slots, so the returned vector
//! is in job order regardless of worker count or steal interleaving — callers observe
//! bit-identical results for 1 and N workers.

use std::collections::VecDeque;
use std::sync::Mutex;

/// How many jobs a worker moves from the shared injector into its own deque at once.
///
/// Small enough that the tail of a batch remains stealable, large enough to amortize the
/// injector lock for short jobs.
const INJECTOR_BATCH: usize = 4;

/// Runs `jobs` on `workers` threads and returns one result per job, in job order.
///
/// `f` receives the job's index (its position in `jobs`) and the job itself. The pool is a
/// classic work-stealing design: all jobs start in a shared injector; each worker drains
/// its own deque LIFO, refills from the injector in small batches, and steals FIFO from
/// its peers once the injector is empty. Because every job is executed exactly once and
/// its result is stored in the slot of its index, the output is deterministic — identical
/// for any worker count and any steal interleaving (given a deterministic `f`).
///
/// `workers == 0` is treated as 1. With a single worker (or at most one job) everything
/// runs inline on the calling thread, without spawning.
///
/// # Panics
///
/// Propagates a panic raised by `f` (the scope joins all workers first).
pub fn run_jobs<J, R, F>(jobs: Vec<J>, workers: usize, f: F) -> Vec<R>
where
    J: Send,
    R: Send,
    F: Fn(usize, J) -> R + Sync,
{
    let workers = workers.max(1);
    if workers == 1 || jobs.len() <= 1 {
        return jobs
            .into_iter()
            .enumerate()
            .map(|(index, job)| f(index, job))
            .collect();
    }

    let n = jobs.len();
    let injector: Mutex<VecDeque<(usize, J)>> = Mutex::new(jobs.into_iter().enumerate().collect());
    let locals: Vec<Mutex<VecDeque<(usize, J)>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for me in 0..workers {
            let injector = &injector;
            let locals = &locals;
            let slots = &slots;
            let f = &f;
            scope.spawn(move || loop {
                let Some((index, job)) = next_job(me, injector, locals) else {
                    return;
                };
                let result = f(index, job);
                *slots[index].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every job produces exactly one result")
        })
        .collect()
}

/// Fetches the next job for worker `me`: own deque (LIFO), then the injector (batch
/// refill), then a steal from a peer's front (FIFO). Returns `None` when no work is
/// visible anywhere — jobs still queued in a peer's deque are completed by that peer,
/// which never exits before draining its own deque.
fn next_job<J>(
    me: usize,
    injector: &Mutex<VecDeque<(usize, J)>>,
    locals: &[Mutex<VecDeque<(usize, J)>>],
) -> Option<(usize, J)> {
    if let Some(job) = locals[me].lock().expect("worker deque poisoned").pop_back() {
        return Some(job);
    }

    {
        let mut shared = injector.lock().expect("injector poisoned");
        if let Some(job) = shared.pop_front() {
            let mut own = locals[me].lock().expect("worker deque poisoned");
            for _ in 1..INJECTOR_BATCH {
                match shared.pop_front() {
                    Some(extra) => own.push_back(extra),
                    None => break,
                }
            }
            return Some(job);
        }
    }

    let workers = locals.len();
    for offset in 1..workers {
        let victim = (me + offset) % workers;
        if let Some(job) = locals[victim]
            .lock()
            .expect("worker deque poisoned")
            .pop_front()
        {
            return Some(job);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_are_in_job_order() {
        let jobs: Vec<u64> = (0..100).collect();
        let results = run_jobs(jobs, 4, |index, job| {
            assert_eq!(index as u64, job);
            job * job
        });
        assert_eq!(results.len(), 100);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(*r, (i * i) as u64);
        }
    }

    #[test]
    fn single_worker_runs_inline() {
        let results = run_jobs(vec![1, 2, 3], 1, |_, job| job + 1);
        assert_eq!(results, vec![2, 3, 4]);
    }

    #[test]
    fn zero_workers_is_treated_as_one() {
        let results = run_jobs(vec![5], 0, |_, job| job * 2);
        assert_eq!(results, vec![10]);
    }

    #[test]
    fn empty_job_list_is_fine() {
        let results: Vec<i32> = run_jobs(Vec::<i32>::new(), 8, |_, job| job);
        assert!(results.is_empty());
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let counters: Vec<AtomicUsize> = (0..200).map(|_| AtomicUsize::new(0)).collect();
        let jobs: Vec<usize> = (0..200).collect();
        run_jobs(jobs, 8, |_, job| {
            counters[job].fetch_add(1, Ordering::SeqCst);
        });
        for counter in &counters {
            assert_eq!(counter.load(Ordering::SeqCst), 1);
        }
    }

    #[test]
    fn worker_counts_agree() {
        let jobs: Vec<u64> = (0..50).collect();
        let one = run_jobs(jobs.clone(), 1, |_, job| job.wrapping_mul(0x9E37_79B9));
        let many = run_jobs(jobs, 7, |_, job| job.wrapping_mul(0x9E37_79B9));
        assert_eq!(one, many);
    }
}

//! Typed errors and per-stage bookkeeping of the flow pipeline.
//!
//! The flow used to swallow failed detailed solves with ad-hoc fallbacks — worst of all
//! silently reusing the *pre*-dummy-TSV verification when the final sign-off failed, which
//! misreports exactly the correlation numbers the paper's evaluation hinges on. Every
//! stage now threads a [`FlowError`] through `Result`, and solver relaxation is an
//! explicit, observable policy ([`RetryPolicy`]) instead of a buried `unwrap_or_else`.

use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;
use tsc3d_thermal::SolveError;

/// The stages of the flow pipeline, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FlowStage {
    /// Multi-objective simulated-annealing floorplanning.
    Floorplan,
    /// Voltage assignment and power scaling of the final floorplan.
    Assign,
    /// Detailed thermal verification (HotSpot's role in the paper).
    Verify,
    /// Dummy-TSV post-processing and final sign-off verification.
    PostProcess,
}

impl FlowStage {
    /// All stages, in execution order.
    pub const ALL: [FlowStage; 4] = [
        FlowStage::Floorplan,
        FlowStage::Assign,
        FlowStage::Verify,
        FlowStage::PostProcess,
    ];

    /// Short lowercase stage name (`floorplan`, `assign`, `verify`, `post-process`).
    pub fn name(self) -> &'static str {
        match self {
            FlowStage::Floorplan => "floorplan",
            FlowStage::Assign => "assign",
            FlowStage::Verify => "verify",
            FlowStage::PostProcess => "post-process",
        }
    }
}

impl fmt::Display for FlowStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Wall-clock seconds spent in each stage of one flow run.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct StageTimings {
    /// Time in the floorplanning stage.
    pub floorplan_s: f64,
    /// Time in the voltage-assignment stage.
    pub assign_s: f64,
    /// Time in the detailed-verification stage.
    pub verify_s: f64,
    /// Time in the post-processing stage. Near zero (but not exactly 0 — the
    /// passthrough that forwards the verify-stage results is still timed) when
    /// post-processing is disabled; check `FlowResult::post_process.is_none()` to detect
    /// a disabled stage, not this value.
    pub post_process_s: f64,
}

impl StageTimings {
    /// Seconds spent in `stage`.
    pub fn of(&self, stage: FlowStage) -> f64 {
        match stage {
            FlowStage::Floorplan => self.floorplan_s,
            FlowStage::Assign => self.assign_s,
            FlowStage::Verify => self.verify_s,
            FlowStage::PostProcess => self.post_process_s,
        }
    }

    /// Sum over all stages.
    pub fn total_s(&self) -> f64 {
        FlowStage::ALL.iter().map(|&s| self.of(s)).sum()
    }
}

/// Numerical settings of a detailed steady-state solve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SolverSettings {
    /// Convergence tolerance (largest per-node update, in K).
    pub tolerance: f64,
    /// Maximum number of SOR iterations.
    pub max_iterations: usize,
}

impl SolverSettings {
    /// The nominal sign-off settings: the detailed solver's own defaults.
    pub fn nominal() -> Self {
        Self {
            tolerance: tsc3d_thermal::SteadyStateSolver::DEFAULT_TOLERANCE,
            max_iterations: tsc3d_thermal::SteadyStateSolver::DEFAULT_MAX_ITERATIONS,
        }
    }

    /// Relaxed settings for the explicit retry after a failed nominal solve: looser
    /// tolerance, larger iteration budget.
    pub fn relaxed() -> Self {
        Self {
            tolerance: 1e-3,
            max_iterations: 20_000,
        }
    }
}

/// How the flow reacts when a detailed verification solve does not converge.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RetryPolicy {
    /// Fail the flow immediately with a [`FlowError`].
    Fail,
    /// Retry once with the given relaxed solver settings; the result records that the
    /// report came from a relaxed solve ([`SolveQuality::Relaxed`]). If the relaxed solve
    /// also fails, the flow fails.
    Relaxed(SolverSettings),
}

impl RetryPolicy {
    /// The default policy: one relaxed retry with [`SolverSettings::relaxed`].
    pub fn relaxed_default() -> Self {
        RetryPolicy::Relaxed(SolverSettings::relaxed())
    }
}

/// Which solver configuration produced an accepted verification report — the observable
/// record of the retry policy having kicked in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SolveQuality {
    /// The nominal solver converged.
    Nominal,
    /// The nominal solver failed and the report comes from the relaxed retry.
    Relaxed,
}

impl SolveQuality {
    /// `true` when the report required the relaxed retry.
    pub fn is_relaxed(self) -> bool {
        matches!(self, SolveQuality::Relaxed)
    }
}

/// Error of a flow run, tagged with the pipeline stage it occurred in.
#[derive(Debug, Clone, PartialEq)]
pub enum FlowError {
    /// A detailed thermal solve failed in `stage` after `attempts` solver attempts
    /// (1 = nominal only, 2 = nominal plus relaxed retry).
    Solve {
        /// The pipeline stage the solve belonged to.
        stage: FlowStage,
        /// Number of solver attempts made before giving up.
        attempts: usize,
        /// The error of the last attempt.
        source: SolveError,
    },
    /// The flow configuration is invalid (e.g. a degenerate verification grid).
    InvalidConfig {
        /// Human-readable description of the problem.
        reason: String,
    },
    /// The floorplanning stage produced a floorplan whose packing envelope exceeds the
    /// fixed die outline. Short ("quick") annealing schedules cannot guarantee a legal
    /// packing for every seed; carrying such a floorplan into verification would report
    /// correlations for a physically unrealizable design, so the flow fails typed instead.
    OutlineViolation {
        /// The packing-envelope stretch `max(bbox_w/outline_w, bbox_h/outline_h)` over all
        /// dies; values above 1 violate the fixed outline.
        packing: f64,
    },
    /// The run was cancelled cooperatively (user request or process shutdown) at a
    /// checkpoint inside `stage`. Timings of the stages that *did* complete are
    /// preserved.
    Cancelled {
        /// Why the cancel token fired ([`tsc3d_exec::CancelReason::User`] or
        /// [`tsc3d_exec::CancelReason::Shutdown`]; a deadline surfaces as
        /// [`FlowError::DeadlineExceeded`] instead).
        reason: tsc3d_exec::CancelReason,
        /// The stage that observed the cancellation.
        stage: FlowStage,
        /// Wall-clock of the stages completed before the cancellation.
        timings: StageTimings,
    },
    /// The run's deadline elapsed before it finished; detected at a checkpoint inside
    /// `stage`. Timings of the stages that completed are preserved.
    DeadlineExceeded {
        /// The stage that observed the expired deadline.
        stage: FlowStage,
        /// Wall-clock of the stages completed before the deadline fired.
        timings: StageTimings,
    },
    /// The fault-injection harness ([`tsc3d_exec::fault`]) injected an error at a
    /// checkpoint inside `stage` — only ever seen under an armed chaos plan.
    Fault {
        /// The fault site that fired (e.g. `flow-stage`, `sa-epoch`, `solver-sweep`).
        site: &'static str,
        /// The stage the site belongs to.
        stage: FlowStage,
    },
}

impl FlowError {
    /// The stage the error occurred in ([`FlowStage::Floorplan`] for configuration
    /// errors, which are detected before any stage runs).
    pub fn stage(&self) -> FlowStage {
        match self {
            FlowError::Solve { stage, .. } => *stage,
            FlowError::InvalidConfig { .. } => FlowStage::Floorplan,
            FlowError::OutlineViolation { .. } => FlowStage::Floorplan,
            FlowError::Cancelled { stage, .. } => *stage,
            FlowError::DeadlineExceeded { stage, .. } => *stage,
            FlowError::Fault { stage, .. } => *stage,
        }
    }

    /// Short stable kebab-case tag of the error variant (`solve`, `invalid-config`,
    /// `outline-violation`, `cancelled`, `shutdown`, `deadline`, `fault-injected`) —
    /// the key campaign aggregation and retry policies match failures under.
    pub fn kind(&self) -> &'static str {
        match self {
            FlowError::Solve { .. } => "solve",
            FlowError::InvalidConfig { .. } => "invalid-config",
            FlowError::OutlineViolation { .. } => "outline-violation",
            FlowError::Cancelled { reason, .. } => reason.kind(),
            FlowError::DeadlineExceeded { .. } => "deadline",
            FlowError::Fault { .. } => "fault-injected",
        }
    }

    /// Builds the typed error for an [`tsc3d_exec::Interrupt`] observed at a checkpoint
    /// in `stage`, carrying the `timings` of the stages completed so far.
    pub fn from_interrupt(
        interrupt: tsc3d_exec::Interrupt,
        stage: FlowStage,
        timings: StageTimings,
    ) -> FlowError {
        match interrupt {
            tsc3d_exec::Interrupt::Cancelled(tsc3d_exec::CancelReason::Deadline) => {
                FlowError::DeadlineExceeded { stage, timings }
            }
            tsc3d_exec::Interrupt::Cancelled(reason) => FlowError::Cancelled {
                reason,
                stage,
                timings,
            },
            tsc3d_exec::Interrupt::Fault(fault) => FlowError::Fault {
                site: fault.site,
                stage,
            },
        }
    }

    /// Replaces the carried partial timings on the cancellation variants (the flow
    /// driver patches in the stage wall-clocks it accumulated before the interrupt;
    /// stage helpers build the error before those are known). Other variants pass
    /// through unchanged.
    pub fn with_timings(self, timings: StageTimings) -> FlowError {
        match self {
            FlowError::Cancelled { reason, stage, .. } => FlowError::Cancelled {
                reason,
                stage,
                timings,
            },
            FlowError::DeadlineExceeded { stage, .. } => {
                FlowError::DeadlineExceeded { stage, timings }
            }
            other => other,
        }
    }

    /// The partial stage timings an interrupted run preserved, if this error carries any.
    pub fn partial_timings(&self) -> Option<StageTimings> {
        match self {
            FlowError::Cancelled { timings, .. } | FlowError::DeadlineExceeded { timings, .. } => {
                Some(*timings)
            }
            _ => None,
        }
    }
}

/// Renders an error and its full [`Error::source`] chain as `error: cause: root-cause`.
///
/// [`FlowError`]'s own `Display` already includes its direct [`SolveError`] source; this
/// helper is for log sinks (campaign failure records, CLI diagnostics) that receive an
/// arbitrary `dyn Error` and must show root causes without assuming a concrete type. The
/// chain is deduplicated against the head text, so sources a `Display` implementation
/// already inlined are not repeated.
pub fn display_chain(error: &(dyn Error + 'static)) -> String {
    let mut text = error.to_string();
    let mut current = error.source();
    while let Some(source) = current {
        let rendered = source.to_string();
        if !text.contains(&rendered) {
            text.push_str(": ");
            text.push_str(&rendered);
        }
        current = source.source();
    }
    text
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::Solve {
                stage,
                attempts,
                source,
            } => write!(
                f,
                "detailed thermal solve failed in the {stage} stage after {attempts} attempt(s): {source}"
            ),
            FlowError::InvalidConfig { reason } => write!(f, "invalid flow configuration: {reason}"),
            FlowError::OutlineViolation { packing } => write!(
                f,
                "floorplan violates the fixed outline: packing envelope stretch {packing:.4} > 1"
            ),
            FlowError::Cancelled { reason, stage, .. } => {
                write!(f, "flow {reason} in the {stage} stage")
            }
            FlowError::DeadlineExceeded { stage, .. } => {
                write!(f, "flow deadline exceeded in the {stage} stage")
            }
            FlowError::Fault { site, stage } => {
                write!(f, "injected fault at site '{site}' in the {stage} stage")
            }
        }
    }
}

impl Error for FlowError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FlowError::Solve { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_names_and_order() {
        assert_eq!(FlowStage::ALL.len(), 4);
        assert_eq!(FlowStage::Floorplan.name(), "floorplan");
        assert_eq!(FlowStage::PostProcess.to_string(), "post-process");
    }

    #[test]
    fn timings_sum_over_stages() {
        let timings = StageTimings {
            floorplan_s: 1.0,
            assign_s: 0.5,
            verify_s: 0.25,
            post_process_s: 0.25,
        };
        assert!((timings.total_s() - 2.0).abs() < 1e-12);
        assert_eq!(timings.of(FlowStage::Assign), 0.5);
    }

    #[test]
    fn flow_error_reports_stage_and_source() {
        let err = FlowError::Solve {
            stage: FlowStage::PostProcess,
            attempts: 2,
            source: SolveError::NotConverged {
                residual: 0.5,
                iterations: 100,
            },
        };
        assert_eq!(err.stage(), FlowStage::PostProcess);
        let text = err.to_string();
        assert!(text.contains("post-process"));
        assert!(text.contains("2 attempt(s)"));
        assert!(std::error::Error::source(&err).is_some());

        let config_err = FlowError::InvalidConfig {
            reason: "verification_bins must be >= 2".into(),
        };
        assert_eq!(config_err.stage(), FlowStage::Floorplan);
        assert!(std::error::Error::source(&config_err).is_none());
    }

    #[test]
    fn outline_violation_is_a_floorplan_stage_error() {
        let err = FlowError::OutlineViolation { packing: 1.25 };
        assert_eq!(err.stage(), FlowStage::Floorplan);
        assert_eq!(err.kind(), "outline-violation");
        assert!(err.to_string().contains("1.2500"));
        assert!(std::error::Error::source(&err).is_none());
    }

    #[test]
    fn error_kinds_are_stable_tags() {
        let solve = FlowError::Solve {
            stage: FlowStage::Verify,
            attempts: 1,
            source: SolveError::GridMismatch,
        };
        assert_eq!(solve.kind(), "solve");
        let config = FlowError::InvalidConfig { reason: "x".into() };
        assert_eq!(config.kind(), "invalid-config");
    }

    #[test]
    fn display_chain_walks_to_the_root_cause() {
        #[derive(Debug)]
        struct Wrapper(FlowError);
        impl fmt::Display for Wrapper {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "job 7 failed")
            }
        }
        impl Error for Wrapper {
            fn source(&self) -> Option<&(dyn Error + 'static)> {
                Some(&self.0)
            }
        }

        let err = Wrapper(FlowError::Solve {
            stage: FlowStage::Verify,
            attempts: 2,
            source: SolveError::NotConverged {
                residual: 1.0,
                iterations: 5,
            },
        });
        let chain = display_chain(&err);
        // Head, mid (FlowError) and root (SolveError) all appear exactly once.
        assert!(chain.starts_with("job 7 failed: "));
        assert!(chain.contains("verify stage"));
        assert_eq!(chain.matches("did not converge").count(), 1);
    }

    #[test]
    fn retry_policy_and_quality() {
        let policy = RetryPolicy::relaxed_default();
        assert!(
            matches!(policy, RetryPolicy::Relaxed(s) if s.tolerance > SolverSettings::nominal().tolerance)
        );
        assert!(SolveQuality::Relaxed.is_relaxed());
        assert!(!SolveQuality::Nominal.is_relaxed());
    }
}

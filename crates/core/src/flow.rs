//! The end-to-end TSC-aware floorplanning flow (Figure 3 of the paper), as an explicit
//! staged pipeline: floorplan → assign → verify → post-process.
//!
//! Every stage is fallible and threads a [`FlowError`] through `Result`; per-stage
//! wall-clock timings are recorded in [`FlowResult::stage_timings`]. When a detailed solve
//! does not converge, the configured [`RetryPolicy`] decides between failing and one
//! explicit relaxed retry — whose use is recorded in the result ([`SolveQuality`]) rather
//! than hidden in a fallback.

use serde::{Deserialize, Serialize};
use tsc3d_floorplan::{
    plan_signal_tsvs, Evaluator, Floorplan, ObjectiveWeights, SaResult, SaSchedule,
    SimulatedAnnealing, TsvPlan,
};
use tsc3d_geometry::{Grid, Stack};
use tsc3d_leakage::SpatialEntropy;
use tsc3d_netlist::Design;
use tsc3d_power::VoltageAssignment;
use tsc3d_thermal::{SolveError, SteadyStateSolver, ThermalConfig};

use tsc3d_obs as obs;

use crate::error::{FlowError, FlowStage, RetryPolicy, SolveQuality, SolverSettings, StageTimings};

/// Stage-latency bucket bounds, in seconds (shared with serve's histograms).
const STAGE_BOUNDS_S: [f64; 10] = [0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0, 120.0];

/// Cached handles into the global registry for the `tsc3d_flow_*` families, so
/// the per-run cost is atomic bumps rather than registry lookups.
struct FlowMetrics {
    runs: obs::Counter,
    evaluations: obs::Counter,
    stage_floorplan: obs::Histogram,
    stage_assign: obs::Histogram,
    stage_verify: obs::Histogram,
    stage_post_process: obs::Histogram,
}

fn flow_metrics() -> &'static FlowMetrics {
    static METRICS: std::sync::OnceLock<FlowMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| {
        let registry = obs::global();
        let stage = |name: &str| {
            registry.histogram_with(
                "tsc3d_flow_stage_seconds",
                "Flow-stage wall-clock latency",
                &STAGE_BOUNDS_S,
                &[("stage", name)],
            )
        };
        FlowMetrics {
            runs: registry.counter("tsc3d_flow_runs_total", "Flow pipeline runs started"),
            evaluations: registry.counter(
                "tsc3d_flow_evaluations_total",
                "SA cost evaluations performed by successful flow runs",
            ),
            stage_floorplan: stage("floorplan"),
            stage_assign: stage("assign"),
            stage_verify: stage("verify"),
            stage_post_process: stage("post_process"),
        }
    })
}
use crate::postprocess::{DummyTsvInserter, PostProcessConfig, PostProcessResult};
use crate::verification::{default_solver, verify_cancellable, VerificationReport};

/// The two floorplanning setups compared throughout the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Setup {
    /// Power-aware floorplanning (the competitive baseline, setup (i)).
    PowerAware,
    /// Thermal side-channel-aware floorplanning (the proposed technique, setup (ii)).
    TscAware,
}

impl Setup {
    /// The objective weights of the setup.
    pub fn weights(self) -> ObjectiveWeights {
        match self {
            Setup::PowerAware => ObjectiveWeights::power_aware(),
            Setup::TscAware => ObjectiveWeights::tsc_aware(),
        }
    }

    /// Short label used in tables ("PA" / "TSC").
    pub fn label(self) -> &'static str {
        match self {
            Setup::PowerAware => "PA",
            Setup::TscAware => "TSC",
        }
    }
}

/// How the flow reacts when the floorplanning stage produces a packing envelope that
/// exceeds the fixed die outline (possible under short annealing schedules).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum OutlinePolicy {
    /// Fail immediately with [`FlowError::OutlineViolation`].
    Fail,
    /// Re-anneal up to `max_rounds` times with escalating packing weight and effort (an
    /// explicit repair pass, recorded in [`FlowResult::outline_repair`]). Round `r`
    /// quadruples the packing weight and doubles both the stage count and the moves per
    /// stage relative to round `r-1`, i.e. it anneals `4^r` times the configured
    /// schedule — `max_rounds` is the cost bound, so cap it low for large designs under
    /// short schedules. If no round produces a legal packing, the flow fails with
    /// [`FlowError::OutlineViolation`] carrying the best (smallest) stretch seen.
    /// `max_rounds == 0` behaves like [`OutlinePolicy::Fail`].
    Repair {
        /// Maximum number of packing-weighted re-annealing rounds.
        max_rounds: usize,
    },
}

impl OutlinePolicy {
    /// The default policy: up to four packing-weighted repair rounds. Note the per-round
    /// effort grows as `4^r` (the last round anneals 256x the configured schedule), so
    /// an unrepairable design pays the full escalation before failing typed; tests and
    /// sweeps over large designs should cap `max_rounds` lower.
    pub fn repair_default() -> Self {
        OutlinePolicy::Repair { max_rounds: 4 }
    }
}

/// Record of an outline-repair pass having run: the observable trace of
/// [`OutlinePolicy::Repair`] kicking in, so repaired floorplans never flow silently.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OutlineRepair {
    /// Number of re-annealing rounds run (1-based; the round that produced the accepted
    /// floorplan).
    pub rounds: usize,
    /// Packing stretch of the original (rejected) floorplan.
    pub packing_before: f64,
    /// Packing stretch of the accepted floorplan (≤ 1 within tolerance).
    pub packing_after: f64,
}

/// Configuration of a full flow run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlowConfig {
    /// Which setup to run.
    pub setup: Setup,
    /// Annealing schedule of the floorplanning stage.
    pub schedule: SaSchedule,
    /// Analysis-grid resolution (bins per axis) of the detailed verification.
    pub verification_bins: usize,
    /// Numerical settings of the nominal detailed solver used by the verify and sign-off
    /// stages.
    pub solver: SolverSettings,
    /// What to do when a detailed solve does not converge.
    pub retry: RetryPolicy,
    /// Optional override of the objective weights; `None` uses the setup's canonical
    /// weights ([`Setup::weights`]). Campaign sweeps use this to explore cost-weight
    /// scenarios beyond the paper's two setups.
    pub weights: Option<ObjectiveWeights>,
    /// What to do when the floorplan's packing envelope violates the fixed outline.
    pub outline: OutlinePolicy,
    /// Post-processing configuration; `None` disables dummy-TSV insertion (the power-aware
    /// baseline never inserts dummy TSVs).
    pub post_process: Option<PostProcessConfig>,
}

impl FlowConfig {
    /// A quick configuration for tests and examples.
    pub fn quick(setup: Setup) -> Self {
        Self {
            setup,
            schedule: SaSchedule::quick(),
            verification_bins: 16,
            solver: SolverSettings::nominal(),
            retry: RetryPolicy::relaxed_default(),
            weights: None,
            outline: OutlinePolicy::repair_default(),
            post_process: match setup {
                Setup::PowerAware => None,
                Setup::TscAware => Some(PostProcessConfig::quick()),
            },
        }
    }

    /// The paper-style configuration (standard annealing schedule, 64-bin verification
    /// grid, detailed-engine post-processing for the TSC setup).
    pub fn paper(setup: Setup) -> Self {
        Self {
            setup,
            schedule: SaSchedule::standard(),
            verification_bins: 64,
            solver: SolverSettings::nominal(),
            retry: RetryPolicy::relaxed_default(),
            weights: None,
            outline: OutlinePolicy::repair_default(),
            post_process: match setup {
                Setup::PowerAware => None,
                Setup::TscAware => Some(PostProcessConfig::paper()),
            },
        }
    }

    /// The objective weights in effect: the explicit override when set, otherwise the
    /// setup's canonical weights.
    pub fn effective_weights(&self) -> ObjectiveWeights {
        self.weights.unwrap_or_else(|| self.setup.weights())
    }

    /// Validates the configuration before any stage runs.
    fn validate(&self) -> Result<(), FlowError> {
        if self.verification_bins < 2 {
            return Err(FlowError::InvalidConfig {
                reason: format!(
                    "verification_bins must be >= 2, got {}",
                    self.verification_bins
                ),
            });
        }
        validate_solver_settings("solver", &self.solver)?;
        if let RetryPolicy::Relaxed(settings) = &self.retry {
            validate_solver_settings("retry solver", settings)?;
        }
        Ok(())
    }
}

/// Numerical slack on the fixed-outline packing check, matching the tolerance the
/// annealer's own tests accept for a "legal" packing.
const OUTLINE_TOLERANCE: f64 = 1e-9;

/// Checks one set of solver settings; a NaN tolerance would make the solver's
/// convergence check (`residual > tolerance`) pass vacuously and report unconverged
/// temperatures as a success.
fn validate_solver_settings(label: &str, settings: &SolverSettings) -> Result<(), FlowError> {
    if !settings.tolerance.is_finite() || settings.tolerance <= 0.0 {
        return Err(FlowError::InvalidConfig {
            reason: format!(
                "{label} tolerance must be positive and finite, got {}",
                settings.tolerance
            ),
        });
    }
    if settings.max_iterations == 0 {
        return Err(FlowError::InvalidConfig {
            reason: format!("{label} max_iterations must be >= 1"),
        });
    }
    Ok(())
}

/// Result of a full flow run.
#[derive(Debug, Clone)]
pub struct FlowResult {
    /// The setup that was run.
    pub setup: Setup,
    /// The annealing result (best floorplan, in-loop cost breakdown, runtime).
    pub sa: SaResult,
    /// The voltage assignment of the final floorplan.
    pub assignment: VoltageAssignment,
    /// Voltage-scaled per-block powers in watts.
    pub scaled_powers: Vec<f64>,
    /// Spatial entropies of the final power maps, per die (bottom first) — `S1`, `S2`.
    pub spatial_entropies: Vec<f64>,
    /// Detailed verification before post-processing.
    pub verification: VerificationReport,
    /// Which solver configuration produced [`FlowResult::verification`].
    pub verification_solve: SolveQuality,
    /// Per-die correlations from the detailed verification (before dummy TSVs) — the values
    /// the paper reports as `r1`, `r2` for the power-aware setup.
    pub verified_correlations: Vec<f64>,
    /// Post-processing result (TSC-aware setup only).
    pub post_process: Option<PostProcessResult>,
    /// The final sign-off verification with the augmented TSV plan (power/thermal maps
    /// included); `None` when post-processing is disabled.
    pub signoff_verification: Option<VerificationReport>,
    /// Which solver configuration produced the final sign-off verification; `None` when
    /// post-processing (and thus the second verification) is disabled.
    pub signoff_solve: Option<SolveQuality>,
    /// Final per-die correlations after post-processing (equal to
    /// `verified_correlations` when post-processing is disabled).
    pub final_correlations: Vec<f64>,
    /// Final TSV plan including any dummy TSVs.
    pub final_tsv_plan: TsvPlan,
    /// Record of the outline-repair pass, when the original floorplan violated the fixed
    /// outline and [`OutlinePolicy::Repair`] re-annealed it; `None` when the first
    /// floorplan was already legal.
    pub outline_repair: Option<OutlineRepair>,
    /// Wall-clock seconds spent per pipeline stage.
    pub stage_timings: StageTimings,
    /// Total flow runtime in seconds.
    pub runtime_seconds: f64,
}

impl FlowResult {
    /// The floorplan produced by the flow.
    pub fn floorplan(&self) -> &Floorplan {
        &self.sa.floorplan
    }

    /// Number of signal TSVs of the final plan.
    pub fn signal_tsvs(&self) -> usize {
        self.final_tsv_plan.signal_count()
    }

    /// Number of dummy thermal TSVs of the final plan.
    pub fn dummy_tsvs(&self) -> usize {
        self.final_tsv_plan.dummy_count()
    }

    /// Average of the final per-die correlations.
    pub fn avg_final_correlation(&self) -> f64 {
        if self.final_correlations.is_empty() {
            0.0
        } else {
            self.final_correlations.iter().sum::<f64>() / self.final_correlations.len() as f64
        }
    }

    /// `true` when any verification in the run needed the relaxed retry.
    pub fn used_relaxed_solve(&self) -> bool {
        self.verification_solve.is_relaxed()
            || self
                .signoff_solve
                .map(SolveQuality::is_relaxed)
                .unwrap_or(false)
    }
}

/// Intermediate state handed from the floorplan stage to the assign stage.
struct FloorplanStage {
    sa: SaResult,
    stack: Stack,
    outline_repair: Option<OutlineRepair>,
}

/// Intermediate state handed from the assign stage to the verify stage.
struct AssignStage {
    assignment: VoltageAssignment,
    scaled_powers: Vec<f64>,
}

/// Intermediate state handed from the verify stage to the post-process stage.
struct VerifyStage {
    grid: Grid,
    tsv_plan: TsvPlan,
    verification: VerificationReport,
    verification_solve: SolveQuality,
    spatial_entropies: Vec<f64>,
}

/// Outcome of the post-process stage.
struct PostProcessStage {
    post_process: Option<PostProcessResult>,
    signoff_verification: Option<VerificationReport>,
    signoff_solve: Option<SolveQuality>,
    final_tsv_plan: TsvPlan,
    final_correlations: Vec<f64>,
}

/// The flow driver: floorplanning, verification, and (for the TSC setup) post-processing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TscFlow {
    config: FlowConfig,
}

impl TscFlow {
    /// Creates a flow with the given configuration.
    pub fn new(config: FlowConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> FlowConfig {
        self.config
    }

    /// Runs the full pipeline on a design (two-die stack, as in the paper).
    ///
    /// # Errors
    ///
    /// Returns a [`FlowError`] when the configuration is invalid or a detailed thermal
    /// solve fails after exhausting the configured [`RetryPolicy`]. A failed final
    /// sign-off is never papered over with the pre-insertion verification.
    pub fn run(&self, design: &Design, seed: u64) -> Result<FlowResult, FlowError> {
        self.run_with_cancel(design, seed, &tsc3d_exec::CancelToken::new())
    }

    /// [`TscFlow::run`] polling `cancel` cooperatively: between stages (checkpoint site
    /// `flow-stage`), at every SA epoch (`sa-epoch`), and at every detailed-solver sweep
    /// window (`solver-sweep`).
    ///
    /// A run that completes is byte-identical to an uncancelled [`TscFlow::run`] — the
    /// checkpoints never touch the seeded random streams. An interrupted run returns
    /// [`FlowError::Cancelled`] / [`FlowError::DeadlineExceeded`] carrying the wall-clock
    /// of the stages that did complete.
    ///
    /// # Errors
    ///
    /// The [`TscFlow::run`] errors, plus the cancellation/deadline/fault variants.
    pub fn run_with_cancel(
        &self,
        design: &Design,
        seed: u64,
        cancel: &tsc3d_exec::CancelToken,
    ) -> Result<FlowResult, FlowError> {
        let _span = obs::span!("flow");
        let metrics = flow_metrics();
        metrics.runs.inc();
        let result = self.run_stages(design, seed, cancel);
        match &result {
            Ok(flow) => {
                metrics.evaluations.add(flow.sa.evaluations as u64);
                obs::add_to_span("evaluations", flow.sa.evaluations as u64);
            }
            Err(error) => {
                obs::global()
                    .counter_with(
                        "tsc3d_flow_failures_total",
                        "Flow runs that returned a FlowError, by error kind",
                        &[("kind", error.kind())],
                    )
                    .inc();
            }
        }
        result
    }

    /// The stage pipeline behind [`TscFlow::run`] (which adds the span/metric shell).
    ///
    /// Each stage boundary is a `flow-stage` checkpoint, and every stage error (including
    /// cancellations surfacing from inside a stage) is patched with the timings of the
    /// stages that completed before it, so partial progress is never lost on an abort.
    fn run_stages(
        &self,
        design: &Design,
        seed: u64,
        cancel: &tsc3d_exec::CancelToken,
    ) -> Result<FlowResult, FlowError> {
        self.config.validate()?;
        let metrics = flow_metrics();
        let start = std::time::Instant::now();
        let mut timings = StageTimings::default();
        let boundary = |stage: FlowStage, timings: &StageTimings| {
            tsc3d_exec::checkpoint("flow-stage", cancel)
                .map_err(|i| FlowError::from_interrupt(i, stage, *timings))
        };

        boundary(FlowStage::Floorplan, &timings)?;
        let stage_start = std::time::Instant::now();
        let floorplanned = {
            let _span = obs::span!("floorplan");
            let _stage = obs::stage_scope("floorplan");
            self.stage_floorplan(design, seed, cancel)
        };
        timings.floorplan_s = stage_start.elapsed().as_secs_f64();
        let floorplanned = floorplanned.map_err(|e| e.with_timings(timings))?;
        metrics.stage_floorplan.observe(timings.floorplan_s);

        boundary(FlowStage::Assign, &timings)?;
        let stage_start = std::time::Instant::now();
        let assigned = {
            let _span = obs::span!("assign");
            let _stage = obs::stage_scope("assign");
            self.stage_assign(design, &floorplanned)
        };
        timings.assign_s = stage_start.elapsed().as_secs_f64();
        metrics.stage_assign.observe(timings.assign_s);

        boundary(FlowStage::Verify, &timings)?;
        let stage_start = std::time::Instant::now();
        let verified = {
            let _span = obs::span!("verify");
            let _stage = obs::stage_scope("verify");
            self.stage_verify(design, &floorplanned, &assigned, cancel)
        };
        timings.verify_s = stage_start.elapsed().as_secs_f64();
        let verified = verified.map_err(|e| e.with_timings(timings))?;
        metrics.stage_verify.observe(timings.verify_s);

        boundary(FlowStage::PostProcess, &timings)?;
        let stage_start = std::time::Instant::now();
        let processed = {
            let _span = obs::span!("post_process");
            let _stage = obs::stage_scope("post_process");
            self.stage_post_process(design, &floorplanned, &assigned, &verified, seed, cancel)
        };
        timings.post_process_s = stage_start.elapsed().as_secs_f64();
        let processed = processed.map_err(|e| e.with_timings(timings))?;
        metrics.stage_post_process.observe(timings.post_process_s);

        Ok(FlowResult {
            setup: self.config.setup,
            sa: floorplanned.sa,
            assignment: assigned.assignment,
            scaled_powers: assigned.scaled_powers,
            spatial_entropies: verified.spatial_entropies,
            verified_correlations: verified.verification.correlations.clone(),
            verification: verified.verification,
            verification_solve: verified.verification_solve,
            post_process: processed.post_process,
            signoff_verification: processed.signoff_verification,
            signoff_solve: processed.signoff_solve,
            final_correlations: processed.final_correlations,
            final_tsv_plan: processed.final_tsv_plan,
            outline_repair: floorplanned.outline_repair,
            stage_timings: timings,
            runtime_seconds: start.elapsed().as_secs_f64(),
        })
    }

    /// Stage 1: multi-objective simulated-annealing floorplanning, with fixed-outline
    /// sign-off.
    ///
    /// Short ("quick") schedules cannot guarantee a legal packing for every seed; a
    /// floorplan whose envelope exceeds the outline would flow into verification as a
    /// physically unrealizable design. The configured [`OutlinePolicy`] either fails
    /// typed or runs the explicit repair pass: fresh re-annealing rounds with the packing
    /// weight escalated fourfold per round (seeded deterministically from `seed` and the
    /// round index), recorded in the result so repairs are never silent.
    fn stage_floorplan(
        &self,
        design: &Design,
        seed: u64,
        cancel: &tsc3d_exec::CancelToken,
    ) -> Result<FloorplanStage, FlowError> {
        let interrupted = |i: tsc3d_exec::Interrupt| {
            FlowError::from_interrupt(i, FlowStage::Floorplan, StageTimings::default())
        };
        let stack = Stack::two_die(design.outline());
        let weights = self.config.effective_weights();
        let annealer = SimulatedAnnealing::new(self.config.schedule);
        let sa = annealer
            .optimize_on_cancellable(design, stack, &weights, seed, cancel)
            .map_err(interrupted)?;
        let packing_before = sa.breakdown.packing;
        if packing_before <= 1.0 + OUTLINE_TOLERANCE {
            return Ok(FloorplanStage {
                sa,
                stack,
                outline_repair: None,
            });
        }

        let max_rounds = match self.config.outline {
            OutlinePolicy::Fail => 0,
            OutlinePolicy::Repair { max_rounds } => max_rounds,
        };
        let mut best_packing = packing_before;
        for round in 1..=max_rounds {
            // Each round quadruples both the packing weight and the annealing effort
            // (stages and moves each double): a violated packing under a short schedule
            // usually needs more moves, not just a steeper objective.
            let mut repair_weights = weights;
            repair_weights.packing *= 4f64.powi(round as i32);
            let mut repair_schedule = self.config.schedule;
            repair_schedule.stages *= 1 << round;
            repair_schedule.moves_per_stage *= 1 << round;
            let repaired = SimulatedAnnealing::new(repair_schedule)
                .optimize_on_cancellable(
                    design,
                    stack,
                    &repair_weights,
                    seed ^ (0x0C7_1189 + round as u64),
                    cancel,
                )
                .map_err(interrupted)?;
            let packing = repaired.breakdown.packing;
            if packing <= 1.0 + OUTLINE_TOLERANCE {
                return Ok(FloorplanStage {
                    sa: repaired,
                    stack,
                    outline_repair: Some(OutlineRepair {
                        rounds: round,
                        packing_before,
                        packing_after: packing,
                    }),
                });
            }
            best_packing = best_packing.min(packing);
        }
        Err(FlowError::OutlineViolation {
            packing: best_packing,
        })
    }

    /// Stage 2: extract the final voltage assignment and scale block powers.
    fn stage_assign(&self, design: &Design, floorplanned: &FloorplanStage) -> AssignStage {
        let weights = self.config.effective_weights();
        let evaluator = Evaluator::new(design, floorplanned.stack, weights)
            .with_grid_bins(self.config.schedule.grid_bins);
        let (_, assignment, _loop_tsv_plan) = evaluator.evaluate_full(&floorplanned.sa.floorplan);
        let scaling = tsc3d_timing::VoltageScaling::paper_90nm();
        let scaled_powers = assignment.scaled_powers(design, &scaling);
        AssignStage {
            assignment,
            scaled_powers,
        }
    }

    /// Stage 3: detailed verification (HotSpot's role in the paper).
    ///
    /// The verification (and everything downstream) uses its own, typically finer grid, so
    /// the signal TSVs are re-planned on that grid.
    fn stage_verify(
        &self,
        design: &Design,
        floorplanned: &FloorplanStage,
        assigned: &AssignStage,
        cancel: &tsc3d_exec::CancelToken,
    ) -> Result<VerifyStage, FlowError> {
        let floorplan = &floorplanned.sa.floorplan;
        let grid = floorplan.analysis_grid(self.config.verification_bins);
        let tsv_plan = plan_signal_tsvs(design, floorplan, grid);
        let (verification, verification_solve) = self.verify_with_retry(
            FlowStage::Verify,
            floorplan,
            &assigned.scaled_powers,
            &tsv_plan,
            grid,
            cancel,
        )?;

        // Spatial entropies of the verified power maps (S1, S2 in the paper's tables).
        let entropy_model = SpatialEntropy::default();
        let spatial_entropies: Vec<f64> = verification
            .power_maps
            .iter()
            .map(|m| entropy_model.of_map(m))
            .collect();

        Ok(VerifyStage {
            grid,
            tsv_plan,
            verification,
            verification_solve,
            spatial_entropies,
        })
    }

    /// Stage 4: activity sampling + dummy-TSV post-processing (TSC setup only), followed by
    /// the final sign-off verification with the augmented TSV plan.
    fn stage_post_process(
        &self,
        design: &Design,
        floorplanned: &FloorplanStage,
        assigned: &AssignStage,
        verified: &VerifyStage,
        seed: u64,
        cancel: &tsc3d_exec::CancelToken,
    ) -> Result<PostProcessStage, FlowError> {
        let Some(pp_config) = self.config.post_process else {
            return Ok(PostProcessStage {
                post_process: None,
                signoff_verification: None,
                signoff_solve: None,
                final_tsv_plan: verified.tsv_plan.clone(),
                final_correlations: verified.verification.correlations.clone(),
            });
        };

        let floorplan = &floorplanned.sa.floorplan;
        let inserter =
            DummyTsvInserter::new(pp_config, ThermalConfig::default_for(floorplanned.stack));
        let result = inserter.run(
            design,
            floorplan,
            &assigned.scaled_powers,
            verified.tsv_plan.clone(),
            verified.grid,
            seed ^ 0xD1CE,
        );

        // Final sign-off with the detailed solver and the augmented TSV plan. A failure
        // here surfaces as a FlowError (possibly after the explicit relaxed retry); the
        // pre-insertion verification is never silently reused.
        let (final_verification, signoff_solve) = self.verify_with_retry(
            FlowStage::PostProcess,
            floorplan,
            &assigned.scaled_powers,
            &result.tsv_plan,
            verified.grid,
            cancel,
        )?;

        Ok(PostProcessStage {
            final_correlations: final_verification.correlations.clone(),
            signoff_verification: Some(final_verification),
            signoff_solve: Some(signoff_solve),
            final_tsv_plan: result.tsv_plan.clone(),
            post_process: Some(result),
        })
    }

    /// Runs the detailed verification with the nominal solver, applying the configured
    /// [`RetryPolicy`] on a non-converged solve. The returned [`SolveQuality`] records
    /// whether the relaxed retry was needed.
    ///
    /// Only [`SolveError::NotConverged`] is retried: structural errors (wrong map counts,
    /// grid mismatches) cannot be fixed by relaxing the solver and surface immediately
    /// with the nominal attempt's error. An interrupted solve
    /// ([`SolveError::Interrupted`]) is never retried either — the caller asked out, so
    /// it maps straight to the typed cancellation/deadline/fault error.
    fn verify_with_retry(
        &self,
        stage: FlowStage,
        floorplan: &Floorplan,
        block_powers: &[f64],
        tsv_plan: &TsvPlan,
        grid: Grid,
        cancel: &tsc3d_exec::CancelToken,
    ) -> Result<(VerificationReport, SolveQuality), FlowError> {
        let interrupted = |error: &SolveError| match error {
            SolveError::Interrupted { interrupt, .. } => Some(FlowError::from_interrupt(
                *interrupt,
                stage,
                StageTimings::default(),
            )),
            _ => None,
        };
        let nominal = solver_for(floorplan, self.config.solver);
        match verify_cancellable(floorplan, block_powers, tsv_plan, grid, &nominal, cancel) {
            Ok(report) => Ok((report, SolveQuality::Nominal)),
            Err(nominal_error) => {
                if let Some(flow_error) = interrupted(&nominal_error) {
                    return Err(flow_error);
                }
                match (self.config.retry, &nominal_error) {
                    (RetryPolicy::Relaxed(settings), SolveError::NotConverged { .. }) => {
                        let relaxed = solver_for(floorplan, settings);
                        verify_cancellable(
                            floorplan,
                            block_powers,
                            tsv_plan,
                            grid,
                            &relaxed,
                            cancel,
                        )
                        .map(|report| (report, SolveQuality::Relaxed))
                        .map_err(|source| {
                            interrupted(&source).unwrap_or(FlowError::Solve {
                                stage,
                                attempts: 2,
                                source,
                            })
                        })
                    }
                    _ => Err(FlowError::Solve {
                        stage,
                        attempts: 1,
                        source: nominal_error,
                    }),
                }
            }
        }
    }
}

/// Builds a detailed solver for the floorplan's stack with the given settings.
fn solver_for(floorplan: &Floorplan, settings: SolverSettings) -> SteadyStateSolver {
    default_solver(floorplan)
        .with_tolerance(settings.tolerance)
        .with_max_iterations(settings.max_iterations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsc3d_netlist::suite::{generate, Benchmark};

    fn small_quick_config(setup: Setup) -> FlowConfig {
        let mut config = FlowConfig::quick(setup);
        // Keep tests fast: tiny annealing schedule and coarse grids.
        config.schedule.stages = 6;
        config.schedule.moves_per_stage = 10;
        config.schedule.grid_bins = 12;
        config.verification_bins = 12;
        config
    }

    fn small_quick_flow(setup: Setup) -> FlowResult {
        let design = generate(Benchmark::N100, 1);
        TscFlow::new(small_quick_config(setup))
            .run(&design, 3)
            .expect("quick flow converges")
    }

    #[test]
    fn power_aware_flow_produces_no_dummy_tsvs() {
        let result = small_quick_flow(Setup::PowerAware);
        assert_eq!(result.setup, Setup::PowerAware);
        assert_eq!(result.dummy_tsvs(), 0);
        assert!(result.post_process.is_none());
        assert!(result.signoff_verification.is_none());
        assert!(result.signoff_solve.is_none());
        assert_eq!(result.final_correlations, result.verified_correlations);
        assert!(result.signal_tsvs() > 0);
        assert_eq!(result.spatial_entropies.len(), 2);
        assert!(result.runtime_seconds > 0.0);
    }

    #[test]
    fn tsc_aware_flow_runs_post_processing() {
        let result = small_quick_flow(Setup::TscAware);
        assert_eq!(result.setup, Setup::TscAware);
        assert!(result.post_process.is_some());
        assert!(result.signoff_solve.is_some());
        // The sign-off report is kept on the result and is the source of the final
        // correlations.
        let signoff = result
            .signoff_verification
            .as_ref()
            .expect("TSC flow keeps the sign-off verification");
        assert_eq!(signoff.correlations, result.final_correlations);
        // Dummy TSVs may be zero (if no insertion helped) but never negative; correlations
        // stay within [-1, 1].
        assert!(result.avg_final_correlation().abs() <= 1.0);
        let pp = result.post_process.as_ref().unwrap();
        assert!(pp.correlation_after <= pp.correlation_before + 1e-12);
    }

    #[test]
    fn stage_timings_cover_the_runtime() {
        let result = small_quick_flow(Setup::TscAware);
        let timings = result.stage_timings;
        assert!(timings.floorplan_s > 0.0);
        assert!(timings.assign_s >= 0.0);
        assert!(timings.verify_s > 0.0);
        assert!(timings.post_process_s > 0.0);
        // The stages account for (almost all of) the total runtime.
        assert!(timings.total_s() <= result.runtime_seconds + 1e-9);
        assert!(timings.total_s() > 0.5 * result.runtime_seconds);
    }

    #[test]
    fn retry_policy_fail_surfaces_a_typed_error() {
        let design = generate(Benchmark::N100, 1);
        let mut config = small_quick_config(Setup::PowerAware);
        // A one-iteration budget cannot converge; with retries disabled the flow must
        // surface a typed error rather than panicking or reporting stale data.
        config.solver = SolverSettings {
            tolerance: 1e-9,
            max_iterations: 1,
        };
        config.retry = RetryPolicy::Fail;
        let err = TscFlow::new(config)
            .run(&design, 3)
            .expect_err("non-converging solve must fail");
        match err {
            FlowError::Solve {
                stage, attempts, ..
            } => {
                assert_eq!(stage, FlowStage::Verify);
                assert_eq!(attempts, 1);
            }
            other => panic!("unexpected error: {other:?}"),
        }
    }

    #[test]
    fn relaxed_retry_is_recorded_in_the_result() {
        let design = generate(Benchmark::N100, 1);
        let mut config = small_quick_config(Setup::PowerAware);
        // Nominal settings that cannot converge, with a workable relaxed fallback: the
        // flow must succeed and record that the relaxed solve was used.
        config.solver = SolverSettings {
            tolerance: 1e-9,
            max_iterations: 1,
        };
        config.retry = RetryPolicy::Relaxed(SolverSettings::relaxed());
        let result = TscFlow::new(config)
            .run(&design, 3)
            .expect("relaxed retry converges");
        assert_eq!(result.verification_solve, SolveQuality::Relaxed);
        assert!(result.used_relaxed_solve());
    }

    #[test]
    fn invalid_config_is_rejected_before_running() {
        let design = generate(Benchmark::N100, 1);
        let mut config = small_quick_config(Setup::PowerAware);
        config.verification_bins = 1;
        let err = TscFlow::new(config)
            .run(&design, 3)
            .expect_err("invalid config");
        assert!(matches!(err, FlowError::InvalidConfig { .. }));
        assert!(err.to_string().contains("verification_bins"));
    }

    #[test]
    fn invalid_retry_settings_are_rejected_too() {
        let design = generate(Benchmark::N100, 1);
        // A NaN relaxed tolerance would make the solver's convergence check pass
        // vacuously and report unconverged temperatures as a success.
        let mut config = small_quick_config(Setup::PowerAware);
        config.retry = RetryPolicy::Relaxed(SolverSettings {
            tolerance: f64::NAN,
            max_iterations: 10,
        });
        let err = TscFlow::new(config)
            .run(&design, 3)
            .expect_err("NaN retry tolerance must be rejected");
        assert!(matches!(err, FlowError::InvalidConfig { .. }));
        assert!(err.to_string().contains("retry solver"));

        config.retry = RetryPolicy::Relaxed(SolverSettings {
            tolerance: 1e-3,
            max_iterations: 0,
        });
        let err = TscFlow::new(config)
            .run(&design, 3)
            .expect_err("zero retry iterations must be rejected");
        assert!(matches!(err, FlowError::InvalidConfig { .. }));
    }

    #[test]
    fn outline_violations_surface_as_typed_errors() {
        let design = generate(Benchmark::N100, 1);
        let mut config = small_quick_config(Setup::PowerAware);
        // A one-move schedule leaves the initial (loose) packing essentially untouched,
        // which reliably exceeds the fixed outline on a ~55 %-utilized two-die stack.
        config.schedule.stages = 1;
        config.schedule.moves_per_stage = 1;
        config.outline = OutlinePolicy::Fail;
        let err = TscFlow::new(config)
            .run(&design, 3)
            .expect_err("a one-move schedule cannot legalize the packing");
        match err {
            FlowError::OutlineViolation { packing } => {
                assert!(packing > 1.0);
                assert_eq!(err.stage(), FlowStage::Floorplan);
            }
            other => panic!("expected OutlineViolation, got {other:?}"),
        }
    }

    #[test]
    fn outline_repair_is_recorded_and_legalizes() {
        // Seed 3 of N100 under the tiny schedule violates the outline (stretch ~1.22);
        // the default repair policy must legalize it and record the pass.
        let result = small_quick_flow(Setup::PowerAware);
        let repair = result
            .outline_repair
            .expect("tiny schedule triggers the repair pass for this seed");
        assert!(repair.rounds >= 1);
        assert!(repair.packing_before > 1.0);
        assert!(repair.packing_after <= 1.0 + 1e-9);
        assert!(result.sa.breakdown.packing <= 1.0 + 1e-9);
    }

    #[test]
    fn weight_override_changes_the_objective() {
        let design = generate(Benchmark::N100, 1);
        let mut config = small_quick_config(Setup::PowerAware);
        assert_eq!(config.effective_weights(), Setup::PowerAware.weights());
        // Overriding a PA config with the TSC weights must actually steer the annealer.
        config.weights = Some(Setup::TscAware.weights());
        assert!(config.effective_weights().is_leakage_aware());
        let overridden = TscFlow::new(config)
            .run(&design, 3)
            .expect("overridden flow converges");
        let baseline = small_quick_flow(Setup::PowerAware);
        assert_ne!(
            overridden.sa.breakdown.wirelength,
            baseline.sa.breakdown.wirelength
        );
    }

    #[test]
    fn setup_labels_and_weights() {
        assert_eq!(Setup::PowerAware.label(), "PA");
        assert_eq!(Setup::TscAware.label(), "TSC");
        assert!(Setup::TscAware.weights().is_leakage_aware());
        assert!(!Setup::PowerAware.weights().is_leakage_aware());
        let quick = FlowConfig::quick(Setup::PowerAware);
        assert!(quick.post_process.is_none());
        assert_eq!(quick.retry, RetryPolicy::relaxed_default());
        let paper = FlowConfig::paper(Setup::TscAware);
        assert!(paper.post_process.is_some());
        assert_eq!(paper.verification_bins, 64);
        assert_eq!(paper.solver, SolverSettings::nominal());
    }
}

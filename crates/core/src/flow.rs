//! The end-to-end TSC-aware floorplanning flow (Figure 3 of the paper).

use serde::{Deserialize, Serialize};
use tsc3d_floorplan::{
    plan_signal_tsvs, Evaluator, Floorplan, ObjectiveWeights, SaResult, SaSchedule,
    SimulatedAnnealing, TsvPlan,
};
use tsc3d_geometry::Stack;
use tsc3d_leakage::SpatialEntropy;
use tsc3d_netlist::Design;
use tsc3d_power::VoltageAssignment;
use tsc3d_thermal::ThermalConfig;

use crate::postprocess::{DummyTsvInserter, PostProcessConfig, PostProcessResult};
use crate::verification::{default_solver, verify, VerificationReport};

/// The two floorplanning setups compared throughout the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Setup {
    /// Power-aware floorplanning (the competitive baseline, setup (i)).
    PowerAware,
    /// Thermal side-channel-aware floorplanning (the proposed technique, setup (ii)).
    TscAware,
}

impl Setup {
    /// The objective weights of the setup.
    pub fn weights(self) -> ObjectiveWeights {
        match self {
            Setup::PowerAware => ObjectiveWeights::power_aware(),
            Setup::TscAware => ObjectiveWeights::tsc_aware(),
        }
    }

    /// Short label used in tables ("PA" / "TSC").
    pub fn label(self) -> &'static str {
        match self {
            Setup::PowerAware => "PA",
            Setup::TscAware => "TSC",
        }
    }
}

/// Configuration of a full flow run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlowConfig {
    /// Which setup to run.
    pub setup: Setup,
    /// Annealing schedule of the floorplanning stage.
    pub schedule: SaSchedule,
    /// Analysis-grid resolution (bins per axis) of the detailed verification.
    pub verification_bins: usize,
    /// Post-processing configuration; `None` disables dummy-TSV insertion (the power-aware
    /// baseline never inserts dummy TSVs).
    pub post_process: Option<PostProcessConfig>,
}

impl FlowConfig {
    /// A quick configuration for tests and examples.
    pub fn quick(setup: Setup) -> Self {
        Self {
            setup,
            schedule: SaSchedule::quick(),
            verification_bins: 16,
            post_process: match setup {
                Setup::PowerAware => None,
                Setup::TscAware => Some(PostProcessConfig::quick()),
            },
        }
    }

    /// The paper-style configuration (standard annealing schedule, 64-bin verification
    /// grid, detailed-engine post-processing for the TSC setup).
    pub fn paper(setup: Setup) -> Self {
        Self {
            setup,
            schedule: SaSchedule::standard(),
            verification_bins: 64,
            post_process: match setup {
                Setup::PowerAware => None,
                Setup::TscAware => Some(PostProcessConfig::paper()),
            },
        }
    }
}

/// Result of a full flow run.
#[derive(Debug, Clone)]
pub struct FlowResult {
    /// The setup that was run.
    pub setup: Setup,
    /// The annealing result (best floorplan, in-loop cost breakdown, runtime).
    pub sa: SaResult,
    /// The voltage assignment of the final floorplan.
    pub assignment: VoltageAssignment,
    /// Voltage-scaled per-block powers in watts.
    pub scaled_powers: Vec<f64>,
    /// Spatial entropies of the final power maps, per die (bottom first) — `S1`, `S2`.
    pub spatial_entropies: Vec<f64>,
    /// Detailed verification before post-processing.
    pub verification: VerificationReport,
    /// Per-die correlations from the detailed verification (before dummy TSVs) — the values
    /// the paper reports as `r1`, `r2` for the power-aware setup.
    pub verified_correlations: Vec<f64>,
    /// Post-processing result (TSC-aware setup only).
    pub post_process: Option<PostProcessResult>,
    /// Final per-die correlations after post-processing (equal to
    /// `verified_correlations` when post-processing is disabled).
    pub final_correlations: Vec<f64>,
    /// Final TSV plan including any dummy TSVs.
    pub final_tsv_plan: TsvPlan,
    /// Total flow runtime in seconds.
    pub runtime_seconds: f64,
}

impl FlowResult {
    /// The floorplan produced by the flow.
    pub fn floorplan(&self) -> &Floorplan {
        &self.sa.floorplan
    }

    /// Number of signal TSVs of the final plan.
    pub fn signal_tsvs(&self) -> usize {
        self.final_tsv_plan.signal_count()
    }

    /// Number of dummy thermal TSVs of the final plan.
    pub fn dummy_tsvs(&self) -> usize {
        self.final_tsv_plan.dummy_count()
    }

    /// Average of the final per-die correlations.
    pub fn avg_final_correlation(&self) -> f64 {
        if self.final_correlations.is_empty() {
            0.0
        } else {
            self.final_correlations.iter().sum::<f64>() / self.final_correlations.len() as f64
        }
    }
}

/// The flow driver: floorplanning, verification, and (for the TSC setup) post-processing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TscFlow {
    config: FlowConfig,
}

impl TscFlow {
    /// Creates a flow with the given configuration.
    pub fn new(config: FlowConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> FlowConfig {
        self.config
    }

    /// Runs the full flow on a design (two-die stack, as in the paper).
    pub fn run(&self, design: &Design, seed: u64) -> FlowResult {
        let start = std::time::Instant::now();
        let stack = Stack::two_die(design.outline());
        let weights = self.config.setup.weights();

        // --- Stage 1: multi-objective floorplanning. ---
        let sa = SimulatedAnnealing::new(self.config.schedule).optimize_on(design, stack, &weights, seed);

        // --- Stage 2: extract the final voltage assignment and TSV plan. ---
        let evaluator = Evaluator::new(design, stack, weights)
            .with_grid_bins(self.config.schedule.grid_bins);
        let (_, assignment, _loop_tsv_plan) = evaluator.evaluate_full(&sa.floorplan);
        let scaling = tsc3d_timing::VoltageScaling::paper_90nm();
        let scaled_powers = assignment.scaled_powers(design, &scaling);

        // --- Stage 3: detailed verification (HotSpot's role in the paper). ---
        // The verification (and everything downstream) uses its own, typically finer grid,
        // so the signal TSVs are re-planned on that grid.
        let grid = sa.floorplan.analysis_grid(self.config.verification_bins);
        let tsv_plan = plan_signal_tsvs(design, &sa.floorplan, grid);
        let solver = default_solver(&sa.floorplan);
        let verification = verify(&sa.floorplan, &scaled_powers, &tsv_plan, grid, &solver)
            .unwrap_or_else(|_| {
                // An unconverged verification is still reported, from a relaxed solve.
                let relaxed = default_solver(&sa.floorplan)
                    .with_tolerance(1e-3)
                    .with_max_iterations(20_000);
                verify(&sa.floorplan, &scaled_powers, &tsv_plan, grid, &relaxed)
                    .expect("relaxed verification solve must converge")
            });
        let verified_correlations = verification.correlations.clone();

        // Spatial entropies of the verified power maps (S1, S2 in the paper's tables).
        let entropy_model = SpatialEntropy::default();
        let spatial_entropies: Vec<f64> = verification
            .power_maps
            .iter()
            .map(|m| entropy_model.of_map(m))
            .collect();

        // --- Stage 4: activity sampling + dummy-TSV post-processing (TSC setup only). ---
        let (post_process, final_tsv_plan, final_correlations) = match self.config.post_process {
            Some(pp_config) => {
                let inserter =
                    DummyTsvInserter::new(pp_config, ThermalConfig::default_for(stack));
                let result = inserter.run(
                    design,
                    &sa.floorplan,
                    &scaled_powers,
                    tsv_plan.clone(),
                    grid,
                    seed ^ 0xD1CE,
                );
                // Final sign-off with the detailed solver and the augmented TSV plan.
                let final_verification = verify(
                    &sa.floorplan,
                    &scaled_powers,
                    &result.tsv_plan,
                    grid,
                    &solver,
                )
                .unwrap_or_else(|_| verification.clone());
                let final_correlations = final_verification.correlations;
                (Some(result.clone()), result.tsv_plan, final_correlations)
            }
            None => (None, tsv_plan, verified_correlations.clone()),
        };

        FlowResult {
            setup: self.config.setup,
            sa,
            assignment,
            scaled_powers,
            spatial_entropies,
            verification,
            verified_correlations,
            post_process,
            final_correlations,
            final_tsv_plan,
            runtime_seconds: start.elapsed().as_secs_f64(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsc3d_netlist::suite::{generate, Benchmark};

    fn small_quick_flow(setup: Setup) -> FlowResult {
        let design = generate(Benchmark::N100, 1);
        let mut config = FlowConfig::quick(setup);
        // Keep tests fast: tiny annealing schedule and coarse grids.
        config.schedule.stages = 6;
        config.schedule.moves_per_stage = 10;
        config.schedule.grid_bins = 12;
        config.verification_bins = 12;
        TscFlow::new(config).run(&design, 3)
    }

    #[test]
    fn power_aware_flow_produces_no_dummy_tsvs() {
        let result = small_quick_flow(Setup::PowerAware);
        assert_eq!(result.setup, Setup::PowerAware);
        assert_eq!(result.dummy_tsvs(), 0);
        assert!(result.post_process.is_none());
        assert_eq!(result.final_correlations, result.verified_correlations);
        assert!(result.signal_tsvs() > 0);
        assert_eq!(result.spatial_entropies.len(), 2);
        assert!(result.runtime_seconds > 0.0);
    }

    #[test]
    fn tsc_aware_flow_runs_post_processing() {
        let result = small_quick_flow(Setup::TscAware);
        assert_eq!(result.setup, Setup::TscAware);
        assert!(result.post_process.is_some());
        // Dummy TSVs may be zero (if no insertion helped) but never negative; correlations
        // stay within [-1, 1].
        assert!(result.avg_final_correlation().abs() <= 1.0);
        let pp = result.post_process.as_ref().unwrap();
        assert!(pp.correlation_after <= pp.correlation_before + 1e-12);
    }

    #[test]
    fn setup_labels_and_weights() {
        assert_eq!(Setup::PowerAware.label(), "PA");
        assert_eq!(Setup::TscAware.label(), "TSC");
        assert!(Setup::TscAware.weights().is_leakage_aware());
        assert!(!Setup::PowerAware.weights().is_leakage_aware());
        let quick = FlowConfig::quick(Setup::PowerAware);
        assert!(quick.post_process.is_none());
        let paper = FlowConfig::paper(Setup::TscAware);
        assert!(paper.post_process.is_some());
        assert_eq!(paper.verification_bins, 64);
    }
}

//! Activity sampling and correlation-stability-guided dummy-TSV insertion (Section 6.2).
//!
//! "Continuing the runtime sampling process, we iteratively insert dummy thermal TSVs where
//! the most stable correlations occur, as long as the resulting average correlation is
//! reduced. This stop criterion represents the final 'sweet spot' where further TSV
//! insertion would increase the overall correlation again."

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use tsc3d_floorplan::{Floorplan, TsvPlan};
use tsc3d_geometry::{DieId, Grid, GridMap};
use tsc3d_leakage::{map_correlation, CorrelationStability, StabilityMap};
use tsc3d_netlist::Design;
use tsc3d_power::ActivitySampler;
use tsc3d_thermal::{fast::PowerBlurring, SteadyStateSolver, ThermalConfig, TsvSite};

/// Which thermal engine drives the sampling and the insertion decisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ThermalEngine {
    /// The fast power-blurring estimator (cheap; used for in-loop experimentation and the
    /// ablation benches).
    Fast,
    /// The detailed finite-volume solver (the paper's HotSpot role; used for sign-off).
    Detailed,
}

/// Configuration of the post-processing stage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PostProcessConfig {
    /// Number of sampled activity sets (the paper samples 100 steady-state evaluations).
    pub activity_samples: usize,
    /// Relative standard deviation of the Gaussian activity model (paper: 10 %).
    pub activity_sigma: f64,
    /// Minimum number of dummy TSVs per island (one island per accepted insertion step).
    /// Each island is additionally sized so that it fills its grid bin up to the
    /// technology's maximum packed TSV density — sparse dummy TSVs would not measurably
    /// change the local vertical heat path.
    pub tsvs_per_island: usize,
    /// Maximum number of insertion steps to attempt (safety bound; the paper's stop
    /// criterion usually triggers earlier).
    pub max_insertions: usize,
    /// Thermal engine used for the stability sampling and the accept/revert decisions.
    pub engine: ThermalEngine,
}

impl PostProcessConfig {
    /// The paper-style configuration: 100 samples, 10 % sigma, detailed engine.
    pub fn paper() -> Self {
        Self {
            activity_samples: 100,
            activity_sigma: 0.10,
            tsvs_per_island: 16,
            max_insertions: 50,
            engine: ThermalEngine::Detailed,
        }
    }

    /// A fast configuration for tests and quick experiments (few samples, fast engine).
    pub fn quick() -> Self {
        Self {
            activity_samples: 12,
            activity_sigma: 0.10,
            tsvs_per_island: 16,
            max_insertions: 10,
            engine: ThermalEngine::Fast,
        }
    }
}

/// Outcome of the post-processing stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PostProcessResult {
    /// The TSV plan including the inserted dummy TSVs.
    pub tsv_plan: TsvPlan,
    /// Correlation-stability map of the bottom die before any insertion.
    pub stability: StabilityMap,
    /// Average (over dies) nominal correlation before insertion.
    pub correlation_before: f64,
    /// Average (over dies) nominal correlation after insertion.
    pub correlation_after: f64,
    /// Per-die nominal correlations after insertion.
    pub correlations_after: Vec<f64>,
    /// Number of dummy TSVs inserted.
    pub dummy_tsvs: usize,
    /// Number of insertion steps accepted.
    pub accepted_steps: usize,
}

impl PostProcessResult {
    /// Relative reduction of the average correlation achieved by the dummy TSVs (positive
    /// values mean the leakage was reduced).
    pub fn reduction(&self) -> f64 {
        if self.correlation_before.abs() < 1e-12 {
            0.0
        } else {
            (self.correlation_before - self.correlation_after) / self.correlation_before.abs()
        }
    }
}

/// The dummy-TSV insertion engine.
#[derive(Debug, Clone)]
pub struct DummyTsvInserter {
    config: PostProcessConfig,
    thermal_config: ThermalConfig,
}

impl DummyTsvInserter {
    /// Creates an inserter for the given stack configuration.
    pub fn new(config: PostProcessConfig, thermal_config: ThermalConfig) -> Self {
        Self {
            config,
            thermal_config,
        }
    }

    /// The post-processing configuration.
    pub fn config(&self) -> PostProcessConfig {
        self.config
    }

    /// Runs activity sampling, computes the correlation-stability map, and inserts dummy
    /// thermal TSVs at the most stable locations while the average nominal correlation keeps
    /// decreasing.
    ///
    /// `block_powers` are the nominal (voltage-scaled) block powers; `tsv_plan` is consumed
    /// and returned with the dummy TSVs added.
    pub fn run(
        &self,
        design: &Design,
        floorplan: &Floorplan,
        block_powers: &[f64],
        mut tsv_plan: TsvPlan,
        grid: Grid,
        seed: u64,
    ) -> PostProcessResult {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let sampler = sampler_with_powers(design, block_powers, self.config.activity_sigma);

        // --- Stability sampling on the bottom die (the die the paper protects first). ---
        let bottom = floorplan.stack().bottom();
        let mut accumulator = CorrelationStability::new(grid);
        for _ in 0..self.config.activity_samples.max(2) {
            let sample = sampler.sample(&mut rng);
            let power_maps = floorplan.power_maps(grid, &sample);
            let thermal_maps = self.thermal(&power_maps, &tsv_plan);
            accumulator.add_sample(&power_maps[bottom.index()], &thermal_maps[bottom.index()]);
        }
        let stability = accumulator.finish();

        // --- Nominal correlation before insertion. ---
        let nominal_maps = floorplan.power_maps(grid, block_powers);
        let correlation_before = self.average_correlation(&nominal_maps, &tsv_plan);

        // --- Iterative insertion at the most stable bins. ---
        let candidates = stability.top_bins(self.config.max_insertions.max(1));
        let technology = tsv_plan
            .signal()
            .first()
            .map(|f| f.technology())
            .unwrap_or_default();
        let mut best_correlation = correlation_before;
        let mut accepted_steps = 0;
        for (pos, _stability_value) in candidates {
            // Size the island so the bin reaches the maximum packed TSV density: only a
            // densely packed thermal-via island changes the local vertical conductance
            // enough to shift the thermal map.
            let headroom =
                (technology.max_density() - tsv_plan.dummy()[0].density_at(pos)).max(0.0);
            let fill_count =
                (headroom * grid.bin_area() / technology.metal_area()).floor() as usize;
            let count = fill_count.max(self.config.tsvs_per_island);
            let site = TsvSite::island(grid.bin_center(pos), count);
            let mut candidate_plan = tsv_plan.clone();
            candidate_plan.add_dummy(0, site);
            let correlation = self.average_correlation(&nominal_maps, &candidate_plan);
            if correlation < best_correlation {
                best_correlation = correlation;
                tsv_plan = candidate_plan;
                accepted_steps += 1;
            } else {
                // Sweet spot reached: further insertion no longer reduces the correlation.
                break;
            }
        }

        let thermal_after = self.thermal(&nominal_maps, &tsv_plan);
        let correlations_after: Vec<f64> = nominal_maps
            .iter()
            .zip(&thermal_after)
            .map(|(p, t)| map_correlation(p, t).unwrap_or(0.0))
            .collect();

        PostProcessResult {
            dummy_tsvs: tsv_plan.dummy_count(),
            tsv_plan,
            stability,
            correlation_before,
            correlation_after: best_correlation,
            correlations_after,
            accepted_steps,
        }
    }

    fn thermal(&self, power_maps: &[GridMap], tsv_plan: &TsvPlan) -> Vec<GridMap> {
        match self.config.engine {
            ThermalEngine::Fast => {
                PowerBlurring::new(&self.thermal_config).estimate(power_maps, &tsv_plan.combined())
            }
            ThermalEngine::Detailed => {
                let solver = SteadyStateSolver::new(self.thermal_config.clone())
                    .with_tolerance(1e-4)
                    .with_max_iterations(4_000);
                match solver.solve(power_maps, &tsv_plan.combined()) {
                    Ok(result) => result.die_temperatures().to_vec(),
                    // Fall back to the fast estimate rather than aborting the whole flow if
                    // the detailed solve fails to converge for a pathological candidate.
                    Err(_) => PowerBlurring::new(&self.thermal_config)
                        .estimate(power_maps, &tsv_plan.combined()),
                }
            }
        }
    }

    fn average_correlation(&self, power_maps: &[GridMap], tsv_plan: &TsvPlan) -> f64 {
        let thermal = self.thermal(power_maps, tsv_plan);
        let mut sum = 0.0;
        for (p, t) in power_maps.iter().zip(&thermal) {
            sum += map_correlation(p, t).unwrap_or(0.0);
        }
        sum / power_maps.len() as f64
    }
}

/// Builds an [`ActivitySampler`] whose means are the provided (voltage-scaled) powers rather
/// than the design's nominal powers.
fn sampler_with_powers(design: &Design, powers: &[f64], sigma: f64) -> ActivitySampler {
    // ActivitySampler samples around the design's nominal block powers; to sample around the
    // voltage-scaled powers we construct a shadow design with those powers.
    let blocks: Vec<tsc3d_netlist::Block> = design
        .iter_blocks()
        .map(|(id, b)| b.with_power(powers[id.index()]))
        .collect();
    let shadow = Design::new(
        design.name(),
        blocks,
        design.nets().to_vec(),
        design.terminals().to_vec(),
        design.outline(),
    )
    .expect("shadow design mirrors a valid design");
    ActivitySampler::new(&shadow, sigma)
}

/// Convenience: the die the stability map is computed for (bottom die, `d = 1` in the
/// paper's numbering).
pub fn protected_die() -> DieId {
    DieId::BOTTOM
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsc3d_floorplan::{plan_signal_tsvs, SequencePair3d};
    use tsc3d_geometry::Stack;
    use tsc3d_netlist::suite::{generate, Benchmark};

    fn setup() -> (Design, Floorplan, Grid, Vec<f64>, TsvPlan) {
        let design = generate(Benchmark::N100, 1);
        let stack = Stack::two_die(design.outline());
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let fp = SequencePair3d::initial(&design, stack, &mut rng).pack(&design);
        let grid = fp.analysis_grid(16);
        let powers: Vec<f64> = design.blocks().iter().map(|b| b.power()).collect();
        let plan = plan_signal_tsvs(&design, &fp, grid);
        (design, fp, grid, powers, plan)
    }

    #[test]
    fn post_processing_never_increases_the_average_correlation() {
        let (design, fp, grid, powers, plan) = setup();
        let config = PostProcessConfig::quick();
        let inserter = DummyTsvInserter::new(config, ThermalConfig::default_for(fp.stack()));
        let result = inserter.run(&design, &fp, &powers, plan, grid, 7);
        assert!(result.correlation_after <= result.correlation_before + 1e-12);
        assert!(result.reduction() >= 0.0);
        assert_eq!(result.correlations_after.len(), 2);
        // Every accepted step inserts at least the configured minimum island size.
        assert!(result.dummy_tsvs >= result.accepted_steps * config.tsvs_per_island);
        if result.accepted_steps == 0 {
            assert_eq!(result.dummy_tsvs, 0);
        }
    }

    #[test]
    fn stability_map_covers_the_analysis_grid() {
        let (design, fp, grid, powers, plan) = setup();
        let inserter = DummyTsvInserter::new(
            PostProcessConfig::quick(),
            ThermalConfig::default_for(fp.stack()),
        );
        let result = inserter.run(&design, &fp, &powers, plan, grid, 3);
        assert_eq!(result.stability.map().grid(), grid);
        assert!(result.stability.samples() >= 2);
        // Stability values are correlations.
        assert!(result.stability.map().max() <= 1.0 + 1e-9);
        assert!(result.stability.map().min() >= -1.0 - 1e-9);
    }

    #[test]
    fn post_processing_is_deterministic_per_seed() {
        let (design, fp, grid, powers, plan) = setup();
        let inserter = DummyTsvInserter::new(
            PostProcessConfig::quick(),
            ThermalConfig::default_for(fp.stack()),
        );
        let a = inserter.run(&design, &fp, &powers, plan.clone(), grid, 11);
        let b = inserter.run(&design, &fp, &powers, plan, grid, 11);
        assert_eq!(a.correlation_after, b.correlation_after);
        assert_eq!(a.dummy_tsvs, b.dummy_tsvs);
    }

    #[test]
    fn paper_config_uses_detailed_engine() {
        let c = PostProcessConfig::paper();
        assert_eq!(c.engine, ThermalEngine::Detailed);
        assert_eq!(c.activity_samples, 100);
        assert!((c.activity_sigma - 0.10).abs() < 1e-12);
        assert_eq!(protected_die(), DieId::BOTTOM);
    }
}

//! Thermal side-channel leakage metrics for 3D ICs.
//!
//! This crate implements the three leakage models of Section 4 of the paper:
//!
//! * [`pearson`] / [`map_correlation`] — the Pearson correlation `r_d` between the power map
//!   and the thermal map of a die (Eq. 1). The lower the correlation, the lower the leakage
//!   of power/activity patterns through the thermal side channel.
//! * [`CorrelationStability`] — the per-bin correlation `r_{d,x,y}` over `m` different
//!   activity sets (Eq. 2), capturing how *stable* the leakage is at a location when the
//!   workload varies. Stable bins are where an attacker can reliably calibrate; they are the
//!   insertion sites for dummy thermal TSVs in the paper's post-processing.
//! * [`SpatialEntropy`] — the spatial entropy `S_d` of a power map (Eq. 3, following
//!   Claramunt), a thermal-analysis-free proxy for the expected thermal gradients that can
//!   be evaluated cheaply inside every floorplanning iteration.
//!
//! A small implementation of the side-channel vulnerability factor ([`svf`]) is included as
//! the established reference metric the paper compares its correlation measure to.
//!
//! # Example
//!
//! ```
//! use tsc3d_geometry::{Grid, GridMap, Rect};
//! use tsc3d_leakage::{map_correlation, SpatialEntropy};
//!
//! let grid = Grid::square(Rect::from_size(100.0, 100.0), 8);
//! let mut power = GridMap::zeros(grid);
//! power.splat_power(&Rect::new(0.0, 0.0, 50.0, 50.0), 1.0);
//! // A thermal map proportional to the power map is perfectly correlated.
//! let thermal = power.map(|p| 300.0 + 10.0 * p);
//! assert!((map_correlation(&power, &thermal).unwrap() - 1.0).abs() < 1e-9);
//! let entropy = SpatialEntropy::default().of_map(&power);
//! assert!(entropy >= 0.0);
//! ```

#![warn(missing_docs)]

mod correlation;
mod entropy;
mod stability;
pub mod svf;

pub use correlation::{map_correlation, pearson, CorrelationError};
pub use entropy::{EntropyScratch, NestedMeansClasses, SpatialEntropy};
pub use stability::{CorrelationStability, StabilityMap};

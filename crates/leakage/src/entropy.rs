//! Spatial entropy of power maps (Eq. 3 of the paper, following Claramunt).

use serde::{Deserialize, Serialize};
use tsc3d_geometry::{GridMap, GridPos};

/// Result of the nested-means classification of a power map.
///
/// Bins are grouped into classes of similar power values; classes are the `c_i ∈ C` of
/// Eq. 3. The classification is produced by recursively bi-partitioning the sorted power
/// values at their mean until the values within a class are (nearly) constant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NestedMeansClasses {
    /// For every bin (row-major), the index of the class it belongs to.
    pub assignment: Vec<usize>,
    /// For every class, the member bins.
    pub members: Vec<Vec<GridPos>>,
    /// For every class, the (inclusive) value range it covers.
    pub ranges: Vec<(f64, f64)>,
}

impl NestedMeansClasses {
    /// Number of classes.
    pub fn class_count(&self) -> usize {
        self.members.len()
    }
}

/// Spatial-entropy calculator (Eq. 3).
///
/// The entropy rewards configurations where *similar* power values cluster spatially (low
/// thermal gradients → low leakage) and penalizes configurations where *different* power
/// values are close together (steep gradients → high leakage). It is evaluated directly on
/// the power map, without any thermal analysis, which makes it cheap enough for the inner
/// floorplanning loop.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpatialEntropy {
    /// Recursion depth limit of the nested-means partitioning (at most `2^depth` classes).
    pub max_depth: usize,
    /// Classes whose relative standard deviation falls below this threshold are not split
    /// further.
    pub std_dev_threshold: f64,
}

impl Default for SpatialEntropy {
    fn default() -> Self {
        Self {
            max_depth: 6,
            std_dev_threshold: 1e-3,
        }
    }
}

impl SpatialEntropy {
    /// Creates a calculator with an explicit depth limit and split threshold.
    pub fn new(max_depth: usize, std_dev_threshold: f64) -> Self {
        Self {
            max_depth,
            std_dev_threshold,
        }
    }

    /// Classifies the bins of a power map into similar-value classes using nested-means
    /// partitioning.
    pub fn classify(&self, power: &GridMap) -> NestedMeansClasses {
        let grid = power.grid();
        let mut indexed: Vec<(usize, f64)> = power.values().iter().copied().enumerate().collect();
        indexed.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));

        let mut groups: Vec<Vec<(usize, f64)>> = Vec::new();
        self.split(&indexed, 0, &mut groups);

        let mut assignment = vec![0usize; grid.bins()];
        let mut members = Vec::with_capacity(groups.len());
        let mut ranges = Vec::with_capacity(groups.len());
        for (class, group) in groups.iter().enumerate() {
            let mut bins = Vec::with_capacity(group.len());
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for &(idx, value) in group {
                assignment[idx] = class;
                bins.push(grid.pos_of(idx));
                lo = lo.min(value);
                hi = hi.max(value);
            }
            members.push(bins);
            ranges.push((lo, hi));
        }
        NestedMeansClasses {
            assignment,
            members,
            ranges,
        }
    }

    fn split(&self, sorted: &[(usize, f64)], depth: usize, out: &mut Vec<Vec<(usize, f64)>>) {
        if sorted.is_empty() {
            return;
        }
        let n = sorted.len() as f64;
        let mean = sorted.iter().map(|(_, v)| v).sum::<f64>() / n;
        let std = (sorted.iter().map(|(_, v)| (v - mean).powi(2)).sum::<f64>() / n).sqrt();
        let scale = mean.abs().max(1e-12);
        if depth >= self.max_depth || sorted.len() == 1 || std / scale < self.std_dev_threshold {
            out.push(sorted.to_vec());
            return;
        }
        // The values are sorted, so the mean defines a single cut point.
        let cut = sorted.partition_point(|(_, v)| *v < mean);
        if cut == 0 || cut == sorted.len() {
            out.push(sorted.to_vec());
            return;
        }
        self.split(&sorted[..cut], depth + 1, out);
        self.split(&sorted[cut..], depth + 1, out);
    }

    /// Computes the spatial entropy `S_d` of a power map (Eq. 3).
    ///
    /// The contribution of every class `c_i` is weighted by the ratio of its average
    /// intra-class to inter-class Manhattan distance (measured in grid bins), following
    /// Claramunt's original formulation: co-located *different* values (small inter-class
    /// distances) push the entropy up, co-located *similar* values (small intra-class
    /// distances) push it down — exactly the "closer the differently powered heat sources,
    /// the higher the thermal gradients" intuition of the paper. (The paper's Eq. 3 prints
    /// the ratio as `d_inter/d_intra`; we follow the reference metric and the paper's
    /// qualitative usage, which require the inverse orientation.) Degenerate distances
    /// (single-member classes, single-class maps) fall back to a distance of one bin so the
    /// formula stays well defined.
    pub fn of_map(&self, power: &GridMap) -> f64 {
        let classes = self.classify(power);
        self.of_classes(&classes, power)
    }

    /// Computes the entropy from a pre-computed classification (useful when both the classes
    /// and the entropy are needed).
    pub fn of_classes(&self, classes: &NestedMeansClasses, power: &GridMap) -> f64 {
        let total = power.grid().bins() as f64;
        let k = classes.class_count();
        if k <= 1 {
            // A perfectly uniform map has zero spatial entropy: no gradients, no leakage.
            return 0.0;
        }
        let mut entropy = 0.0;
        for i in 0..k {
            let members = &classes.members[i];
            if members.is_empty() {
                continue;
            }
            let p = members.len() as f64 / total;
            let d_intra = mean_intra_distance(members);
            let d_inter = mean_inter_distance(members, classes, i);
            let ratio = d_intra / d_inter;
            entropy -= ratio * p * p.log2();
        }
        entropy
    }
}

/// Average pairwise Manhattan distance (in bins) within a class; 1.0 for singletons.
fn mean_intra_distance(members: &[GridPos]) -> f64 {
    if members.len() < 2 {
        return 1.0;
    }
    let mut sum = 0.0;
    let mut count = 0.0;
    for (i, a) in members.iter().enumerate() {
        for b in &members[i + 1..] {
            sum += a.manhattan(*b) as f64;
            count += 1.0;
        }
    }
    if count == 0.0 || sum == 0.0 {
        1.0
    } else {
        sum / count
    }
}

/// Average Manhattan distance (in bins) from members of class `class` to members of all
/// other classes; 1.0 when there are no other members.
fn mean_inter_distance(members: &[GridPos], classes: &NestedMeansClasses, class: usize) -> f64 {
    let mut sum = 0.0;
    let mut count = 0.0;
    for (other, other_members) in classes.members.iter().enumerate() {
        if other == class {
            continue;
        }
        for a in members {
            for b in other_members {
                sum += a.manhattan(*b) as f64;
                count += 1.0;
            }
        }
    }
    if count == 0.0 || sum == 0.0 {
        1.0
    } else {
        sum / count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsc3d_geometry::{Grid, Rect};

    fn grid(n: usize) -> Grid {
        Grid::square(Rect::from_size(100.0, 100.0), n)
    }

    /// A map with `k` horizontal stripes of distinct power values.
    fn striped(n: usize, k: usize) -> GridMap {
        let g = grid(n);
        let values = (0..g.bins())
            .map(|i| {
                let row = i / n;
                (row * k / n) as f64
            })
            .collect();
        GridMap::from_values(g, values)
    }

    /// A checkerboard of two power values — maximally interleaved.
    fn checkerboard(n: usize) -> GridMap {
        let g = grid(n);
        let values = (0..g.bins())
            .map(|i| {
                let (r, c) = (i / n, i % n);
                ((r + c) % 2) as f64
            })
            .collect();
        GridMap::from_values(g, values)
    }

    #[test]
    fn uniform_map_has_zero_entropy() {
        let m = GridMap::constant(grid(8), 3.0);
        assert_eq!(SpatialEntropy::default().of_map(&m), 0.0);
    }

    #[test]
    fn classification_groups_equal_values() {
        let m = striped(8, 2);
        let classes = SpatialEntropy::default().classify(&m);
        assert_eq!(classes.class_count(), 2);
        assert_eq!(classes.members[0].len() + classes.members[1].len(), 64);
        // Ranges must not overlap.
        assert!(classes.ranges[0].1 <= classes.ranges[1].0);
    }

    #[test]
    fn interleaved_values_have_higher_entropy_than_separated() {
        // Same value histogram (half 0.0, half 1.0), different spatial arrangement:
        // the checkerboard (different values adjacent) must score higher than the two-stripe
        // arrangement (similar values clustered) — principle (i)/(ii) of Claramunt.
        let clustered = striped(8, 2);
        let interleaved = checkerboard(8);
        let e = SpatialEntropy::default();
        assert!(e.of_map(&interleaved) > e.of_map(&clustered));
    }

    #[test]
    fn more_distinct_power_levels_increase_entropy() {
        let few = striped(8, 2);
        let many = striped(8, 8);
        let e = SpatialEntropy::default();
        assert!(e.of_map(&many) > e.of_map(&few));
    }

    #[test]
    fn entropy_is_invariant_to_value_scaling() {
        // Classes depend on relative structure; scaling all powers by a constant must not
        // change the classification-based entropy.
        let m = striped(8, 4);
        let scaled = m.scaled(7.5);
        let e = SpatialEntropy::default();
        assert!((e.of_map(&m) - e.of_map(&scaled)).abs() < 1e-9);
    }

    #[test]
    fn depth_limit_bounds_class_count() {
        let g = grid(8);
        // All distinct values: without a depth limit every bin would be its own class.
        let values: Vec<f64> = (0..g.bins()).map(|i| i as f64).collect();
        let m = GridMap::from_values(g, values);
        let classes = SpatialEntropy::new(3, 1e-9).classify(&m);
        assert!(classes.class_count() <= 8);
        let deeper = SpatialEntropy::new(5, 1e-9).classify(&m);
        assert!(deeper.class_count() > classes.class_count());
    }

    #[test]
    fn assignment_is_consistent_with_members() {
        let m = striped(8, 4);
        let classes = SpatialEntropy::default().classify(&m);
        for (class, members) in classes.members.iter().enumerate() {
            for pos in members {
                let idx = m.grid().flat_index(*pos);
                assert_eq!(classes.assignment[idx], class);
            }
        }
    }

    #[test]
    fn singleton_classes_do_not_break_entropy() {
        let g = grid(4);
        let mut values = vec![0.0; g.bins()];
        values[5] = 100.0; // one extreme outlier → singleton class
        let m = GridMap::from_values(g, values);
        let e = SpatialEntropy::default().of_map(&m);
        assert!(e.is_finite());
        assert!(e > 0.0);
    }
}

//! Spatial entropy of power maps (Eq. 3 of the paper, following Claramunt).

use serde::{Deserialize, Serialize};
use tsc3d_geometry::{GridMap, GridPos};

/// Result of the nested-means classification of a power map.
///
/// Bins are grouped into classes of similar power values; classes are the `c_i ∈ C` of
/// Eq. 3. The classification is produced by recursively bi-partitioning the sorted power
/// values at their mean until the values within a class are (nearly) constant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NestedMeansClasses {
    /// For every bin (row-major), the index of the class it belongs to.
    pub assignment: Vec<usize>,
    /// For every class, the member bins.
    pub members: Vec<Vec<GridPos>>,
    /// For every class, the (inclusive) value range it covers.
    pub ranges: Vec<(f64, f64)>,
}

impl NestedMeansClasses {
    /// Number of classes.
    pub fn class_count(&self) -> usize {
        self.members.len()
    }
}

/// Reusable buffers for [`SpatialEntropy::of_map_with`]: the sorted value array, the class
/// index ranges and the per-class coordinate histograms.
#[derive(Debug, Clone, Default)]
pub struct EntropyScratch {
    /// `(bin index, value)` pairs sorted by value.
    sorted: Vec<(usize, f64)>,
    /// Class ranges (start, end) over `sorted`.
    classes: Vec<(usize, usize)>,
    col_class: Vec<u64>,
    row_class: Vec<u64>,
    /// Column of every bin index (avoids a division per class member).
    col_of: Vec<u16>,
    /// Row of every bin index.
    row_of: Vec<u16>,
    /// `f_col[c] = Σ_w |c - w|` over all columns (whole-grid distance profile).
    f_col: Vec<u64>,
    /// `f_row[r] = Σ_w |r - w|` over all rows.
    f_row: Vec<u64>,
    /// Column count the lookup tables were built for.
    table_cols: usize,
}

impl EntropyScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Spatial-entropy calculator (Eq. 3).
///
/// The entropy rewards configurations where *similar* power values cluster spatially (low
/// thermal gradients → low leakage) and penalizes configurations where *different* power
/// values are close together (steep gradients → high leakage). It is evaluated directly on
/// the power map, without any thermal analysis, which makes it cheap enough for the inner
/// floorplanning loop.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpatialEntropy {
    /// Recursion depth limit of the nested-means partitioning (at most `2^depth` classes).
    pub max_depth: usize,
    /// Classes whose relative standard deviation falls below this threshold are not split
    /// further.
    pub std_dev_threshold: f64,
}

impl Default for SpatialEntropy {
    fn default() -> Self {
        Self {
            max_depth: 6,
            std_dev_threshold: 1e-3,
        }
    }
}

impl SpatialEntropy {
    /// Creates a calculator with an explicit depth limit and split threshold.
    pub fn new(max_depth: usize, std_dev_threshold: f64) -> Self {
        Self {
            max_depth,
            std_dev_threshold,
        }
    }

    /// Classifies the bins of a power map into similar-value classes using nested-means
    /// partitioning.
    pub fn classify(&self, power: &GridMap) -> NestedMeansClasses {
        let grid = power.grid();
        let mut indexed: Vec<(usize, f64)> = power.values().iter().copied().enumerate().collect();
        indexed.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));

        let mut groups = Vec::new();
        self.split(&indexed, 0, &mut groups);

        let mut assignment = vec![0usize; grid.bins()];
        let mut members = Vec::with_capacity(groups.len());
        let mut ranges = Vec::with_capacity(groups.len());
        for (class, &(start, end)) in groups.iter().enumerate() {
            let group = &indexed[start..end];
            let mut bins = Vec::with_capacity(group.len());
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for &(idx, value) in group {
                assignment[idx] = class;
                bins.push(grid.pos_of(idx));
                lo = lo.min(value);
                hi = hi.max(value);
            }
            members.push(bins);
            ranges.push((lo, hi));
        }
        NestedMeansClasses {
            assignment,
            members,
            ranges,
        }
    }

    /// Nested-means partitioning of the (pre-sorted) values, emitting class index ranges
    /// in value order. Shared by [`SpatialEntropy::classify`] and the allocation-free
    /// [`SpatialEntropy::of_map_with`], so both derive identical classes.
    fn split(&self, sorted: &[(usize, f64)], depth: usize, out: &mut Vec<(usize, usize)>) {
        self.split_range(sorted, 0, sorted.len(), depth, out);
    }

    fn split_range(
        &self,
        sorted: &[(usize, f64)],
        start: usize,
        end: usize,
        depth: usize,
        out: &mut Vec<(usize, usize)>,
    ) {
        if start == end {
            return;
        }
        let slice = &sorted[start..end];
        let n = slice.len() as f64;
        let mean = slice.iter().map(|(_, v)| v).sum::<f64>() / n;
        let std = (slice.iter().map(|(_, v)| (v - mean).powi(2)).sum::<f64>() / n).sqrt();
        let scale = mean.abs().max(1e-12);
        if depth >= self.max_depth || slice.len() == 1 || std / scale < self.std_dev_threshold {
            out.push((start, end));
            return;
        }
        // The values are sorted, so the mean defines a single cut point.
        let cut = slice.partition_point(|(_, v)| *v < mean);
        if cut == 0 || cut == slice.len() {
            out.push((start, end));
            return;
        }
        self.split_range(sorted, start, start + cut, depth + 1, out);
        self.split_range(sorted, start + cut, end, depth + 1, out);
    }

    /// Computes the spatial entropy `S_d` of a power map (Eq. 3).
    ///
    /// The contribution of every class `c_i` is weighted by the ratio of its average
    /// intra-class to inter-class Manhattan distance (measured in grid bins), following
    /// Claramunt's original formulation: co-located *different* values (small inter-class
    /// distances) push the entropy up, co-located *similar* values (small intra-class
    /// distances) push it down — exactly the "closer the differently powered heat sources,
    /// the higher the thermal gradients" intuition of the paper. (The paper's Eq. 3 prints
    /// the ratio as `d_inter/d_intra`; we follow the reference metric and the paper's
    /// qualitative usage, which require the inverse orientation.) Degenerate distances
    /// (single-member classes, single-class maps) fall back to a distance of one bin so the
    /// formula stays well defined.
    pub fn of_map(&self, power: &GridMap) -> f64 {
        let classes = self.classify(power);
        self.of_classes(&classes, power)
    }

    /// [`SpatialEntropy::of_map`] over reusable buffers, skipping the materialized
    /// [`NestedMeansClasses`]: classes live as index ranges of the sorted value array and
    /// the distance means come straight from per-class coordinate histograms.
    ///
    /// Produces the same entropy as [`SpatialEntropy::of_map`] — same partitioning (the
    /// range splitter is shared with [`SpatialEntropy::classify`]), same exact integer
    /// distance sums, same accumulation order. Equal power values may classify into a
    /// different *order within* a class here (the sort is unstable), which affects no sum:
    /// class membership, histograms and per-class value statistics are functions of the
    /// value multiset alone.
    pub fn of_map_with(&self, power: &GridMap, scratch: &mut EntropyScratch) -> f64 {
        let grid = power.grid();
        scratch.sorted.clear();
        scratch
            .sorted
            .extend(power.values().iter().copied().enumerate());
        // Branch-free total-order key (sign-flip transform): for the NaN-free maps the
        // evaluator produces this sorts exactly like `partial_cmp`, only faster; the -0.0
        // vs +0.0 tie order (the one place the orders differ) cannot affect the class
        // partition or any sum.
        let sort_key = |v: f64| -> u64 {
            let bits = v.to_bits();
            bits ^ (((bits as i64 >> 63) as u64) | 0x8000_0000_0000_0000)
        };
        scratch.sorted.sort_unstable_by_key(|&(_, v)| sort_key(v));

        scratch.classes.clear();
        self.split(&scratch.sorted, 0, &mut scratch.classes);
        let k = scratch.classes.len();
        if k <= 1 {
            // A perfectly uniform map has zero spatial entropy: no gradients, no leakage.
            return 0.0;
        }

        let cols = grid.cols();
        let rows = grid.rows();
        let total = grid.bins() as f64;
        let members_all = grid.bins() as u64;
        scratch.col_class.resize(cols, 0);
        scratch.row_class.resize(rows, 0);
        if scratch.col_of.len() != grid.bins() || scratch.table_cols != cols {
            scratch.col_of.clear();
            scratch.row_of.clear();
            for idx in 0..grid.bins() {
                scratch.col_of.push((idx % cols) as u16);
                scratch.row_of.push((idx / cols) as u16);
            }
            let distance_profile = |n: usize| -> Vec<u64> {
                (0..n as u64)
                    .map(|c| {
                        let left = c * (c + 1) / 2;
                        let right_span = n as u64 - 1 - c;
                        let right = right_span * (right_span + 1) / 2;
                        left + right
                    })
                    .collect()
            };
            scratch.f_col = distance_profile(cols);
            scratch.f_row = distance_profile(rows);
            scratch.table_cols = cols;
        }

        let mut entropy = 0.0;
        for &(start, end) in &scratch.classes {
            let m = (end - start) as u64;
            if m == 0 {
                continue;
            }
            scratch.col_class.fill(0);
            scratch.row_class.fill(0);
            // `cross_all` accumulates Σ_{a∈A} Σ_{all bins b} |a - b| via the whole-grid
            // distance profiles (the classes partition every bin, so the whole-map
            // histogram is uniform: `rows` members per column and `cols` per row).
            let mut cross_all = 0u64;
            for &(idx, _) in &scratch.sorted[start..end] {
                let col = scratch.col_of[idx] as usize;
                let row = scratch.row_of[idx] as usize;
                scratch.col_class[col] += 1;
                scratch.row_class[row] += 1;
                cross_all += rows as u64 * scratch.f_col[col] + cols as u64 * scratch.f_row[row];
            }
            let p = m as f64 / total;
            let intra_sum =
                pairwise_abs_sum(&scratch.col_class) + pairwise_abs_sum(&scratch.row_class);
            let d_intra = mean_distance(intra_sum, m * (m - 1) / 2);
            // Distances from the class to everything outside it: all-pairs minus the
            // ordered intra pairs (integer-exact, so identical to the histogram cross sum
            // of the reference path).
            let inter_sum = cross_all - 2 * intra_sum;
            let d_inter = mean_distance(inter_sum, m * (members_all - m));
            entropy -= (d_intra / d_inter) * p * p.log2();
        }
        entropy
    }

    /// Computes the entropy from a pre-computed classification (useful when both the classes
    /// and the entropy are needed).
    ///
    /// The intra/inter-class Manhattan distance means are evaluated from per-class
    /// column/row histograms in O(bins) per class rather than by the literal O(m²)
    /// pairwise sums. Both formulations produce the same integer distance sum and pair
    /// count (which are exactly representable in `f64` for every grid size in use, so the
    /// literal accumulation never rounds) — the returned entropy is bit-identical to the
    /// pairwise evaluation while being fast enough for the floorplanner's inner loop.
    pub fn of_classes(&self, classes: &NestedMeansClasses, power: &GridMap) -> f64 {
        let grid = power.grid();
        let total = grid.bins() as f64;
        let k = classes.class_count();
        if k <= 1 {
            // A perfectly uniform map has zero spatial entropy: no gradients, no leakage.
            return 0.0;
        }

        // Per-class and whole-map histograms of member columns and rows: the Manhattan
        // metric is separable, so every pairwise distance sum reduces to two 1D sums.
        let cols = grid.cols();
        let rows = grid.rows();
        let mut col_hists = vec![vec![0u64; cols]; k];
        let mut row_hists = vec![vec![0u64; rows]; k];
        let mut col_all = vec![0u64; cols];
        let mut row_all = vec![0u64; rows];
        let mut members_all = 0u64;
        for (class, members) in classes.members.iter().enumerate() {
            for pos in members {
                col_hists[class][pos.col] += 1;
                row_hists[class][pos.row] += 1;
                col_all[pos.col] += 1;
                row_all[pos.row] += 1;
            }
            members_all += members.len() as u64;
        }

        let mut entropy = 0.0;
        let mut col_other = vec![0u64; cols];
        let mut row_other = vec![0u64; rows];
        for i in 0..k {
            let members = &classes.members[i];
            if members.is_empty() {
                continue;
            }
            let m = members.len() as u64;
            let p = members.len() as f64 / total;
            let d_intra = mean_intra_distance(m, &col_hists[i], &row_hists[i]);
            for (o, (a, h)) in col_other.iter_mut().zip(col_all.iter().zip(&col_hists[i])) {
                *o = a - h;
            }
            for (o, (a, h)) in row_other.iter_mut().zip(row_all.iter().zip(&row_hists[i])) {
                *o = a - h;
            }
            let d_inter = mean_inter_distance(
                m,
                members_all - m,
                &col_hists[i],
                &row_hists[i],
                &col_other,
                &row_other,
            );
            let ratio = d_intra / d_inter;
            entropy -= ratio * p * p.log2();
        }
        entropy
    }
}

/// Mean distance with the degenerate-case convention of the pairwise reference: 1.0 when
/// there are no pairs or the distance sum is zero.
fn mean_distance(sum: u64, count: u64) -> f64 {
    if count == 0 || sum == 0 {
        1.0
    } else {
        sum as f64 / count as f64
    }
}

/// Sum of `|a - b|` over every unordered pair of distinct elements drawn from one
/// histogram of coordinate counts (equal-coordinate pairs contribute zero).
fn pairwise_abs_sum(hist: &[u64]) -> u64 {
    let mut seen = 0u64;
    let mut seen_sum = 0u64;
    let mut sum = 0u64;
    for (v, &count) in hist.iter().enumerate() {
        if count > 0 {
            sum += count * (v as u64 * seen - seen_sum);
            seen += count;
            seen_sum += count * v as u64;
        }
    }
    sum
}

/// Sum of `|a - b|` over every pair with `a` drawn from `ha` and `b` drawn from `hb`.
fn cross_abs_sum(ha: &[u64], hb: &[u64]) -> u64 {
    let mut seen_a = 0u64;
    let mut sum_a = 0u64;
    let mut seen_b = 0u64;
    let mut sum_b = 0u64;
    let mut sum = 0u64;
    for (v, (&ca, &cb)) in ha.iter().zip(hb).enumerate() {
        let v = v as u64;
        sum += ca * (v * seen_b - sum_b) + cb * (v * seen_a - sum_a);
        seen_a += ca;
        sum_a += ca * v;
        seen_b += cb;
        sum_b += cb * v;
    }
    sum
}

/// Average pairwise Manhattan distance (in bins) within a class; 1.0 for singletons.
fn mean_intra_distance(members: u64, col_hist: &[u64], row_hist: &[u64]) -> f64 {
    if members < 2 {
        return 1.0;
    }
    let sum = pairwise_abs_sum(col_hist) + pairwise_abs_sum(row_hist);
    let count = members * (members - 1) / 2;
    if count == 0 || sum == 0 {
        1.0
    } else {
        sum as f64 / count as f64
    }
}

/// Average Manhattan distance (in bins) from members of a class to members of all other
/// classes; 1.0 when there are no other members.
fn mean_inter_distance(
    members: u64,
    others: u64,
    col_hist: &[u64],
    row_hist: &[u64],
    col_other: &[u64],
    row_other: &[u64],
) -> f64 {
    let sum = cross_abs_sum(col_hist, col_other) + cross_abs_sum(row_hist, row_other);
    let count = members * others;
    if count == 0 || sum == 0 {
        1.0
    } else {
        sum as f64 / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsc3d_geometry::{Grid, Rect};

    fn grid(n: usize) -> Grid {
        Grid::square(Rect::from_size(100.0, 100.0), n)
    }

    /// A map with `k` horizontal stripes of distinct power values.
    fn striped(n: usize, k: usize) -> GridMap {
        let g = grid(n);
        let values = (0..g.bins())
            .map(|i| {
                let row = i / n;
                (row * k / n) as f64
            })
            .collect();
        GridMap::from_values(g, values)
    }

    /// A checkerboard of two power values — maximally interleaved.
    fn checkerboard(n: usize) -> GridMap {
        let g = grid(n);
        let values = (0..g.bins())
            .map(|i| {
                let (r, c) = (i / n, i % n);
                ((r + c) % 2) as f64
            })
            .collect();
        GridMap::from_values(g, values)
    }

    /// The literal O(m²) distance sums the histogram evaluation replaces.
    fn entropy_pairwise_reference(e: &SpatialEntropy, power: &GridMap) -> f64 {
        let classes = e.classify(power);
        let total = power.grid().bins() as f64;
        let k = classes.class_count();
        if k <= 1 {
            return 0.0;
        }
        let mut entropy = 0.0;
        for i in 0..k {
            let members = &classes.members[i];
            if members.is_empty() {
                continue;
            }
            let p = members.len() as f64 / total;
            let (mut sum, mut count) = (0.0, 0.0);
            for (a_idx, a) in members.iter().enumerate() {
                for b in &members[a_idx + 1..] {
                    sum += a.manhattan(*b) as f64;
                    count += 1.0;
                }
            }
            let d_intra = if count == 0.0 || sum == 0.0 {
                1.0
            } else {
                sum / count
            };
            let (mut sum, mut count) = (0.0, 0.0);
            for (other, other_members) in classes.members.iter().enumerate() {
                if other == i {
                    continue;
                }
                for a in members {
                    for b in other_members {
                        sum += a.manhattan(*b) as f64;
                        count += 1.0;
                    }
                }
            }
            let d_inter = if count == 0.0 || sum == 0.0 {
                1.0
            } else {
                sum / count
            };
            entropy -= (d_intra / d_inter) * p * p.log2();
        }
        entropy
    }

    #[test]
    fn of_map_with_matches_of_map_bit_for_bit() {
        let e = SpatialEntropy::default();
        let mut scratch = EntropyScratch::new();
        let g = grid(16);
        // Include duplicate values so the unstable sort's tie handling is exercised.
        let values: Vec<f64> = (0..g.bins())
            .map(|i| ((i * 7919) % 23) as f64 * 0.5)
            .collect();
        let maps = [
            striped(8, 2),
            striped(8, 8),
            checkerboard(16),
            GridMap::constant(grid(8), 3.0),
            GridMap::from_values(g, values),
        ];
        for map in &maps {
            assert_eq!(e.of_map_with(map, &mut scratch), e.of_map(map));
        }
    }

    #[test]
    fn histogram_distances_match_pairwise_reference_bit_for_bit() {
        let e = SpatialEntropy::default();
        let mut maps = vec![
            striped(8, 2),
            striped(8, 8),
            checkerboard(8),
            checkerboard(16),
            GridMap::constant(grid(8), 3.0),
        ];
        // A pseudo-random map exercising irregular class shapes.
        let g = grid(12);
        let values: Vec<f64> = (0..g.bins())
            .map(|i| ((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 40) as f64)
            .collect();
        maps.push(GridMap::from_values(g, values));
        for map in &maps {
            let fast = e.of_map(map);
            let reference = entropy_pairwise_reference(&e, map);
            assert_eq!(fast, reference, "entropy diverged from pairwise reference");
        }
    }

    #[test]
    fn uniform_map_has_zero_entropy() {
        let m = GridMap::constant(grid(8), 3.0);
        assert_eq!(SpatialEntropy::default().of_map(&m), 0.0);
    }

    #[test]
    fn classification_groups_equal_values() {
        let m = striped(8, 2);
        let classes = SpatialEntropy::default().classify(&m);
        assert_eq!(classes.class_count(), 2);
        assert_eq!(classes.members[0].len() + classes.members[1].len(), 64);
        // Ranges must not overlap.
        assert!(classes.ranges[0].1 <= classes.ranges[1].0);
    }

    #[test]
    fn interleaved_values_have_higher_entropy_than_separated() {
        // Same value histogram (half 0.0, half 1.0), different spatial arrangement:
        // the checkerboard (different values adjacent) must score higher than the two-stripe
        // arrangement (similar values clustered) — principle (i)/(ii) of Claramunt.
        let clustered = striped(8, 2);
        let interleaved = checkerboard(8);
        let e = SpatialEntropy::default();
        assert!(e.of_map(&interleaved) > e.of_map(&clustered));
    }

    #[test]
    fn more_distinct_power_levels_increase_entropy() {
        let few = striped(8, 2);
        let many = striped(8, 8);
        let e = SpatialEntropy::default();
        assert!(e.of_map(&many) > e.of_map(&few));
    }

    #[test]
    fn entropy_is_invariant_to_value_scaling() {
        // Classes depend on relative structure; scaling all powers by a constant must not
        // change the classification-based entropy.
        let m = striped(8, 4);
        let scaled = m.scaled(7.5);
        let e = SpatialEntropy::default();
        assert!((e.of_map(&m) - e.of_map(&scaled)).abs() < 1e-9);
    }

    #[test]
    fn depth_limit_bounds_class_count() {
        let g = grid(8);
        // All distinct values: without a depth limit every bin would be its own class.
        let values: Vec<f64> = (0..g.bins()).map(|i| i as f64).collect();
        let m = GridMap::from_values(g, values);
        let classes = SpatialEntropy::new(3, 1e-9).classify(&m);
        assert!(classes.class_count() <= 8);
        let deeper = SpatialEntropy::new(5, 1e-9).classify(&m);
        assert!(deeper.class_count() > classes.class_count());
    }

    #[test]
    fn assignment_is_consistent_with_members() {
        let m = striped(8, 4);
        let classes = SpatialEntropy::default().classify(&m);
        for (class, members) in classes.members.iter().enumerate() {
            for pos in members {
                let idx = m.grid().flat_index(*pos);
                assert_eq!(classes.assignment[idx], class);
            }
        }
    }

    #[test]
    fn singleton_classes_do_not_break_entropy() {
        let g = grid(4);
        let mut values = vec![0.0; g.bins()];
        values[5] = 100.0; // one extreme outlier → singleton class
        let m = GridMap::from_values(g, values);
        let e = SpatialEntropy::default().of_map(&m);
        assert!(e.is_finite());
        assert!(e > 0.0);
    }
}

//! Runtime correlation stability (Eq. 2 of the paper).

use crate::correlation::pearson;
use serde::{Deserialize, Serialize};
use tsc3d_geometry::{Grid, GridMap, GridPos};

/// Per-bin correlation-stability map produced by [`CorrelationStability::finish`].
///
/// Each bin holds `r_{d,x,y}`: the Pearson correlation, *across activity samples*, of the
/// local power and local temperature at that bin. Bins where the correlation is undefined
/// (constant power or constant temperature across all samples) hold `0.0` — such bins leak
/// nothing an attacker could calibrate against.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StabilityMap {
    map: GridMap,
    samples: usize,
}

impl StabilityMap {
    /// The underlying per-bin stability values.
    pub fn map(&self) -> &GridMap {
        &self.map
    }

    /// Number of activity samples the map was computed from.
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Stability at a specific bin.
    pub fn at(&self, pos: GridPos) -> f64 {
        self.map.get(pos)
    }

    /// Average stability over the die.
    pub fn mean(&self) -> f64 {
        self.map.mean()
    }

    /// The most stable (most attacker-friendly) bin and its stability value.
    pub fn most_stable(&self) -> (GridPos, f64) {
        let pos = self.map.argmax();
        (pos, self.map.get(pos))
    }

    /// The `k` most stable bins in decreasing order of stability.
    ///
    /// These are the candidate sites for dummy-thermal-TSV insertion in the paper's
    /// post-processing stage.
    pub fn top_bins(&self, k: usize) -> Vec<(GridPos, f64)> {
        let grid = self.map.grid();
        let mut bins: Vec<(GridPos, f64)> =
            grid.positions().map(|p| (p, self.map.get(p))).collect();
        bins.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        bins.truncate(k);
        bins
    }
}

/// Accumulator for the correlation-stability computation.
///
/// Feed it `m` pairs of (power map, thermal map) — one pair per sampled activity set — then
/// call [`CorrelationStability::finish`].
///
/// ```
/// use tsc3d_geometry::{Grid, GridMap, Rect};
/// use tsc3d_leakage::CorrelationStability;
///
/// let grid = Grid::square(Rect::from_size(10.0, 10.0), 4);
/// let mut acc = CorrelationStability::new(grid);
/// for i in 0..10 {
///     let p = GridMap::constant(grid, 1.0 + i as f64);
///     let t = p.map(|v| 300.0 + 2.0 * v); // temperature follows power exactly
///     acc.add_sample(&p, &t);
/// }
/// let stability = acc.finish();
/// assert!(stability.mean() > 0.99); // perfectly stable everywhere
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorrelationStability {
    grid: Grid,
    power_samples: Vec<Vec<f64>>,
    thermal_samples: Vec<Vec<f64>>,
}

impl CorrelationStability {
    /// Creates an empty accumulator for maps on `grid`.
    pub fn new(grid: Grid) -> Self {
        Self {
            grid,
            power_samples: Vec::new(),
            thermal_samples: Vec::new(),
        }
    }

    /// Adds one activity sample (power map and the resulting thermal map).
    ///
    /// # Panics
    ///
    /// Panics if either map is defined on a different grid than the accumulator.
    pub fn add_sample(&mut self, power: &GridMap, thermal: &GridMap) {
        assert_eq!(power.grid(), self.grid, "power map grid mismatch");
        assert_eq!(thermal.grid(), self.grid, "thermal map grid mismatch");
        self.power_samples.push(power.values().to_vec());
        self.thermal_samples.push(thermal.values().to_vec());
    }

    /// Number of samples accumulated so far.
    pub fn sample_count(&self) -> usize {
        self.power_samples.len()
    }

    /// Computes the per-bin stability map (Eq. 2).
    ///
    /// # Panics
    ///
    /// Panics if fewer than two samples have been added.
    pub fn finish(&self) -> StabilityMap {
        let m = self.power_samples.len();
        assert!(
            m >= 2,
            "correlation stability needs at least two activity samples"
        );
        let bins = self.grid.bins();
        let mut values = vec![0.0; bins];
        let mut p_series = vec![0.0; m];
        let mut t_series = vec![0.0; m];
        for (b, value) in values.iter_mut().enumerate() {
            for s in 0..m {
                p_series[s] = self.power_samples[s][b];
                t_series[s] = self.thermal_samples[s][b];
            }
            *value = pearson(&p_series, &t_series).unwrap_or(0.0);
        }
        StabilityMap {
            map: GridMap::from_values(self.grid, values),
            samples: m,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsc3d_geometry::Rect;

    fn grid() -> Grid {
        Grid::square(Rect::from_size(80.0, 80.0), 8)
    }

    /// Simple deterministic pseudo-random series for test inputs.
    fn noise(i: usize, b: usize) -> f64 {
        let x = (i * 2654435761 + b * 40503) as f64;
        (x.sin() * 43758.5453).fract().abs()
    }

    #[test]
    fn tracking_temperature_gives_high_stability() {
        let g = grid();
        let mut acc = CorrelationStability::new(g);
        for i in 0..20 {
            let p = GridMap::from_values(g, (0..g.bins()).map(|b| 0.5 + noise(i, b)).collect());
            let t = p.map(|v| 300.0 + 5.0 * v);
            acc.add_sample(&p, &t);
        }
        let s = acc.finish();
        assert_eq!(s.samples(), 20);
        assert!(s.mean() > 0.99);
        assert!(s.most_stable().1 > 0.99);
    }

    #[test]
    fn decoupled_temperature_gives_low_stability() {
        let g = grid();
        let mut acc = CorrelationStability::new(g);
        for i in 0..40 {
            let p = GridMap::from_values(g, (0..g.bins()).map(|b| 0.5 + noise(i, b)).collect());
            // Temperature varies independently of the local power.
            let t = GridMap::from_values(
                g,
                (0..g.bins())
                    .map(|b| 300.0 + noise(i + 1000, b + 7))
                    .collect(),
            );
            acc.add_sample(&p, &t);
        }
        let s = acc.finish();
        assert!(s.mean().abs() < 0.35, "mean stability {}", s.mean());
    }

    #[test]
    fn constant_bins_report_zero_stability() {
        let g = grid();
        let mut acc = CorrelationStability::new(g);
        for i in 0..5 {
            // Power varies but temperature is pinned: undefined correlation → 0.
            let p = GridMap::constant(g, i as f64);
            let t = GridMap::constant(g, 300.0);
            acc.add_sample(&p, &t);
        }
        let s = acc.finish();
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn top_bins_are_sorted_and_bounded() {
        let g = grid();
        let mut acc = CorrelationStability::new(g);
        for i in 0..10 {
            let p = GridMap::from_values(g, (0..g.bins()).map(|b| noise(i, b)).collect());
            // Only the first half of the bins track power.
            let t = GridMap::from_values(
                g,
                (0..g.bins())
                    .map(|b| {
                        if b < g.bins() / 2 {
                            300.0 + 3.0 * noise(i, b)
                        } else {
                            300.0 + noise(i + 99, b)
                        }
                    })
                    .collect(),
            );
            acc.add_sample(&p, &t);
        }
        let s = acc.finish();
        let top = s.top_bins(10);
        assert_eq!(top.len(), 10);
        for w in top.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        // The most stable bins must come from the tracking half.
        let grid = s.map().grid();
        assert!(grid.flat_index(top[0].0) < grid.bins() / 2);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn finish_requires_two_samples() {
        let g = grid();
        let mut acc = CorrelationStability::new(g);
        acc.add_sample(&GridMap::zeros(g), &GridMap::zeros(g));
        let _ = acc.finish();
    }

    #[test]
    #[should_panic(expected = "grid mismatch")]
    fn grid_mismatch_panics() {
        let g = grid();
        let other = Grid::square(Rect::from_size(80.0, 80.0), 4);
        let mut acc = CorrelationStability::new(g);
        acc.add_sample(&GridMap::zeros(other), &GridMap::zeros(other));
    }
}

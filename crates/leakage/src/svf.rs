//! Side-channel vulnerability factor (SVF).
//!
//! The paper grounds its use of the Pearson correlation by noting that the correlation "is
//! also the underlying measure for the side-channel vulnerability factor (SVF)" of Demme et
//! al. This module provides a small SVF implementation so the two metrics can be compared
//! directly in experiments and ablation benches.
//!
//! SVF correlates *similarity structure* rather than raw values: for a sequence of execution
//! phases, one builds the pairwise-distance matrix of the ground-truth traces (here: power
//! maps) and of the side-channel observations (here: thermal maps), and reports the Pearson
//! correlation between the two matrices' upper triangles.

use crate::correlation::{pearson, CorrelationError};
use tsc3d_geometry::GridMap;

/// Computes the side-channel vulnerability factor for a sequence of execution phases.
///
/// `ground_truth[i]` and `observation[i]` are the power map and thermal map of phase `i`.
/// Returns the Pearson correlation of the two pairwise-Euclidean-distance matrices.
///
/// # Errors
///
/// Returns [`CorrelationError::LengthMismatch`] if the sequences differ in length or the
/// maps use different grids, [`CorrelationError::TooFewSamples`] for fewer than three
/// phases (no meaningful similarity structure), and [`CorrelationError::ZeroVariance`] when
/// either side has constant pairwise distances.
///
/// ```
/// use tsc3d_geometry::{Grid, GridMap, Rect};
/// use tsc3d_leakage::svf::svf;
///
/// let grid = Grid::square(Rect::from_size(10.0, 10.0), 4);
/// let phases: Vec<GridMap> = (0..5)
///     .map(|i| GridMap::constant(grid, i as f64))
///     .collect();
/// // Observations that mirror the ground truth exactly give SVF = 1.
/// let value = svf(&phases, &phases).unwrap();
/// assert!((value - 1.0).abs() < 1e-9);
/// ```
pub fn svf(ground_truth: &[GridMap], observation: &[GridMap]) -> Result<f64, CorrelationError> {
    if ground_truth.len() != observation.len() {
        return Err(CorrelationError::LengthMismatch);
    }
    if ground_truth.len() < 3 {
        return Err(CorrelationError::TooFewSamples);
    }
    let grid = ground_truth[0].grid();
    if ground_truth.iter().any(|m| m.grid() != grid) || observation.iter().any(|m| m.grid() != grid)
    {
        return Err(CorrelationError::LengthMismatch);
    }
    let gt = distance_matrix_upper(ground_truth);
    let ob = distance_matrix_upper(observation);
    pearson(&gt, &ob)
}

/// Upper triangle (i < j) of the pairwise Euclidean distance matrix between maps.
fn distance_matrix_upper(maps: &[GridMap]) -> Vec<f64> {
    let n = maps.len();
    let mut out = Vec::with_capacity(n * (n - 1) / 2);
    for i in 0..n {
        for j in (i + 1)..n {
            let d: f64 = maps[i]
                .values()
                .iter()
                .zip(maps[j].values())
                .map(|(a, b)| (a - b).powi(2))
                .sum::<f64>()
                .sqrt();
            out.push(d);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsc3d_geometry::{Grid, Rect};

    fn grid() -> Grid {
        Grid::square(Rect::from_size(10.0, 10.0), 4)
    }

    fn phase(value: f64) -> GridMap {
        GridMap::constant(grid(), value)
    }

    #[test]
    fn faithful_observation_gives_unit_svf() {
        let phases: Vec<GridMap> = [0.0, 1.0, 3.0, 7.0].iter().map(|&v| phase(v)).collect();
        let observed: Vec<GridMap> = phases.iter().map(|p| p.map(|v| 300.0 + 2.0 * v)).collect();
        let value = svf(&phases, &observed).unwrap();
        assert!((value - 1.0).abs() < 1e-9);
    }

    #[test]
    fn shuffled_observation_lowers_svf() {
        let phases: Vec<GridMap> = [0.0, 1.0, 2.0, 4.0, 8.0]
            .iter()
            .map(|&v| phase(v))
            .collect();
        // Observations whose similarity structure does not follow the ground truth.
        let observed: Vec<GridMap> = [5.0, 0.0, 7.0, 1.0, 3.0]
            .iter()
            .map(|&v| phase(v))
            .collect();
        let faithful = svf(&phases, &phases).unwrap();
        let shuffled = svf(&phases, &observed).unwrap();
        assert!(shuffled < faithful);
    }

    #[test]
    fn error_cases() {
        let phases: Vec<GridMap> = [0.0, 1.0].iter().map(|&v| phase(v)).collect();
        assert_eq!(
            svf(&phases, &phases).unwrap_err(),
            CorrelationError::TooFewSamples
        );
        let a: Vec<GridMap> = [0.0, 1.0, 2.0].iter().map(|&v| phase(v)).collect();
        let b: Vec<GridMap> = [0.0, 1.0].iter().map(|&v| phase(v)).collect();
        assert_eq!(svf(&a, &b).unwrap_err(), CorrelationError::LengthMismatch);
        // Constant observations → zero variance in the distance matrix.
        let c: Vec<GridMap> = [1.0, 1.0, 1.0].iter().map(|&v| phase(v)).collect();
        assert_eq!(svf(&a, &c).unwrap_err(), CorrelationError::ZeroVariance);
    }
}

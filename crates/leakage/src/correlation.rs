//! Pearson correlation of power and thermal maps (Eq. 1 of the paper).

use std::error::Error;
use std::fmt;
use tsc3d_geometry::GridMap;

/// Errors raised by the correlation functions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CorrelationError {
    /// The two series have different lengths (or the maps different grids).
    LengthMismatch,
    /// Fewer than two samples were provided.
    TooFewSamples,
    /// One of the series has zero variance, so the correlation is undefined.
    ZeroVariance,
}

impl fmt::Display for CorrelationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorrelationError::LengthMismatch => write!(f, "series lengths differ"),
            CorrelationError::TooFewSamples => write!(f, "need at least two samples"),
            CorrelationError::ZeroVariance => write!(f, "series has zero variance"),
        }
    }
}

impl Error for CorrelationError {}

/// Pearson correlation coefficient of two equally long series.
///
/// This is Eq. 1 of the paper with `xs` the per-bin power values and `ys` the per-bin
/// temperatures of one die.
///
/// # Errors
///
/// Returns an error when the series lengths differ, fewer than two samples are given, or
/// either series is constant (zero variance).
///
/// ```
/// let r = tsc3d_leakage::pearson(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]).unwrap();
/// assert!((r - 1.0).abs() < 1e-12);
/// ```
pub fn pearson(xs: &[f64], ys: &[f64]) -> Result<f64, CorrelationError> {
    if xs.len() != ys.len() {
        return Err(CorrelationError::LengthMismatch);
    }
    if xs.len() < 2 {
        return Err(CorrelationError::TooFewSamples);
    }
    let n = xs.len() as f64;
    let mean_x = xs.iter().sum::<f64>() / n;
    let mean_y = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut var_x = 0.0;
    let mut var_y = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        let dx = x - mean_x;
        let dy = y - mean_y;
        cov += dx * dy;
        var_x += dx * dx;
        var_y += dy * dy;
    }
    if var_x <= 0.0 || var_y <= 0.0 {
        return Err(CorrelationError::ZeroVariance);
    }
    Ok((cov / (var_x.sqrt() * var_y.sqrt())).clamp(-1.0, 1.0))
}

/// Pearson correlation `r_d` between the power map and the thermal map of one die.
///
/// The two maps must be defined on the same grid. This is the quantity reported as `r1`
/// (bottom die) and `r2` (top die) throughout the paper's evaluation.
///
/// # Errors
///
/// Returns [`CorrelationError::LengthMismatch`] if the grids differ and propagates the
/// degenerate-input errors of [`pearson`].
pub fn map_correlation(power: &GridMap, thermal: &GridMap) -> Result<f64, CorrelationError> {
    if power.grid() != thermal.grid() {
        return Err(CorrelationError::LengthMismatch);
    }
    pearson(power.values(), thermal.values())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsc3d_geometry::{Grid, Rect};

    #[test]
    fn perfect_positive_and_negative_correlation() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let up: Vec<f64> = xs.iter().map(|x| 10.0 + 2.0 * x).collect();
        let down: Vec<f64> = xs.iter().map(|x| 10.0 - 2.0 * x).collect();
        assert!((pearson(&xs, &up).unwrap() - 1.0).abs() < 1e-12);
        assert!((pearson(&xs, &down).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn uncorrelated_series_give_near_zero() {
        let xs = [1.0, 2.0, 1.0, 2.0, 1.0, 2.0, 1.0, 2.0];
        let ys = [1.0, 1.0, 2.0, 2.0, 1.0, 1.0, 2.0, 2.0];
        assert!(pearson(&xs, &ys).unwrap().abs() < 1e-12);
    }

    #[test]
    fn correlation_is_symmetric_and_scale_invariant() {
        let xs = [0.3, 1.7, 0.9, 2.4, 1.1];
        let ys = [5.0, 9.1, 6.2, 11.0, 7.3];
        let r1 = pearson(&xs, &ys).unwrap();
        let r2 = pearson(&ys, &xs).unwrap();
        assert!((r1 - r2).abs() < 1e-12);
        let scaled: Vec<f64> = ys.iter().map(|y| 1000.0 + 3.0 * y).collect();
        let r3 = pearson(&xs, &scaled).unwrap();
        assert!((r1 - r3).abs() < 1e-12);
    }

    #[test]
    fn error_cases() {
        assert_eq!(
            pearson(&[1.0, 2.0], &[1.0]).unwrap_err(),
            CorrelationError::LengthMismatch
        );
        assert_eq!(
            pearson(&[1.0], &[1.0]).unwrap_err(),
            CorrelationError::TooFewSamples
        );
        assert_eq!(
            pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]).unwrap_err(),
            CorrelationError::ZeroVariance
        );
        assert!(format!("{}", CorrelationError::ZeroVariance).contains("variance"));
    }

    #[test]
    fn map_correlation_checks_grids() {
        let g1 = Grid::square(Rect::from_size(10.0, 10.0), 4);
        let g2 = Grid::square(Rect::from_size(10.0, 10.0), 5);
        let a = tsc3d_geometry::GridMap::constant(g1, 1.0);
        let b = tsc3d_geometry::GridMap::constant(g2, 1.0);
        assert_eq!(
            map_correlation(&a, &b).unwrap_err(),
            CorrelationError::LengthMismatch
        );
    }

    #[test]
    fn result_is_clamped_to_unit_interval() {
        // Numerically, accumulated rounding can push |r| slightly above 1; the clamp keeps
        // the value a valid correlation.
        let xs: Vec<f64> = (0..100).map(|i| i as f64 * 1e-8 + 1e9).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x * 3.0).collect();
        let r = pearson(&xs, &ys).unwrap();
        assert!((-1.0..=1.0).contains(&r));
    }
}

//! Umbrella re-export crate.
pub use tsc3d;
pub use tsc3d_attack as attack;
pub use tsc3d_campaign as campaign;
pub use tsc3d_floorplan as floorplan;
pub use tsc3d_geometry as geometry;
pub use tsc3d_leakage as leakage;
pub use tsc3d_loadgen as loadgen;
pub use tsc3d_netlist as netlist;
pub use tsc3d_obs as obs;
pub use tsc3d_power as power;
pub use tsc3d_sca as sca;
pub use tsc3d_thermal as thermal;
pub use tsc3d_timing as timing;

//! Property-based tests of core invariants across the workspace.

use proptest::prelude::*;
use tsc3d_geometry::{Grid, GridMap, Outline, Rect, Stack};
use tsc3d_leakage::{pearson, SpatialEntropy};
use tsc3d_netlist::{Block, BlockId, BlockShape, Design, Net, PinRef};
use tsc3d_thermal::{SteadyStateSolver, ThermalConfig, TsvField};
use tsc3d_timing::{ElmoreModel, NetTopology, VoltageScaling};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Rectangle intersection is symmetric and never larger than either operand.
    #[test]
    fn rect_overlap_is_symmetric_and_bounded(
        ax in 0.0f64..100.0, ay in 0.0f64..100.0, aw in 0.1f64..100.0, ah in 0.1f64..100.0,
        bx in 0.0f64..100.0, by in 0.0f64..100.0, bw in 0.1f64..100.0, bh in 0.1f64..100.0,
    ) {
        let a = Rect::new(ax, ay, aw, ah);
        let b = Rect::new(bx, by, bw, bh);
        let ab = a.overlap_area(&b);
        let ba = b.overlap_area(&a);
        prop_assert!((ab - ba).abs() < 1e-9);
        prop_assert!(ab <= a.area() + 1e-9);
        prop_assert!(ab <= b.area() + 1e-9);
        prop_assert!(ab >= 0.0);
        // The union contains both rectangles (up to floating-point rounding of the
        // re-derived corner coordinates).
        let u = a.union(&b).expanded(1e-9);
        prop_assert!(u.contains_rect(&a) && u.contains_rect(&b));
    }

    /// Rasterizing a block fully inside the grid conserves its power exactly.
    #[test]
    fn splat_power_conserves_power(
        x in 0.0f64..60.0, y in 0.0f64..60.0,
        w in 1.0f64..40.0, h in 1.0f64..40.0,
        power in 0.01f64..10.0,
        bins in 2usize..24,
    ) {
        let grid = Grid::square(Rect::from_size(100.0, 100.0), bins);
        let mut map = GridMap::zeros(grid);
        map.splat_power(&Rect::new(x, y, w, h), power);
        prop_assert!((map.sum() - power).abs() < 1e-6 * power.max(1.0));
        prop_assert!(map.min() >= 0.0);
    }

    /// The Pearson correlation is bounded, symmetric, and invariant under positive affine
    /// transforms of either argument.
    #[test]
    fn pearson_properties(values in proptest::collection::vec(-100.0f64..100.0, 4..64),
                          scale in 0.1f64..10.0, offset in -50.0f64..50.0) {
        // Build a second series that is an affine image of a shuffled mix, guaranteeing
        // variance in both series.
        let xs = values.clone();
        let ys: Vec<f64> = values.iter().rev().map(|v| v * 0.5 + 1.0).collect();
        if let (Ok(r_xy), Ok(r_yx)) = (pearson(&xs, &ys), pearson(&ys, &xs)) {
            prop_assert!((-1.0..=1.0).contains(&r_xy));
            prop_assert!((r_xy - r_yx).abs() < 1e-9);
            let ys_affine: Vec<f64> = ys.iter().map(|v| v * scale + offset).collect();
            if let Ok(r_affine) = pearson(&xs, &ys_affine) {
                prop_assert!((r_xy - r_affine).abs() < 1e-6);
            }
        }
    }

    /// Spatial entropy is non-negative, finite, and zero for uniform maps.
    #[test]
    fn spatial_entropy_properties(values in proptest::collection::vec(0.0f64..5.0, 16..64)) {
        // Use the largest square grid that fits the generated values.
        let side = (values.len() as f64).sqrt().floor() as usize;
        let grid = Grid::square(Rect::from_size(100.0, 100.0), side);
        let map = GridMap::from_values(grid, values[..side * side].to_vec());
        let entropy = SpatialEntropy::default().of_map(&map);
        prop_assert!(entropy.is_finite());
        prop_assert!(entropy >= 0.0);
        let uniform = GridMap::constant(grid, 1.0);
        prop_assert_eq!(SpatialEntropy::default().of_map(&uniform), 0.0);
    }

    /// Elmore delays are positive and monotone in wirelength and TSV count.
    #[test]
    fn elmore_delay_monotonicity(hpwl in 1.0f64..20_000.0, crossings in 0usize..4, fanout in 1usize..16) {
        let model = ElmoreModel::default_90nm();
        let base = model.net_delay(&NetTopology::new(hpwl, crossings, fanout));
        let longer = model.net_delay(&NetTopology::new(hpwl * 1.5 + 10.0, crossings, fanout));
        let more_tsvs = model.net_delay(&NetTopology::new(hpwl, crossings + 1, fanout));
        prop_assert!(base > 0.0);
        prop_assert!(longer > base);
        prop_assert!(more_tsvs > base);
    }

    /// Voltage scaling: lower feasible voltages always save power relative to 1.0 V.
    #[test]
    fn voltage_scaling_power_ordering(delay in 0.1f64..10.0, slack_factor in 0.0f64..2.0) {
        let scaling = VoltageScaling::paper_90nm();
        let budget = delay * (1.0 + slack_factor);
        if let Some(level) = scaling.lowest_feasible(delay, budget) {
            prop_assert!(scaling.power_factor(level) <= scaling.power_factor(tsc3d_timing::VoltageLevel::V1_2));
            // The chosen level meets the budget.
            prop_assert!(delay * scaling.delay_factor(level) <= budget + 1e-9);
        }
    }

    /// The thermal solver never produces temperatures below ambient for non-negative power,
    /// and its peak rise scales linearly with power (superposition of a linear system).
    #[test]
    fn thermal_solver_linearity(power in 0.1f64..4.0, density in 0.0f64..0.3) {
        let stack = Stack::two_die(Outline::new(1_000.0, 1_000.0));
        let grid = Grid::square(stack.outline().rect(), 6);
        let solver = SteadyStateSolver::new(ThermalConfig::default_for(stack));
        let tsvs = vec![TsvField::uniform(grid, density)];
        let mut map = GridMap::zeros(grid);
        map.splat_power(&Rect::new(100.0, 100.0, 400.0, 300.0), power);
        let maps = vec![map, GridMap::zeros(grid)];
        let result = solver.solve(&maps, &tsvs).unwrap();
        prop_assert!(result.peak_temperature() >= 293.0 - 1e-9);
        let doubled: Vec<GridMap> = maps.iter().map(|m| m.scaled(2.0)).collect();
        let result2 = solver.solve(&doubled, &tsvs).unwrap();
        let ratio = result2.peak_rise() / result.peak_rise();
        prop_assert!((ratio - 2.0).abs() < 0.02, "nonlinear: ratio {}", ratio);
    }

    /// Designs with random block areas and powers always validate, and their statistics are
    /// internally consistent.
    #[test]
    fn design_statistics_consistency(
        areas in proptest::collection::vec(10.0f64..1_000.0, 2..20),
        power_density in 1e-6f64..1e-3,
    ) {
        let blocks: Vec<Block> = areas
            .iter()
            .enumerate()
            .map(|(i, &a)| Block::new(format!("b{i}"), BlockShape::soft(a), a * power_density))
            .collect();
        let nets = vec![Net::new(
            "n0",
            vec![PinRef::Block(BlockId(0)), PinRef::Block(BlockId(1))],
        )];
        let design = Design::new("prop", blocks, nets, vec![], Outline::new(1_000.0, 1_000.0)).unwrap();
        let stats = design.stats();
        prop_assert_eq!(stats.soft_blocks, areas.len());
        prop_assert!((stats.block_area_um2 - areas.iter().sum::<f64>()).abs() < 1e-6);
        prop_assert!((design.total_power() - stats.power_w).abs() < 1e-12);
    }
}

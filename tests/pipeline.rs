//! Workspace-level tests of the staged flow pipeline: seeded determinism, typed errors on
//! non-converging solver configurations, and the observability of the relaxed-solve retry.

use tsc3d::{
    FlowConfig, FlowError, FlowStage, RetryPolicy, Setup, SolveQuality, SolverSettings, TscFlow,
};
use tsc3d_netlist::suite::{generate, Benchmark};

fn tiny_config(setup: Setup) -> FlowConfig {
    let mut config = FlowConfig::quick(setup);
    config.schedule.stages = 6;
    config.schedule.moves_per_stage = 10;
    config.schedule.grid_bins = 12;
    config.verification_bins = 12;
    config
}

#[test]
fn same_seed_produces_identical_results() {
    let design = generate(Benchmark::N100, 7);
    let flow = TscFlow::new(tiny_config(Setup::TscAware));
    let a = flow.run(&design, 11).expect("first run converges");
    let b = flow.run(&design, 11).expect("second run converges");

    // Bit-identical correlations, entropies and TSV counts: the pipeline is a pure
    // function of (design, config, seed).
    assert_eq!(a.verified_correlations, b.verified_correlations);
    assert_eq!(a.final_correlations, b.final_correlations);
    assert_eq!(a.spatial_entropies, b.spatial_entropies);
    assert_eq!(a.signal_tsvs(), b.signal_tsvs());
    assert_eq!(a.dummy_tsvs(), b.dummy_tsvs());
    assert_eq!(a.scaled_powers, b.scaled_powers);
    assert_eq!(a.verification_solve, b.verification_solve);
}

#[test]
fn different_seeds_explore_different_floorplans() {
    let design = generate(Benchmark::N100, 7);
    let flow = TscFlow::new(tiny_config(Setup::PowerAware));
    let a = flow.run(&design, 1).expect("seed 1 converges");
    let b = flow.run(&design, 2).expect("seed 2 converges");
    // With different seeds the annealer explores different floorplans; wirelength is a
    // continuous objective, so an exact tie would indicate seed plumbing is broken.
    assert_ne!(a.sa.breakdown.wirelength, b.sa.breakdown.wirelength);
}

#[test]
fn non_converging_solver_yields_typed_error_not_panic() {
    let design = generate(Benchmark::N100, 7);
    let mut config = tiny_config(Setup::PowerAware);
    config.solver = SolverSettings {
        tolerance: 1e-12,
        max_iterations: 1,
    };
    config.retry = RetryPolicy::Fail;

    let err = TscFlow::new(config)
        .run(&design, 11)
        .expect_err("one SOR iteration cannot converge");
    match err {
        FlowError::Solve {
            stage,
            attempts,
            source,
        } => {
            assert_eq!(stage, FlowStage::Verify);
            assert_eq!(attempts, 1);
            assert!(
                matches!(source, tsc3d_thermal::SolveError::NotConverged { .. }),
                "unexpected source: {source:?}"
            );
        }
        other => panic!("expected a solve error, got {other:?}"),
    }
}

#[test]
fn non_converging_retry_also_fails_with_two_attempts() {
    let design = generate(Benchmark::N100, 7);
    let mut config = tiny_config(Setup::PowerAware);
    config.solver = SolverSettings {
        tolerance: 1e-12,
        max_iterations: 1,
    };
    // The retry is just as hopeless: the error must report both attempts.
    config.retry = RetryPolicy::Relaxed(SolverSettings {
        tolerance: 1e-12,
        max_iterations: 2,
    });

    let err = TscFlow::new(config)
        .run(&design, 11)
        .expect_err("hopeless retry must fail too");
    match err {
        FlowError::Solve { attempts, .. } => assert_eq!(attempts, 2),
        other => panic!("expected a solve error, got {other:?}"),
    }
}

#[test]
fn relaxed_retry_rescues_the_run_and_is_observable() {
    let design = generate(Benchmark::N100, 7);
    let mut config = tiny_config(Setup::PowerAware);
    config.solver = SolverSettings {
        tolerance: 1e-12,
        max_iterations: 1,
    };
    config.retry = RetryPolicy::Relaxed(SolverSettings::relaxed());

    let result = TscFlow::new(config)
        .run(&design, 11)
        .expect("relaxed retry converges");
    assert_eq!(result.verification_solve, SolveQuality::Relaxed);
    assert!(result.used_relaxed_solve());
}

#[test]
fn stage_timings_are_recorded_for_every_stage() {
    let design = generate(Benchmark::N100, 7);
    let result = TscFlow::new(tiny_config(Setup::TscAware))
        .run(&design, 11)
        .expect("flow converges");
    for stage in FlowStage::ALL {
        assert!(
            result.stage_timings.of(stage) >= 0.0,
            "negative timing for {stage}"
        );
    }
    assert!(result.stage_timings.total_s() <= result.runtime_seconds + 1e-9);
    // The flow does real work in floorplanning and verification.
    assert!(result.stage_timings.floorplan_s > 0.0);
    assert!(result.stage_timings.verify_s > 0.0);
}

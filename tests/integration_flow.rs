//! Cross-crate integration tests: benchmark generation → floorplanning → voltage assignment
//! → thermal analysis → leakage metrics → post-processing → attacks.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use tsc3d::oracle::FloorplanOracle;
use tsc3d::postprocess::ThermalEngine;
use tsc3d::{FlowConfig, Setup, TscFlow};
use tsc3d_attack::LocalizationAttack;
use tsc3d_floorplan::{plan_signal_tsvs, Evaluator, ObjectiveWeights, SaSchedule, SequencePair3d};
use tsc3d_geometry::Stack;
use tsc3d_leakage::map_correlation;
use tsc3d_netlist::suite::{generate, Benchmark};
use tsc3d_thermal::{SteadyStateSolver, ThermalConfig};

fn quick_config(setup: Setup) -> FlowConfig {
    let mut config = FlowConfig::quick(setup);
    config.schedule = SaSchedule {
        stages: 8,
        moves_per_stage: 12,
        cooling: 0.85,
        initial_acceptance: 0.8,
        grid_bins: 12,
    };
    config.verification_bins = 12;
    config
}

#[test]
fn full_tsc_flow_reduces_or_preserves_verified_leakage() {
    let design = generate(Benchmark::N100, 5);
    let result = TscFlow::new(quick_config(Setup::TscAware))
        .run(&design, 5)
        .expect("TSC flow converges");

    // The flow produces a legal floorplan within the fixed outline.
    assert!(result.floorplan().overlap_area() < 1e-6);
    // Voltage assignment covers every block.
    assert_eq!(
        result.scaled_powers.len(),
        design.blocks().len(),
        "one scaled power per block"
    );
    // The verified correlations are valid Pearson coefficients.
    for r in &result.verified_correlations {
        assert!(r.abs() <= 1.0);
    }
    // Post-processing never increases the average correlation it optimizes.
    let pp = result
        .post_process
        .as_ref()
        .expect("TSC flow post-processes");
    assert!(pp.correlation_after <= pp.correlation_before + 1e-12);
}

#[test]
fn power_aware_and_tsc_aware_flows_share_the_same_input() {
    let design = generate(Benchmark::N100, 8);
    let pa = TscFlow::new(quick_config(Setup::PowerAware))
        .run(&design, 8)
        .expect("PA flow converges");
    let tsc = TscFlow::new(quick_config(Setup::TscAware))
        .run(&design, 8)
        .expect("TSC flow converges");
    // Same design → same number of blocks/nets everywhere.
    assert_eq!(pa.scaled_powers.len(), tsc.scaled_powers.len());
    // PA never inserts dummy TSVs; TSC may.
    assert_eq!(pa.dummy_tsvs(), 0);
    // Both produce positive total power in the right ballpark (Table 1: 7.83 W at 1.0 V,
    // voltage scaling moves it by at most ~50 %).
    let pa_power: f64 = pa.scaled_powers.iter().sum();
    let tsc_power: f64 = tsc.scaled_powers.iter().sum();
    assert!(pa_power > 3.0 && pa_power < 13.0, "PA power {pa_power}");
    assert!(tsc_power > 3.0 && tsc_power < 13.0, "TSC power {tsc_power}");
}

#[test]
fn evaluator_and_detailed_solver_agree_on_leakage_direction() {
    // The fast in-loop estimate and the detailed verification must at least agree on the
    // *sign* and rough magnitude ordering of the correlation for a strongly correlated
    // floorplan (all power in a few hotspots).
    let design = generate(Benchmark::N100, 2);
    let stack = Stack::two_die(design.outline());
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let floorplan = SequencePair3d::initial(&design, stack, &mut rng).pack(&design);
    let grid = floorplan.analysis_grid(12);

    let evaluator =
        Evaluator::new(&design, stack, ObjectiveWeights::tsc_aware()).with_grid_bins(12);
    let breakdown = evaluator.evaluate(&floorplan);

    let powers: Vec<f64> = design.blocks().iter().map(|b| b.power()).collect();
    let power_maps = floorplan.power_maps(grid, &powers);
    let tsvs = plan_signal_tsvs(&design, &floorplan, grid);
    let solver = SteadyStateSolver::new(ThermalConfig::default_for(stack));
    let detailed = solver.solve(&power_maps, &tsvs.combined()).unwrap();
    let detailed_r1 = map_correlation(&power_maps[0], detailed.die_temperature(0)).unwrap();

    assert!(breakdown.correlations[0] > 0.0);
    assert!(detailed_r1 > 0.0);
}

#[test]
fn attacks_run_end_to_end_against_a_flow_result() {
    let design = generate(Benchmark::N100, 3);
    let result = TscFlow::new(quick_config(Setup::PowerAware))
        .run(&design, 3)
        .expect("PA flow converges");
    let floorplan = result.floorplan().clone();
    let grid = floorplan.analysis_grid(12);
    let oracle = FloorplanOracle::new(
        floorplan,
        grid,
        result.final_tsv_plan.clone(),
        ThermalEngine::Fast,
    );
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let localization = LocalizationAttack::ideal().run(
        &oracle,
        &result.scaled_powers,
        &oracle.footprints(),
        &mut rng,
    );
    assert_eq!(localization.outcomes.len(), design.blocks().len());
    assert!(localization.hit_rate() >= 0.0 && localization.hit_rate() <= 1.0);
    assert!(localization.mean_error_um() >= 0.0);
}

#[test]
fn suite_designs_floorplan_legally_or_fail_typed() {
    // Every benchmark generator must produce designs the floorplanner can handle: under
    // the outline sign-off a completed flow guarantees a legal packing, and a very short
    // schedule that cannot legalize a large design must fail typed (never flow an
    // outline-violating floorplan through verification).
    for benchmark in [Benchmark::N100, Benchmark::Ibm01] {
        let design = generate(benchmark, 1);
        let mut config = quick_config(Setup::PowerAware);
        // Bound the repair budget: the escalating rounds are correct but expensive on the
        // 900-block ibm01, and this test accepts the typed failure branch anyway.
        config.outline = tsc3d::OutlinePolicy::Repair { max_rounds: 2 };
        match TscFlow::new(config).run(&design, 1) {
            Ok(result) => assert!(
                result.sa.breakdown.packing <= 1.0 + 1e-9,
                "{benchmark:?}: success implies a legal packing, got {}",
                result.sa.breakdown.packing
            ),
            Err(tsc3d::FlowError::OutlineViolation { packing }) => assert!(
                packing > 1.0 && packing < 1.6,
                "{benchmark:?}: repair failed but the generator stayed near-packable \
                 (best stretch {packing})"
            ),
            Err(other) => panic!("{benchmark:?}: unexpected flow error {other}"),
        }
    }
}

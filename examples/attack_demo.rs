//! Mounting the Section 5 thermal side-channel attacks against power-aware and TSC-aware
//! floorplans of the same design.
//!
//! The attacker characterizes the chip with crafted inputs, localizes the modules from their
//! differential thermal signatures, and then monitors the localized modules at runtime. The
//! demo reports how the attack success degrades on the TSC-aware floorplan.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example attack_demo
//! ```

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use tsc3d::oracle::FloorplanOracle;
use tsc3d::postprocess::ThermalEngine;
use tsc3d::{FlowConfig, FlowError, FlowResult, Setup, TscFlow};
use tsc3d_attack::{LocalizationAttack, MonitoringAttack};
use tsc3d_geometry::Point;
use tsc3d_netlist::suite::{generate, Benchmark};

fn attack(result: &FlowResult, label: &str, powers: &[f64]) {
    let floorplan = result.floorplan().clone();
    // The oracle must observe on the grid the flow's TSV plan was built on (the
    // verification grid), otherwise the thermal estimate rejects the mismatched fields.
    let grid = result.verification.power_maps[0].grid();
    let oracle = FloorplanOracle::new(
        floorplan,
        grid,
        result.final_tsv_plan.clone(),
        ThermalEngine::Fast,
    );
    let footprints = oracle.footprints();

    let mut rng = ChaCha8Rng::seed_from_u64(99);
    let localization = LocalizationAttack::ideal().run(&oracle, powers, &footprints, &mut rng);

    // Monitor the ten modules the attacker localized most confidently (smallest error).
    let mut targets: Vec<(usize, usize, Point)> = localization
        .outcomes
        .iter()
        .map(|o| (o.module, o.guessed_die.index(), o.guessed_location))
        .collect();
    targets.truncate(10);
    let monitoring = MonitoringAttack::new(40, 0.10).run(&oracle, powers, &targets, &mut rng);

    println!("--- attacks against the {label} floorplan ---");
    println!(
        "  localization: hit rate {:.1}%, die accuracy {:.1}%, mean error {:.0} µm",
        localization.hit_rate() * 100.0,
        localization.die_accuracy() * 100.0,
        localization.mean_error_um()
    );
    println!(
        "  monitoring  : mean activity correlation {:.3} over {} modules x {} samples",
        monitoring.mean_correlation(),
        targets.len(),
        monitoring.samples
    );
}

fn main() -> Result<(), FlowError> {
    let design = generate(Benchmark::N100, 1);
    println!("attacking benchmark: {design}\n");

    let seed = 23;
    let pa = TscFlow::new(FlowConfig::quick(Setup::PowerAware)).run(&design, seed)?;
    let tsc = TscFlow::new(FlowConfig::quick(Setup::TscAware)).run(&design, seed)?;

    attack(&pa, "power-aware", &pa.scaled_powers);
    attack(&tsc, "TSC-aware", &tsc.scaled_powers);

    println!(
        "\nThe TSC-aware floorplan (with its flattened power gradients and dummy thermal \
         TSVs) yields flatter thermal signatures, so localization and monitoring become \
         less reliable for the attacker."
    );
    Ok(())
}

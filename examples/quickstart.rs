//! Quickstart: floorplan a GSRC benchmark with the TSC-aware flow and inspect the leakage.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use tsc3d::{FlowConfig, FlowError, Setup, TscFlow};
use tsc3d_netlist::suite::{generate, Benchmark};

fn main() -> Result<(), FlowError> {
    // 1. Obtain a benchmark design. The suite reproduces the aggregate properties of
    //    Table 1 of the paper (module counts, nets, outline, power).
    let design = generate(Benchmark::N100, 1);
    println!("design: {design}");

    // 2. Configure the flow. `quick` keeps the annealing schedule small so this example
    //    finishes in seconds; use `FlowConfig::paper` for full-strength runs.
    let config = FlowConfig::quick(Setup::TscAware);
    let flow = TscFlow::new(config);

    // 3. Run the staged pipeline: floorplanning, voltage assignment, verification and
    //    dummy-TSV post-processing. Every stage is fallible; a non-converging detailed
    //    solve surfaces as a typed `FlowError` instead of a silent fallback.
    let result = flow.run(&design, 42)?;

    // 4. Inspect the outcome.
    let breakdown = &result.sa.breakdown;
    println!("--- design cost ({} setup) ---", result.setup.label());
    println!("  wirelength       : {:.3} m", breakdown.wirelength * 1e-6);
    println!("  critical delay   : {:.3} ns", breakdown.critical_delay);
    println!(
        "  total power      : {:.3} W",
        result.scaled_powers.iter().sum::<f64>()
    );
    println!("  voltage volumes  : {}", result.assignment.volume_count());
    println!(
        "  peak temperature : {:.2} K (detailed)",
        result.verification.peak_temperature
    );
    println!("  signal TSVs      : {}", result.signal_tsvs());
    println!("  dummy TSVs       : {}", result.dummy_tsvs());

    println!("--- thermal leakage ---");
    println!(
        "  spatial entropy  : S1 = {:.3}, S2 = {:.3}",
        result.spatial_entropies[0], result.spatial_entropies[1]
    );
    println!(
        "  correlation (verified, before dummy TSVs): r1 = {:.3}, r2 = {:.3}",
        result.verified_correlations[0], result.verified_correlations[1]
    );
    println!(
        "  correlation (final, after dummy TSVs)    : r1 = {:.3}, r2 = {:.3}",
        result.final_correlations[0], result.final_correlations[1]
    );
    if let Some(pp) = &result.post_process {
        println!(
            "  post-processing reduced the average correlation by {:.1}% ({} dummy TSVs)",
            pp.reduction() * 100.0,
            pp.dummy_tsvs
        );
    }
    let timings = result.stage_timings;
    println!(
        "flow runtime: {:.1} s (floorplan {:.1} s, assign {:.1} s, verify {:.1} s, post-process {:.1} s)",
        result.runtime_seconds,
        timings.floorplan_s,
        timings.assign_s,
        timings.verify_s,
        timings.post_process_s
    );
    if result.used_relaxed_solve() {
        println!("note: the relaxed solver retry was needed for at least one verification");
    }
    Ok(())
}

//! Power-aware vs TSC-aware floorplanning on n100, including dummy-TSV post-processing —
//! the scenario behind Figure 4 of the paper.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example tsc_aware_n100
//! ```

use tsc3d::{FlowConfig, FlowError, Setup, TscFlow};
use tsc3d_netlist::suite::{generate, Benchmark};

fn main() -> Result<(), FlowError> {
    let design = generate(Benchmark::N100, 1);
    println!("benchmark: {design}");

    // Use a mid-size schedule: heavier than the quickstart, lighter than the full paper
    // configuration, so the example completes in well under a minute.
    let mut pa_config = FlowConfig::quick(Setup::PowerAware);
    let mut tsc_config = FlowConfig::quick(Setup::TscAware);
    pa_config.schedule = tsc3d_floorplan::SaSchedule {
        stages: 30,
        moves_per_stage: 40,
        ..tsc3d_floorplan::SaSchedule::quick()
    };
    tsc_config.schedule = pa_config.schedule;
    pa_config.verification_bins = 32;
    tsc_config.verification_bins = 32;

    let seed = 17;
    println!("\nrunning power-aware floorplanning (baseline)...");
    let pa = TscFlow::new(pa_config).run(&design, seed)?;
    println!("running TSC-aware floorplanning (proposed)...");
    let tsc = TscFlow::new(tsc_config).run(&design, seed)?;

    let row = |label: &str, pa: f64, tsc: f64| {
        println!("  {label:<28} {pa:>10.3} {tsc:>10.3}");
    };
    println!("\n{:<30} {:>10} {:>10}", "", "PA", "TSC");
    row(
        "spatial entropy S1",
        pa.spatial_entropies[0],
        tsc.spatial_entropies[0],
    );
    row(
        "spatial entropy S2",
        pa.spatial_entropies[1],
        tsc.spatial_entropies[1],
    );
    row(
        "correlation r1 (verified)",
        pa.verified_correlations[0],
        tsc.verified_correlations[0],
    );
    row(
        "correlation r2 (verified)",
        pa.verified_correlations[1],
        tsc.verified_correlations[1],
    );
    row(
        "correlation r1 (final)",
        pa.final_correlations[0],
        tsc.final_correlations[0],
    );
    row(
        "correlation r2 (final)",
        pa.final_correlations[1],
        tsc.final_correlations[1],
    );
    row(
        "overall power [W]",
        pa.scaled_powers.iter().sum(),
        tsc.scaled_powers.iter().sum(),
    );
    row(
        "critical delay [ns]",
        pa.sa.breakdown.critical_delay,
        tsc.sa.breakdown.critical_delay,
    );
    row(
        "wirelength [m]",
        pa.sa.breakdown.wirelength * 1e-6,
        tsc.sa.breakdown.wirelength * 1e-6,
    );
    row(
        "peak temperature [K]",
        pa.verification.peak_temperature,
        tsc.verification.peak_temperature,
    );
    row(
        "voltage volumes",
        pa.assignment.volume_count() as f64,
        tsc.assignment.volume_count() as f64,
    );
    row(
        "signal TSVs",
        pa.signal_tsvs() as f64,
        tsc.signal_tsvs() as f64,
    );
    row(
        "dummy thermal TSVs",
        pa.dummy_tsvs() as f64,
        tsc.dummy_tsvs() as f64,
    );
    row("runtime [s]", pa.runtime_seconds, tsc.runtime_seconds);

    if let Some(pp) = &tsc.post_process {
        println!(
            "\nFigure-4-style post-processing on the TSC floorplan: the average correlation \
             dropped from {:.3} to {:.3} ({:.1}% reduction) after inserting {} dummy TSVs at \
             the most correlation-stable locations of the bottom die.",
            pp.correlation_before,
            pp.correlation_after,
            pp.reduction() * 100.0,
            pp.dummy_tsvs
        );
    }

    let r1_gain = if pa.final_correlations[0].abs() > 1e-9 {
        (pa.final_correlations[0] - tsc.final_correlations[0]) / pa.final_correlations[0].abs()
            * 100.0
    } else {
        0.0
    };
    println!(
        "\nbottom-die correlation reduction (TSC vs PA): {r1_gain:.1}% — an attacker modelling \
         the thermal leakage is correspondingly less likely to succeed."
    );
    Ok(())
}

//! The exploratory power/TSV study of Section 3 / Figure 2 of the paper.
//!
//! Evaluates all 30 combinations of 5 power distributions and 6 TSV distributions on a
//! two-die stack with the detailed thermal solver, and prints the per-die power–temperature
//! correlations.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example exploratory_study
//! ```

use tsc3d::exploration::{run_exploration, ExplorationConfig, PowerPattern};
use tsc3d_thermal::TsvPattern;

fn main() {
    let config = ExplorationConfig {
        outline_mm2: 16.0,
        grid_bins: 24,
        power_per_die: 4.0,
        seed: 7,
    };
    println!(
        "exploratory study: {} mm² dies, {}x{} analysis grid, {} W per die",
        config.outline_mm2, config.grid_bins, config.grid_bins, config.power_per_die
    );

    let cases = run_exploration(&config);

    println!(
        "\n{:<18} {:<28} {:>8} {:>8} {:>10}",
        "power pattern", "TSV pattern", "r1", "r2", "peak [K]"
    );
    println!("{}", "-".repeat(78));
    for power in PowerPattern::ALL {
        for tsv in TsvPattern::ALL {
            let case = cases
                .iter()
                .find(|c| c.power == power && c.tsv == tsv)
                .expect("all combinations evaluated");
            println!(
                "{:<18} {:<28} {:>8.3} {:>8.3} {:>10.2}",
                power.name(),
                tsv.name(),
                case.correlations[0],
                case.correlations[1],
                case.peak_temperature
            );
        }
        println!("{}", "-".repeat(78));
    }

    // Summarize the key findings of Section 3.
    let mean_r1 = |p: PowerPattern| {
        cases
            .iter()
            .filter(|c| c.power == p)
            .map(|c| c.correlations[0])
            .sum::<f64>()
            / TsvPattern::ALL.len() as f64
    };
    println!("\nmean bottom-die correlation per power pattern:");
    for p in PowerPattern::ALL {
        println!("  {:<18} {:>7.3}", p.name(), mean_r1(p));
    }
    println!(
        "\nKey finding: uniform / locally-uniform power and irregular TSV arrangements \
         decorrelate the thermal map; strong gradients and regular TSV arrays leak."
    );
}

//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no crates.io access, so this crate provides just enough of
//! serde's surface for the workspace to compile: the [`Serialize`] / [`Deserialize`]
//! marker traits and (behind the `derive` feature) the no-op derive macros. No type in
//! the workspace is actually serialized today; when a real serialization backend is
//! needed, this stand-in is replaced by the upstream crate without touching any call
//! site.

#![warn(missing_docs)]

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

//! Offline stand-in for the `proptest` property-testing crate.
//!
//! The build environment has no crates.io access, so this crate implements the subset of
//! proptest used by the workspace's property tests: the [`proptest!`] macro with
//! `#![proptest_config(...)]` and `arg in strategy` bindings, range and
//! [`collection::vec`] strategies, and `prop_assert!` / `prop_assert_eq!`. Inputs are
//! sampled from a deterministic per-test RNG (seeded from the test name), so failures are
//! reproducible; upstream's shrinking machinery is intentionally omitted — a failing case
//! panics with the sampled values still derivable from the deterministic seed.

#![warn(missing_docs)]

pub mod test_runner {
    //! Test-case configuration and the deterministic RNG driving input generation.

    /// Configuration of a `proptest!` block (case count only).
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A configuration running `cases` random cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    /// Deterministic SplitMix64 generator seeded from the test name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates the generator for a named test (FNV-1a hash of the name as seed).
        pub fn for_case(name: &str) -> Self {
            let seed = name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |acc, b| {
                (acc ^ b as u64).wrapping_mul(0x100_0000_01b3)
            });
            Self { state: seed }
        }

        /// Next raw 64-bit output.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Uniform `u64` below `n` (exclusive).
        pub fn below(&mut self, n: u64) -> u64 {
            ((self.next_u64() as u128 * n as u128) >> 64) as u64
        }
    }
}

pub mod strategy {
    //! Input-generation strategies.

    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A generator of random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl Strategy for Range<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end as i128 - self.start as i128) as u64;
                    assert!(span > 0, "cannot sample from an empty range");
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy producing `Vec`s with lengths drawn from `size` and elements from
    /// `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Creates a [`VecStrategy`]; mirrors `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Defines property tests; mirrors `proptest::proptest!`.
///
/// Supports the forms the workspace uses: an optional leading
/// `#![proptest_config(expr)]` and test functions whose arguments are `name in strategy`
/// bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::for_case(stringify!($name));
            for __case in 0..config.cases {
                $( let $arg = $crate::strategy::Strategy::sample(&$strategy, &mut rng); )+
                let __outcome: Result<(), String> = (|| { $body Ok(()) })();
                if let Err(message) = __outcome {
                    panic!(
                        "property {} failed on case {}: {message}",
                        stringify!($name),
                        __case
                    );
                }
            }
        }
    )*};
}

/// Asserts a condition inside a property, reporting the failing case; mirrors
/// `prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a property; mirrors `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return Err(format!(
                "assertion failed: {} == {} (left: {left:?}, right: {right:?})",
                stringify!($left),
                stringify!($right)
            ));
        }
    }};
}

pub mod prelude {
    //! Convenience re-exports, mirroring `proptest::prelude`.
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 1.0f64..2.0, n in 3usize..7) {
            prop_assert!((1.0..2.0).contains(&x));
            prop_assert!((3..7).contains(&n), "n out of range: {}", n);
        }

        #[test]
        fn vec_strategy_respects_size(values in crate::collection::vec(0.0f64..1.0, 2..5)) {
            prop_assert!(values.len() >= 2 && values.len() < 5);
            prop_assert_eq!(values.iter().filter(|v| **v < 0.0).count(), 0);
        }
    }

    #[test]
    fn deterministic_rng_per_name() {
        let mut a = crate::test_runner::TestRng::for_case("t");
        let mut b = crate::test_runner::TestRng::for_case("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}

//! Offline stand-in for the `rand` crate.
//!
//! The build environment of this repository has no access to crates.io, so this crate
//! provides the (small) subset of the `rand 0.8` API the workspace actually uses:
//! [`RngCore`], [`SeedableRng`] (with `seed_from_u64`), [`Rng::gen_range`] over half-open
//! and inclusive integer/float ranges, and [`seq::SliceRandom::shuffle`]. The sampling
//! algorithms mirror upstream's behaviour (53-bit float uniforms, widening-multiply integer
//! uniforms) but make no guarantee of bit-compatibility with upstream `rand`; determinism
//! within this workspace is all that is required.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A random number generator: the minimal core interface.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

// Forward every method, not just `next_u64`: falling back to the trait defaults here
// would silently change the stream of generators that override `next_u32`/`fill_bytes`
// (e.g. ChaCha8Rng serves one keystream word per `next_u32`, while the default consumes
// a whole `next_u64`).
impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it into a full seed with SplitMix64
    /// (the same construction upstream `rand_core` uses).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut x = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// User-facing random value generation, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (half-open `a..b` or inclusive `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        self.gen_range(0.0..1.0) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that can produce uniform samples of `T`.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types with a uniform sampling primitive over an interval.
pub trait SampleUniform: Sized {
    /// Uniform sample from the half-open interval `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
    /// Uniform sample from the closed interval `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample from an empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        assert!(start <= end, "cannot sample from an empty range");
        T::sample_inclusive(start, end, rng)
    }
}

/// Uniform `u64` below `span` (exclusive) via widening multiply.
fn below_u64<R: RngCore + ?Sized>(span: u64, rng: &mut R) -> u64 {
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                let span = (high as i128 - low as i128) as u64;
                (low as i128 + below_u64(span, rng) as i128) as $t
            }

            fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                let span = (high as i128 - low as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Only reachable for the full u64/i64/usize domain; a raw draw is uniform.
                    return (low as i128).wrapping_add(rng.next_u64() as i128) as $t;
                }
                (low as i128 + below_u64(span as u64, rng) as i128) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty => $bits:expr),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                // Uniform in [0, 1) with the type's full mantissa precision.
                let unit = (rng.next_u64() >> (64 - $bits)) as $t / (1u64 << $bits) as $t;
                low + unit * (high - low)
            }

            fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                let unit = (rng.next_u64() >> (64 - $bits)) as $t / ((1u64 << $bits) - 1) as $t;
                low + unit * (high - low)
            }
        }
    )*};
}

impl_uniform_float!(f32 => 24, f64 => 53);

pub mod seq {
    //! Sequence-related extensions (shuffling, choosing).

    use super::{RngCore, SampleRange};

    /// Extension methods on slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if the slice is empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (0..=i).sample_single(rng);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(0..self.len()).sample_single(rng)])
            }
        }
    }
}

pub mod prelude {
    //! Convenience re-exports, mirroring `rand::prelude`.
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let f = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let i = rng.gen_range(3..9usize);
            assert!((3..9).contains(&i));
            let c = rng.gen_range(5..=8);
            assert!((5..=8).contains(&c));
            let neg = rng.gen_range(-4..=-1i32);
            assert!((-4..=-1).contains(&neg));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use seq::SliceRandom;
        let mut rng = Counter(3);
        let mut v: Vec<usize> = (0..20).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(11);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}

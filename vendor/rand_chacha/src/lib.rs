//! Offline stand-in for the `rand_chacha` crate: a ChaCha8 generator implementing the
//! vendored [`rand`] traits.
//!
//! The keystream is a faithful ChaCha implementation with 8 rounds (RFC 8439 block
//! function, 64-bit block counter), seeded through [`rand::SeedableRng`]. Streams are
//! deterministic per seed, which is the property the workspace's reproducibility tests
//! rely on; bit-compatibility with upstream `rand_chacha` is not guaranteed.

#![warn(missing_docs)]

use rand::{RngCore, SeedableRng};

/// A ChaCha random number generator with 8 rounds.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// The 8 key words of the ChaCha state.
    key: [u32; 8],
    /// 64-bit block counter (words 12–13 of the state; words 14–15 hold a zero nonce).
    counter: u64,
    /// Current 16-word output block.
    block: [u32; 16],
    /// Next unread word of `block`; 16 means exhausted.
    cursor: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
const ROUNDS: usize = 8;

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        let input = state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, inp) in state.iter_mut().zip(&input) {
            *out = out.wrapping_add(*inp);
        }
        self.block = state;
        self.cursor = 0;
        self.counter = self.counter.wrapping_add(1);
    }

    /// The number of 32-bit keystream words consumed so far.
    ///
    /// `counter` counts *generated* blocks (it is incremented when a block is produced),
    /// so the unread remainder of the current block — `16 - cursor` words — is subtracted
    /// back out. A fresh generator reports 0.
    pub fn get_word_pos(&self) -> u64 {
        self.counter
            .wrapping_mul(16)
            .wrapping_add(self.cursor as u64)
            .wrapping_sub(16)
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, word) in key.iter_mut().enumerate() {
            *word = u32::from_le_bytes(seed[4 * i..4 * i + 4].try_into().expect("4-byte chunk"));
        }
        Self {
            key,
            counter: 0,
            block: [0; 16],
            cursor: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let word = self.block[self.cursor];
        self.cursor += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn uniform_unit_interval_mean_is_centred() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        assert_eq!(a.get_word_pos(), 0);
        let _ = a.next_u64();
        assert_eq!(a.get_word_pos(), 2);
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
        assert_eq!(a.get_word_pos(), b.get_word_pos());
        // Positions keep counting across block boundaries (16 words per block).
        for _ in 0..8 {
            let _ = a.next_u64();
        }
        assert_eq!(a.get_word_pos(), 20);
    }
}

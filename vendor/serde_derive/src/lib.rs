//! Offline stand-in for `serde_derive`: the `Serialize` / `Deserialize` derives expand to
//! nothing. The workspace derives the traits for forward compatibility but never calls a
//! serializer, so marker-level support is sufficient until the real `serde` is available
//! (the build environment has no crates.io access).

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no crates.io access, so this crate implements the subset of
//! criterion's API the workspace benches use — [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`] / [`BenchmarkGroup::bench_with_input`],
//! [`Bencher::iter`], [`BenchmarkId`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros — with a simple wall-clock measurement loop instead of criterion's statistical
//! machinery. Passing `--test` (as `cargo test --benches` does) runs every routine exactly
//! once, so benches double as smoke tests.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock budget per benchmark routine (full measurement mode).
const TIME_BUDGET: Duration = Duration::from_secs(3);

/// The benchmark driver handed to every `criterion_group!` target.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Self {
            sample_size: 100,
            test_mode,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Benchmarks a single routine outside a group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        let test_mode = self.test_mode;
        run_benchmark(&format!("{id}"), sample_size, test_mode, |b| routine(b));
        self
    }
}

/// A group of related benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of measurement samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Benchmarks a routine under `group/id`.
    pub fn bench_function<F>(&mut self, id: impl Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_benchmark(&label, samples, self.criterion.test_mode, |b| routine(b));
        self
    }

    /// Benchmarks a routine that receives a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Display,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_benchmark(&label, samples, self.criterion.test_mode, |b| {
            routine(b, input)
        });
        self
    }

    /// Finishes the group (kept for API compatibility; measurements are reported eagerly).
    pub fn finish(&mut self) {}
}

/// Identifier combining a function name and a parameter, e.g. `solve/32`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter: `name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{parameter}", function_name.into()),
        }
    }

    /// An id consisting of the parameter only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: format!("{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handle passed to benchmark routines.
pub struct Bencher {
    samples: Vec<Duration>,
    max_samples: usize,
}

impl Bencher {
    /// Runs `routine` repeatedly, recording one wall-clock sample per call, until the
    /// sample budget or the time budget is exhausted.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One untimed warm-up run.
        black_box(routine());
        let started = Instant::now();
        loop {
            let sample_start = Instant::now();
            black_box(routine());
            self.samples.push(sample_start.elapsed());
            if self.samples.len() >= self.max_samples || started.elapsed() >= TIME_BUDGET {
                break;
            }
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, samples: usize, test_mode: bool, mut f: F) {
    if test_mode {
        // `cargo test --benches`: run once to prove the routine works, skip measurement.
        let mut bencher = Bencher {
            samples: Vec::new(),
            max_samples: 1,
        };
        f(&mut bencher);
        println!("test {label} ... ok");
        return;
    }
    let mut bencher = Bencher {
        samples: Vec::new(),
        max_samples: samples.max(1),
    };
    f(&mut bencher);
    let n = bencher.samples.len().max(1) as u32;
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / n;
    let min = bencher.samples.iter().min().copied().unwrap_or_default();
    println!("{label:<50} mean {mean:>12.3?}   min {min:>12.3?}   ({n} samples)");
}

/// Declares a group of benchmark targets, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main` function, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_runs_routine() {
        let mut c = Criterion {
            sample_size: 3,
            test_mode: false,
        };
        let mut calls = 0usize;
        {
            let mut group = c.benchmark_group("g");
            group.sample_size(2);
            group.bench_function("f", |b| b.iter(|| calls += 1));
            group.finish();
        }
        // 1 warm-up + 2 samples.
        assert_eq!(calls, 3);
    }

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(format!("{}", BenchmarkId::from_parameter(32)), "32");
        assert_eq!(format!("{}", BenchmarkId::new("solve", 32)), "solve/32");
    }
}
